//! Batched sessions: step 8 independent simulations with one shared DDQN agent, letting
//! every round's arrivals share a single Q-network forward pass via
//! `SessionBatch::step_batched`.
//!
//! Each session replays the same dataset under a different behaviour-model seed — the
//! scenario-sweep shape (N replicas of one policy) that batched inference makes cheap.
//! With learning frozen the batched rounds are bit-identical to stepping the sessions one
//! `act` at a time (see `tests/batched_equivalence.rs`); here we train for a while first,
//! then freeze and sweep.
//!
//! A worker pool (`--threads N`, `CROWD_THREADS`, or the machine default) parallelises
//! the per-round pack stage (state tensors built in parallel shards) and the per-session
//! unpack stage (`apply` + metric recording) around the shared forward pass — with
//! bit-identical results at any thread count.
//!
//! Run with: `cargo run --release -p crowd-experiments --example batched_sessions [-- --threads N]`

use crowd_experiments::{experiment_thread_pool, run_policy, RunnerConfig, Session, SessionBatch};
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{Platform, SimConfig};

const N_SESSIONS: usize = 8;

fn main() {
    let pool = experiment_thread_pool();
    // 1. Generate a synthetic CrowdSpring-like dataset and a DDQN agent for its feature
    //    dimensions.
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);
    let mut agent = DdqnAgent::new(
        DdqnConfig {
            hidden_dim: 16,
            num_heads: 2,
            batch_size: 8,
            learn_every: 4,
            ..DdqnConfig::default()
        },
        features.task_dim(),
        features.worker_dim(),
    );

    // 2. Train online over one replay (the pool lets the agent's packed kernels and
    //    two-learner dispatch parallelise), then freeze the policy for evaluation.
    agent.set_thread_pool(pool);
    run_policy(&dataset, &mut agent, &RunnerConfig::default());
    agent.freeze_exploration();
    agent.freeze_learning();

    // 3. Build 8 sessions over the same dataset with different behaviour seeds: the same
    //    frozen policy faces 8 different realisations of worker behaviour.
    let mut batch = SessionBatch::new().with_pool(pool);
    for i in 0..N_SESSIONS {
        let config = RunnerConfig {
            platform_seed: 10_000 + i as u64,
            ..RunnerConfig::default()
        };
        batch.push(Session::for_dataset(&dataset, &config));
    }

    // 4. Step every live session once per round; each round packs all pending arrivals'
    //    state rows into one Q-network forward pass.
    let mut rounds = 0;
    while batch.step_batched(&mut agent) > 0 {
        rounds += 1;
    }
    println!(
        "{N_SESSIONS} sessions finished in {rounds} batched rounds on {} thread(s)",
        pool.threads()
    );

    // 5. One outcome per replica: the spread over behaviour seeds is the error bar a
    //    single sequential run cannot give you.
    let outcomes = batch.finish_shared("DDQN (frozen)");
    for (i, outcome) in outcomes.iter().enumerate() {
        let summary = outcome.summary();
        println!(
            "seed {:>5}: CR {:.3}  nDCG-CR {:.3}  completions {:>4}  mean act {:.1} µs",
            10_000 + i,
            summary.cr,
            summary.ndcg_cr,
            outcome.total_completions,
            outcome.act_timer.mean_seconds() * 1e6,
        );
    }
    let mean_cr =
        outcomes.iter().map(|o| o.summary().cr).sum::<f32>() / outcomes.len().max(1) as f32;
    println!("mean completion rate over {N_SESSIONS} behaviour seeds: {mean_cr:.3}");
}
