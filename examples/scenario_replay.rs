//! Scenario replay: the same policy run under every registered non-stationary scenario
//! (worker churn, demand surges, day/night cycles, task-mix drift), demonstrating the
//! scenario engine's contract — **a scenario is a pre-replay dataset transform, never a
//! hot-loop branch**. The `stationary` entry is the no-op spec, and its fingerprint is
//! bit-identical to a plain replay of the untouched dataset; every other scenario is
//! deterministic (rerun this example and the fingerprints repeat) and replays through
//! the exact same zero-copy `Env` path, sharded or not.
//!
//! Spec format and determinism contract: `docs/SCENARIOS.md`. The full policy
//! comparison (DDQN vs all five baselines per scenario) is the `scenario_table` bin.
//!
//! Run with: `cargo run --release -p crowd-experiments --example scenario_replay [-- --threads N]`

use crowd_baselines::{Benefit, LinUcb, ListMode};
use crowd_experiments::{experiment_thread_pool, named_scenarios, RunnerConfig, Session};
use crowd_sim::{Env, ShardSpec, SimConfig};

fn main() {
    let pool = experiment_thread_pool();
    let dataset = SimConfig::tiny().generate();
    let config = RunnerConfig::default();
    let make_policy = || LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);

    // Reference: the unperturbed dataset on the unsharded platform.
    let mut reference = Session::for_dataset(&dataset, &config);
    reference.run(&mut make_policy());
    let summary = reference.metrics().summary();
    let env = reference.env_mut();
    env.flush();
    let baseline_fingerprint = env.canonical_fingerprint();
    println!(
        "{:<16}: CR {:.3}  arrivals {:>5}  fingerprint {baseline_fingerprint:08x}  (baseline)",
        "unperturbed",
        summary.cr,
        dataset.n_arrivals(),
    );

    // Every registered scenario, replayed on a 2-shard `ShardedEnv` — the engine
    // transforms the dataset up front, so the sharded and unsharded replays of a
    // scenario are bit-identical too (tests/scenario_equivalence.rs proves it at
    // shards {1, 2, 8}; here we just print the sharded run).
    for scenario in named_scenarios(&dataset) {
        let perturbed = scenario.dataset(&dataset);
        let shards = ShardSpec::new(2).with_pool(pool);
        let mut session = Session::for_dataset_sharded(&perturbed, &config, shards);
        session.run(&mut make_policy());
        let summary = session.metrics().summary();
        let env = session.env_mut();
        Env::flush(env);
        let fingerprint = env.canonical_fingerprint();
        println!(
            "{:<16}: CR {:.3}  arrivals {:>5}  fingerprint {fingerprint:08x}  ({})",
            scenario.name,
            summary.cr,
            perturbed.n_arrivals(),
            scenario.description,
        );
        // The no-op spec really is a no-op: same bits as the baseline replay.
        if scenario.name == "stationary" {
            assert_eq!(fingerprint, baseline_fingerprint);
        }
    }
}
