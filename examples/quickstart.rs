//! Quickstart: simulate a small crowdsourcing platform, run the DDQN task-arrangement agent
//! on it through the zero-copy `Env` interface, and print the completion rate it achieves.
//!
//! Run with: `cargo run --release -p crowd-experiments --example quickstart`
//!
//! Next steps: `examples/batched_sessions.rs` runs 8 simulations at once with one shared
//! Q-network forward pass per round (`SessionBatch::step_batched`), and `ARCHITECTURE.md`
//! at the repository root maps the whole `Env`/`Session`/`Policy` layering.

use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{Decision, Env, Platform, Policy, SimConfig};

fn main() {
    // 1. Generate a synthetic CrowdSpring-like dataset (2 months, ~240 worker arrivals).
    let dataset = SimConfig::tiny().generate();
    println!(
        "dataset: {} tasks, {} workers, {} arrivals over {} months",
        dataset.tasks.len(),
        dataset.workers.len(),
        dataset.n_arrivals(),
        dataset.months
    );

    // 2. Build the platform environment and the DDQN agent.
    let features = Platform::default_feature_space(&dataset);
    let mut platform = Platform::new(dataset, features.clone(), 7);
    let mut agent = DdqnAgent::new(
        DdqnConfig {
            hidden_dim: 16,
            num_heads: 2,
            batch_size: 8,
            learn_every: 4,
            ..DdqnConfig::default()
        },
        features.task_dim(),
        features.worker_dim(),
    );

    // 3. Interaction loop over the zero-copy Env interface: every arrival hands the agent a
    //    borrowed view of the pool (no feature clones), the agent writes its ranking into a
    //    reusable decision buffer, observes the feedback, and learns online.
    let mut decision = Decision::new();
    let mut arrivals = 0;
    let mut completions = 0;
    while platform.next_arrival() {
        if platform.arrival().is_empty() {
            continue;
        }
        agent.act(&platform.arrival(), &mut decision);
        platform.apply(&decision);
        if platform.feedback().completed.is_some() {
            completions += 1;
        }
        agent.observe(&platform.arrival(), &platform.feedback());
        arrivals += 1;
    }

    println!(
        "DDQN completed {completions}/{arrivals} arrivals ({:.1}% completion rate), {} learning updates",
        100.0 * completions as f32 / arrivals.max(1) as f32,
        agent.total_updates()
    );
}
