//! Single-task assignment scenario (the paper's CR / QG setting): each arriving worker is
//! assigned exactly one task, and the agent balances the worker benefit and the requester
//! benefit with the aggregator weight w = 0.25.
//!
//! Run with: `cargo run --release -p crowd-experiments --example assign_single_task`

use crowd_experiments::{run_policy, RunnerConfig};
use crowd_rl_core::{DdqnAgent, DdqnConfig, RecommendationMode};
use crowd_sim::{Platform, SimConfig};

fn main() {
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);

    let config = DdqnConfig {
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        learn_every: 4,
        ..DdqnConfig::default()
    }
    .with_balance(0.25)
    .with_mode(RecommendationMode::AssignOne);

    let mut agent = DdqnAgent::new(config, features.task_dim(), features.worker_dim());
    let outcome = run_policy(&dataset, &mut agent, &RunnerConfig::default());
    let summary = outcome.summary();

    println!("policy: {}", outcome.policy);
    println!("evaluated arrivals: {}", outcome.evaluated_arrivals);
    println!("completion rate (CR): {:.3}", summary.cr);
    println!("task quality gain (QG): {:.1}", summary.qg);
    println!(
        "average model update time: {:.4} s ({} updates)",
        outcome.update_timer.mean_seconds(),
        outcome.update_timer.count()
    );
    println!(
        "average decision time: {:.4} s",
        outcome.act_timer.mean_seconds()
    );
}
