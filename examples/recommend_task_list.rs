//! Ranked-list recommendation scenario (the paper's kCR / nDCG setting): every arriving
//! worker sees the whole pool ordered by the agent, browses it with the cascade model, and the
//! list quality is measured with the position-discounted metrics.
//!
//! Run with: `cargo run --release -p crowd-experiments --example recommend_task_list`

use crowd_experiments::{run_policy, RunnerConfig};
use crowd_rl_core::{DdqnAgent, DdqnConfig, RecommendationMode};
use crowd_sim::{Platform, SimConfig};

fn main() {
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);

    // Worker-benefit-only list recommendation (the Fig. 7 DDQN variant).
    let config = DdqnConfig {
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        learn_every: 4,
        ..DdqnConfig::default()
    }
    .worker_only()
    .with_mode(RecommendationMode::RankList);

    let mut agent = DdqnAgent::new(config, features.task_dim(), features.worker_dim());
    let runner_config = RunnerConfig {
        top_k: 5,
        ..RunnerConfig::default()
    };
    let outcome = run_policy(&dataset, &mut agent, &runner_config);
    let summary = outcome.summary();

    println!("policy: {}", outcome.policy);
    println!("evaluated arrivals: {}", outcome.evaluated_arrivals);
    println!("CR (completed at rank 1): {:.3}", summary.cr);
    println!("kCR (top-{}): {:.3}", runner_config.top_k, summary.k_cr);
    println!("nDCG-CR (full list): {:.3}", summary.ndcg_cr);
    println!("nDCG-QG: {:.1}", summary.ndcg_qg);
}
