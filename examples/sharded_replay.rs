//! Sharded replay: the same policy run on the unsharded `Platform` and on `ShardedEnv`
//! at several shard counts, demonstrating the sharded platform's contract — **sharding is
//! a layout and parallelism decision, never a semantics decision**. Every run below
//! produces bit-identical metrics, completions and final platform state (compare the
//! canonical fingerprints it prints).
//!
//! The example also opts one run into the compact (f16) feature arenas, the explicit
//! memory/precision trade for demand-scale replays: task features quantise losslessly
//! (one-hot components are f16-exact), worker features round to the nearest binary16 on
//! every commit, so the compact run's metrics drift slightly while its cold feature
//! storage is half the size.
//!
//! Run with: `cargo run --release -p crowd-experiments --example sharded_replay [-- --threads N]`

use crowd_baselines::{Benefit, LinUcb, ListMode};
use crowd_experiments::{experiment_thread_pool, RunnerConfig, Session};
use crowd_sim::{Env, ShardSpec, SimConfig};

fn main() {
    let pool = experiment_thread_pool();
    let dataset = SimConfig::tiny().generate();
    let config = RunnerConfig::default();
    let make_policy = || LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);

    // 1. Reference: the unsharded platform.
    let mut reference = Session::for_dataset(&dataset, &config);
    reference.run(&mut make_policy());
    let summary = reference.metrics().summary();
    let env = reference.env_mut();
    env.flush();
    println!(
        "platform      : CR {:.3}  completions {:>4}  fingerprint {:08x}",
        summary.cr,
        env.total_completions(),
        env.canonical_fingerprint(),
    );

    // 2. Sharded runs: entity state partitioned across shards, per-shard event
    //    application fanned out over the worker pool. Identical output at every count.
    for n_shards in [1, 2, 8] {
        let spec = ShardSpec::new(n_shards).with_pool(pool);
        let mut session = Session::for_dataset_sharded(&dataset, &config, spec);
        session.run(&mut make_policy());
        let summary = session.metrics().summary();
        let env = session.env_mut();
        Env::flush(env);
        println!(
            "{n_shards} shard(s)    : CR {:.3}  completions {:>4}  fingerprint {:08x}  ({} thread(s))",
            summary.cr,
            Env::total_completions(env),
            env.canonical_fingerprint(),
            pool.threads(),
        );
    }

    // 3. Compact arenas: same replay, f16 feature storage. Deterministic (and
    //    shard-count invariant, see tests/shard_equivalence.rs) but intentionally not
    //    bit-identical to f32 — the fingerprint differs while metrics stay close.
    let spec = ShardSpec::new(8).compact(true).with_pool(pool);
    let mut compact = Session::for_dataset_sharded(&dataset, &config, spec);
    compact.run(&mut make_policy());
    let summary = compact.metrics().summary();
    let env = compact.env_mut();
    Env::flush(env);
    println!(
        "8 shards (f16): CR {:.3}  completions {:>4}  fingerprint {:08x}  arenas {} B",
        summary.cr,
        Env::total_completions(env),
        env.canonical_fingerprint(),
        env.feature_arena_bytes(),
    );
}
