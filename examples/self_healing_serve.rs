//! Self-healing serving: a learning decision server rides out a sustained fsync
//! outage — shedding with typed `Degraded` answers instead of wedging, healing when
//! the device recovers — while retrying clients (`Client::decide_with_retry`) absorb
//! the outage with bounded backoff. Afterwards the decision log is compacted to a
//! base image + suffix and the server is recovered from it, replaying only the
//! records after the base.
//!
//! The outage is injected with `crowd_ckpt`'s deterministic fault layer: every disk
//! touch is a numbered operation behind an [`Fs`] handle, and a [`FaultPlan`] can
//! fail a precise window of them. No real disk has to misbehave — the same failure
//! replays identically on every machine (that determinism is what
//! `tests/fault_injection.rs` sweeps exhaustively).
//!
//! Run with: `cargo run --release -p crowd-experiments --example self_healing_serve`

use crowd_ckpt::{FaultPlan, Fs, OpClass};
use crowd_experiments::{collect_arrival_contexts, ddqn_config_for, ddqn_for, Scale};
use crowd_serve::{LogConfig, RetryPolicy, ServeConfig, ServeDecision, Server};
use crowd_sim::{ArrivalContext, Dataset, PolicyFeedback, SimConfig};
use crowd_tensor::ThreadPool;
use std::path::Path;
use std::time::Duration;

/// Synthetic outcome for a served decision: the worker completes the top-ranked task.
fn feedback_for(context: &ArrivalContext, decision: &ServeDecision) -> PolicyFeedback {
    PolicyFeedback {
        time: context.time,
        worker_id: context.worker_id,
        worker_quality: context.worker_quality,
        shown: decision.shown.clone(),
        completed: decision.shown.first().map(|&t| (t, 0)),
        quality_gain: 0.125,
        worker_feature_before: context.worker_feature.clone(),
        worker_feature_after: context.worker_feature.clone(),
    }
}

fn serve_config(dir: &Path, fs: Fs) -> ServeConfig {
    let mut log = LogConfig::new(dir);
    log.fs = fs;
    // A tiny rotation threshold so even this short run spans several segments and
    // compaction has something to absorb.
    log.segment_bytes = 1;
    ServeConfig {
        pool: ThreadPool::from_env(),
        log: Some(log),
        ..ServeConfig::default()
    }
}

fn main() {
    let dataset: Dataset = SimConfig::tiny().generate();
    let contexts = collect_arrival_contexts(&dataset, 0xCAFE, 24);
    let scratch = std::env::temp_dir().join(format!("self_healing_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // 1. Probe: how many I/O ops does `Server::start` issue before any traffic? The
    //    log is created synchronously, so this count is deterministic — it tells us
    //    where the serving phase begins in the operation numbering.
    let probe_dir = scratch.join("probe");
    let (fs, probe) = Fs::faulty(FaultPlan::none());
    let server = Server::start(
        Box::new(ddqn_for(&dataset, ddqn_config_for(Scale::Tiny))),
        serve_config(&probe_dir, fs),
    )
    .expect("probe server start");
    let start_ops = probe.ops();
    server.kill();
    println!("[1] server startup issues {start_ops} storage ops; outage window starts there");

    // 2. A learning server whose log fsyncs fail for a sustained window of 40 ops
    //    starting at the first serving-phase operation. Retrying clients keep
    //    submitting through the outage: shed requests never touched the policy, so
    //    retrying them is always safe.
    let dir = scratch.join("live");
    let (fs, _) = Fs::faulty(FaultPlan::fail_ops(
        start_ops,
        start_ops + 40,
        Some(OpClass::SyncData),
    ));
    let server = Server::start(
        Box::new(ddqn_for(&dataset, ddqn_config_for(Scale::Tiny))),
        serve_config(&dir, fs),
    )
    .expect("server start");
    let client = server.client();
    let retry = RetryPolicy {
        deadline: Duration::from_secs(10),
        ..RetryPolicy::default()
    };
    for context in &contexts {
        let served = client
            .decide_with_retry(context, &retry)
            .expect("retry rides out the outage");
        client
            .feedback(served.request_id, feedback_for(context, &served))
            .expect("feedback");
    }

    // 3. Compact the healed log: the policy's checkpoint becomes the base image and
    //    every fully-absorbed segment is deleted; recovery will replay only the
    //    suffix after the base.
    let stats = client.compact().expect("compaction");
    let (_policy, report) = server.shutdown();
    assert_eq!(report.log_error, None, "log healthy again at shutdown");
    println!(
        "[2] outage: {} degraded rounds shed {} decides / {} feedbacks, {} outage healed",
        report.degraded_rounds, report.shed_decides, report.shed_feedbacks, report.healed,
    );
    println!(
        "[3] compaction: base at record {} absorbed {} segments ({} base bytes)",
        stats.suffix_start, stats.absorbed_segments, stats.base_bytes,
    );

    // 4. Recover from base + suffix. The fresh policy restores the base checkpoint
    //    and replays only the records after it — bit-identical to a full replay of
    //    the original log (proven in tests/fault_injection.rs).
    let (server, recovery) = Server::recover(
        Box::new(ddqn_for(&dataset, ddqn_config_for(Scale::Tiny))),
        serve_config(&dir, Fs::real()),
    )
    .expect("recover from compacted log");
    println!(
        "[4] recovery: restored base at record {:?}, replayed {} suffix decisions, {} degraded markers",
        recovery.compacted_suffix_start, recovery.replayed_decisions, recovery.replayed_degraded,
    );
    assert!(recovery.compacted_suffix_start.is_some());
    assert!(
        (recovery.replayed_decisions as usize) < contexts.len(),
        "the base image absorbed the prefix"
    );

    // The recovered server serves on, continuing the learned state.
    let client = server.client();
    let served = client
        .decide_with_retry(&contexts[0], &retry)
        .expect("post-recovery decide");
    println!(
        "[5] recovered server serves on: request {} ranked {} tasks",
        served.request_id,
        served.shown.len()
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);
}
