//! Runs the full worker-benefit policy line-up of the paper (Random, Taskrec, Greedy CS,
//! Greedy NN, LinUCB, DDQN) on a small synthetic dataset and prints a comparison table —
//! a miniature version of the Fig. 7 experiment.
//!
//! All six policies are driven as one `SessionBatch`: every call steps each live
//! simulation by one arrival (the vectorized-env shape that batched Q-network inference
//! plugs into later). The session/policy pairs are sharded across a worker pool —
//! `--threads N` (or `CROWD_THREADS`) controls the width, defaulting to the machine's
//! available parallelism; results are bit-identical at any thread count.
//!
//! Run with: `cargo run --release -p crowd-experiments --example compare_baselines [-- --threads N]`

use crowd_baselines::Benefit;
use crowd_experiments::{
    experiment_thread_pool, f3, policies_for_benefit, print_table, run_policies_lockstep_with_pool,
    RunnerConfig, Scale,
};

fn main() {
    let scale = Scale::Tiny;
    let pool = experiment_thread_pool();
    let dataset = scale.sim_config().generate();
    let cfg = RunnerConfig::default();

    let policies = policies_for_benefit(&dataset, Benefit::Worker, scale);
    eprintln!(
        "stepping {} policies in lock-step on {} thread(s) ...",
        policies.len(),
        pool.threads()
    );
    let outcomes = run_policies_lockstep_with_pool(&dataset, policies, &cfg, pool);

    let mut rows = Vec::new();
    for outcome in &outcomes {
        let s = outcome.summary();
        rows.push(vec![
            outcome.policy.clone(),
            f3(s.cr),
            f3(s.k_cr),
            f3(s.ndcg_cr),
            format!("{:.5}", outcome.update_timer.mean_seconds()),
        ]);
    }
    print_table(
        "Worker-benefit comparison (tiny synthetic dataset)",
        &["method", "CR", "kCR", "nDCG-CR", "update (s)"],
        &rows,
    );
    println!("\nFor the full experiment use: cargo run --release -p crowd-experiments --bin fig7_worker_benefit");
}
