//! Runs the full worker-benefit policy line-up of the paper (Random, Taskrec, Greedy CS,
//! Greedy NN, LinUCB, DDQN) on a small synthetic dataset and prints a comparison table —
//! a miniature version of the Fig. 7 experiment.
//!
//! Run with: `cargo run --release -p crowd-experiments --example compare_baselines`

use crowd_baselines::Benefit;
use crowd_experiments::{f3, policies_for_benefit, print_table, run_policy, RunnerConfig, Scale};

fn main() {
    let scale = Scale::Tiny;
    let dataset = scale.sim_config().generate();
    let cfg = RunnerConfig::default();

    let mut rows = Vec::new();
    for mut policy in policies_for_benefit(&dataset, Benefit::Worker, scale) {
        eprintln!("running {} ...", policy.name());
        let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
        let s = outcome.summary();
        rows.push(vec![
            outcome.policy.clone(),
            f3(s.cr),
            f3(s.k_cr),
            f3(s.ndcg_cr),
            format!("{:.5}", outcome.update_timer.mean_seconds()),
        ]);
    }
    print_table(
        "Worker-benefit comparison (tiny synthetic dataset)",
        &["method", "CR", "kCR", "nDCG-CR", "update (s)"],
        &rows,
    );
    println!("\nFor the full experiment use: cargo run --release -p crowd-experiments --bin fig7_worker_benefit");
}
