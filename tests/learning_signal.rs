//! Does the DDQN agent actually *learn*? These tests build small controlled environments
//! where the optimal arrangement is known and check the agent discovers it, and compare the
//! trained agent against the random baseline on the synthetic platform.

use crowd_baselines::{ListMode, RandomPolicy};
use crowd_experiments::{run_policy, RunnerConfig};
use crowd_rl_core::{DdqnAgent, DdqnConfig, RecommendationMode};
use crowd_sim::{
    ArrivalContext, Decision, Platform, Policy, PolicyFeedback, SimConfig, TaskId, TaskSnapshot,
    WorkerId,
};

/// A two-task bandit-like environment expressed through the Policy interface: task 7 is
/// always completed when assigned, task 8 never is.
fn bandit_context() -> ArrivalContext {
    ArrivalContext {
        time: 100,
        worker_id: WorkerId(0),
        worker_feature: vec![0.5, 0.5, 0.0, 0.0],
        worker_quality: 0.8,
        is_new_worker: false,
        available: vec![
            TaskSnapshot {
                id: TaskId(7),
                feature: vec![1.0, 0.0, 0.0, 0.0],
                quality: 0.0,
                award: 10.0,
                category: 0,
                domain: 0,
                deadline: 1_000_000,
                completions: 0,
            },
            TaskSnapshot {
                id: TaskId(8),
                feature: vec![0.0, 1.0, 0.0, 0.0],
                quality: 0.0,
                award: 10.0,
                category: 1,
                domain: 0,
                deadline: 1_000_000,
                completions: 0,
            },
        ],
    }
}

fn bandit_feedback(ctx: &ArrivalContext, decision: &Decision) -> PolicyFeedback {
    let shown = decision.shown().to_vec();
    // Cascade: the worker completes task 7 at whatever position it is shown, never task 8.
    let completed = shown
        .iter()
        .position(|&t| t == TaskId(7))
        .map(|pos| (TaskId(7), pos));
    PolicyFeedback {
        time: ctx.time,
        worker_id: ctx.worker_id,
        worker_quality: ctx.worker_quality,
        shown,
        completed,
        quality_gain: if completed.is_some() { 0.8 } else { 0.0 },
        worker_feature_before: ctx.worker_feature.clone(),
        worker_feature_after: ctx.worker_feature.clone(),
    }
}

#[test]
fn agent_learns_to_assign_the_rewarding_task() {
    let config = DdqnConfig {
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        buffer_size: 128,
        learn_every: 1,
        learning_rate: 0.01,
        exploration_anneal_steps: 150,
        max_tasks: 8,
        ..DdqnConfig::default()
    }
    .worker_only()
    .with_mode(RecommendationMode::AssignOne);
    let mut agent = DdqnAgent::new(config, 4, 4);

    // Interact with the bandit environment for a while.
    let mut decision = Decision::new();
    for i in 0..250 {
        let mut ctx = bandit_context();
        ctx.time += i;
        agent.act(&ctx.view(), &mut decision);
        let feedback = bandit_feedback(&ctx, &decision);
        agent.observe(&ctx.view(), &feedback.view());
    }

    // After training, the frozen (greedy) agent must assign the rewarding task.
    agent.freeze_exploration();
    let mut correct = 0;
    for _ in 0..20 {
        let ctx = bandit_context();
        agent.act(&ctx.view(), &mut decision);
        assert!(decision.is_assignment(), "assign mode expected");
        if decision.shown() == [TaskId(7)] {
            correct += 1;
        }
    }
    assert!(
        correct >= 18,
        "agent picked the rewarding task only {correct}/20 times"
    );
}

#[test]
fn agent_learns_to_rank_the_rewarding_task_first() {
    let config = DdqnConfig {
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        buffer_size: 128,
        learn_every: 1,
        learning_rate: 0.01,
        exploration_anneal_steps: 150,
        max_tasks: 8,
        ..DdqnConfig::default()
    }
    .worker_only();
    let mut agent = DdqnAgent::new(config, 4, 4);
    let mut decision = Decision::new();
    for i in 0..250 {
        let mut ctx = bandit_context();
        ctx.time += i;
        agent.act(&ctx.view(), &mut decision);
        let feedback = bandit_feedback(&ctx, &decision);
        agent.observe(&ctx.view(), &feedback.view());
    }
    agent.freeze_exploration();
    let ctx = bandit_context();
    agent.act(&ctx.view(), &mut decision);
    assert!(!decision.is_assignment(), "rank mode expected");
    assert_eq!(
        decision.shown()[0],
        TaskId(7),
        "rewarding task not ranked first"
    );
}

#[test]
fn trained_ddqn_beats_random_on_the_synthetic_platform() {
    // The headline qualitative claim of Fig. 7: DDQN clearly beats the Random arrangement.
    let dataset = SimConfig::small().generate();
    let cfg = RunnerConfig::default();

    let mut random = RandomPolicy::new(ListMode::RankAll, 5);
    let random_out = run_policy(&dataset, &mut random, &cfg);

    let features = Platform::default_feature_space(&dataset);
    let ddqn_config = DdqnConfig {
        hidden_dim: 32,
        num_heads: 4,
        batch_size: 16,
        learn_every: 2,
        max_tasks: 48,
        ..DdqnConfig::default()
    }
    .worker_only();
    let mut agent = DdqnAgent::new(ddqn_config, features.task_dim(), features.worker_dim());
    let ddqn_out = run_policy(&dataset, &mut agent, &cfg);

    let random_ndcg = random_out.summary().ndcg_cr;
    let ddqn_ndcg = ddqn_out.summary().ndcg_cr;
    assert!(
        ddqn_ndcg > random_ndcg,
        "DDQN ({ddqn_ndcg:.3}) should beat Random ({random_ndcg:.3}) on nDCG-CR"
    );
}
