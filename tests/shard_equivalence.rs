//! Equivalence fence for the sharded platform (`crowd_sim::ShardedEnv`): with
//! full-precision (f32) arenas, a sharded session replay must be **bit-identical** to
//! the unsharded `Platform` at every shard count and every `CROWD_THREADS` setting —
//! metrics, completions, final qualities, the behaviour RNG stream and the canonical
//! checkpoint fingerprint all compared exactly. Checkpoint/resume of a sharded run must
//! continue bit-identically, and the compact (f16) opt-in must honour its documented
//! quantisation contract (lossless one-hot task features, f16-idempotent committed
//! worker rows) while staying deterministic and shard-count invariant.
//!
//! CI runs this suite as a named step at `CROWD_THREADS` 1 and 4; the environments pick
//! the pool up via `ThreadPool::from_env`, so both advance paths (serial and sharded)
//! are exercised by the same tests.

use crowd_baselines::{Benefit, LinUcb, ListMode, RandomPolicy};
use crowd_experiments::{RunnerConfig, Session, SessionBatch};
use crowd_metrics::MetricsSummary;
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{f16_round_trip, Dataset, Env, Platform, Policy, ShardSpec, ShardedEnv, SimConfig};
use crowd_tensor::ThreadPool;

/// Everything one replay leaves behind, compared bitwise between the two environments.
#[derive(Debug, PartialEq)]
struct ReplayProbe {
    summary: MetricsSummary,
    evaluated: usize,
    completions: usize,
    /// Raw bits of the total-quality f32 reduction (iteration order matters; the
    /// sharded sum runs in global id order for exactly this comparison).
    quality_bits: u32,
    /// CRC-32 of the committed dynamic state in the canonical (Platform) byte layout.
    fingerprint: u32,
    /// One draw off the behaviour RNG after the replay — proves stream positions match.
    rng_probe: u64,
}

fn config() -> RunnerConfig {
    RunnerConfig::default()
}

fn probe_platform(dataset: &Dataset, policy: &mut dyn Policy) -> ReplayProbe {
    let mut session = Session::for_dataset(dataset, &config());
    session.run(policy);
    let evaluated = session.evaluated_arrivals();
    let summary = session.metrics().summary();
    let env = session.env_mut();
    env.flush();
    ReplayProbe {
        summary,
        evaluated,
        completions: env.total_completions(),
        quality_bits: env.total_task_quality().to_bits(),
        fingerprint: env.canonical_fingerprint(),
        rng_probe: env.rng_probe(),
    }
}

fn probe_sharded(dataset: &Dataset, policy: &mut dyn Policy, spec: ShardSpec) -> ReplayProbe {
    let mut session = Session::for_dataset_sharded(dataset, &config(), spec);
    session.run(policy);
    let evaluated = session.evaluated_arrivals();
    let summary = session.metrics().summary();
    let env = session.env_mut();
    Env::flush(env);
    ReplayProbe {
        summary,
        evaluated,
        completions: env.total_completions(),
        quality_bits: Env::total_task_quality(env).to_bits(),
        fingerprint: env.canonical_fingerprint(),
        rng_probe: env.rng_probe(),
    }
}

/// The environment-side pool honours the CI thread matrix (`CROWD_THREADS` 1 / 4).
fn env_pool() -> ThreadPool {
    ThreadPool::from_env()
}

#[test]
fn sharded_session_replay_is_bit_identical_to_platform_across_shard_counts() {
    let dataset = SimConfig::tiny().generate();
    type MakePolicy = fn() -> Box<dyn Policy>;
    let policies: Vec<(&str, MakePolicy)> = vec![
        ("random", || {
            Box::new(RandomPolicy::new(ListMode::RankAll, 5))
        }),
        ("linucb", || {
            Box::new(LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5))
        }),
    ];
    for (name, make_policy) in policies {
        let reference = probe_platform(&dataset, make_policy().as_mut());
        for n_shards in [1, 2, 8] {
            let spec = ShardSpec::new(n_shards).with_pool(env_pool());
            let probe = probe_sharded(&dataset, make_policy().as_mut(), spec);
            assert_eq!(
                probe,
                reference,
                "{name} diverged at {n_shards} shard(s), {} thread(s)",
                env_pool().threads()
            );
        }
    }
}

#[test]
fn ddqn_sharded_replay_is_bit_identical_to_platform() {
    // The deep agent consumes every feature bit and draws from its own RNG per decision,
    // so any divergence in view content, pool order or feedback compounds immediately.
    let dataset = SimConfig::tiny().generate();
    let make_agent = || {
        let features = Platform::default_feature_space(&dataset);
        let config = DdqnConfig {
            hidden_dim: 16,
            num_heads: 2,
            batch_size: 8,
            learn_every: 4,
            max_tasks: 32,
            buffer_size: 128,
            ..DdqnConfig::default()
        };
        DdqnAgent::new(config, features.task_dim(), features.worker_dim())
    };
    let reference = probe_platform(&dataset, &mut make_agent());
    for n_shards in [1, 8] {
        let spec = ShardSpec::new(n_shards).with_pool(env_pool());
        let probe = probe_sharded(&dataset, &mut make_agent(), spec);
        assert_eq!(probe, reference, "DDQN diverged at {n_shards} shard(s)");
    }
}

#[test]
fn sharded_checkpoint_resume_continues_bit_identically() {
    let dataset = SimConfig::tiny().generate();
    for compact in [false, true] {
        let spec = ShardSpec::new(2).compact(compact).with_pool(env_pool());
        let make_policy = || LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);

        // Uninterrupted run: step partway, checkpoint, keep going to completion.
        let mut original = Session::for_dataset_sharded(&dataset, &config(), spec);
        let mut original_policy = make_policy();
        for _ in 0..25 {
            assert!(original.step(&mut original_policy));
        }
        let snapshot = original
            .checkpoint(&original_policy)
            .expect("LinUcb checkpoints");
        let file = crowd_ckpt::SnapshotFile::from_bytes(snapshot.to_bytes()).unwrap();
        original.run(&mut original_policy);

        // Resumed twin: fresh session + policy restored from the snapshot, run to end.
        let mut resumed = Session::for_dataset_sharded(&dataset, &config(), spec);
        let mut resumed_policy = make_policy();
        resumed.resume(&mut resumed_policy, &file).unwrap();
        resumed.run(&mut resumed_policy);

        for (label, session) in [("original", &mut original), ("resumed", &mut resumed)] {
            Env::flush(session.env_mut());
            let _ = label;
        }
        assert_eq!(
            original.metrics().summary(),
            resumed.metrics().summary(),
            "compact={compact}"
        );
        assert_eq!(original.evaluated_arrivals(), resumed.evaluated_arrivals());
        assert_eq!(
            original.env_mut().canonical_fingerprint(),
            resumed.env_mut().canonical_fingerprint(),
            "compact={compact}"
        );
        assert_eq!(
            original.env_mut().rng_probe(),
            resumed.env_mut().rng_probe()
        );
    }
}

#[test]
fn compact_task_features_decode_losslessly_at_first_arrival() {
    // Task features are one-hot 0/1 components (plus small discretised award weights),
    // all exactly representable in binary16 — the f16 pool a policy sees must be
    // byte-identical to the f32 pool before any worker feature has been committed.
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);
    let mut full = ShardedEnv::new(dataset.clone(), features.clone(), 7, ShardSpec::new(2));
    let mut compact = ShardedEnv::new(dataset, features, 7, ShardSpec::new(2).compact(true));
    loop {
        assert_eq!(
            Env::next_arrival(&mut full),
            Env::next_arrival(&mut compact)
        );
        let (a, b) = (full.arrival(), compact.arrival());
        assert_eq!(a.n_tasks(), b.n_tasks());
        if a.is_empty() {
            continue;
        }
        for i in 0..a.n_tasks() {
            let (ta, tb) = (a.task(i), b.task(i));
            assert_eq!(ta.id, tb.id);
            assert_eq!(ta.feature, tb.feature, "task {i} decoded differently");
        }
        break;
    }
}

#[test]
fn compact_worker_rows_honour_the_quantisation_contract() {
    // Every committed worker row in a compact replay is stored as f16 bits, so each
    // decoded component must be a f16 fixed point (round-tripping it changes nothing).
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);
    let mut env = ShardedEnv::new(
        dataset.clone(),
        features,
        11,
        ShardSpec::new(4).compact(true),
    );
    let mut decision = crowd_sim::Decision::new();
    while Env::next_arrival(&mut env) {
        let view = env.arrival();
        if view.is_empty() {
            continue;
        }
        decision.clear();
        decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
        env.apply(&decision);
    }
    Env::flush(&mut env);
    assert!(
        env.total_completions() > 0,
        "replay produced no completions"
    );
    for worker in &dataset.workers {
        for &v in &env.worker_feature_owned(worker.id) {
            assert_eq!(
                f16_round_trip(v),
                v,
                "worker {:?} row is not f16-exact",
                worker.id
            );
        }
    }
}

#[test]
fn compact_replay_is_shard_count_invariant() {
    // The f16 path differs from f32 (that is the documented trade), but it must still be
    // deterministic and identical across shard counts and thread counts.
    let dataset = SimConfig::tiny().generate();
    let reference = probe_sharded(
        &dataset,
        &mut RandomPolicy::new(ListMode::RankAll, 5),
        ShardSpec::new(1).compact(true),
    );
    for n_shards in [2, 8] {
        let spec = ShardSpec::new(n_shards).compact(true).with_pool(env_pool());
        let probe = probe_sharded(&dataset, &mut RandomPolicy::new(ListMode::RankAll, 5), spec);
        assert_eq!(probe, reference, "compact diverged at {n_shards} shard(s)");
    }
}

#[test]
fn batched_sharded_sessions_match_batched_platform_sessions() {
    // `SessionBatch::step_batched` phase 1 advances environments in parallel (the split
    // this PR introduces); with sharded members its per-shard advance nests underneath.
    // Both batches run the same shared policy, so every session's outcome and final
    // environment must agree with the Platform-backed batch bit for bit.
    let dataset = SimConfig::tiny().generate();
    let n_sessions = 6;
    let member_config = |i: usize| RunnerConfig {
        platform_seed: 424_242 + i as u64,
        ..RunnerConfig::default()
    };

    let mut platform_batch: SessionBatch<Platform> = SessionBatch::new();
    for i in 0..n_sessions {
        platform_batch.push(Session::for_dataset(&dataset, &member_config(i)));
    }
    let mut platform_policy = RandomPolicy::new(ListMode::RankAll, 5);
    platform_batch.run_batched(&mut platform_policy);

    let mut sharded_batch: SessionBatch<ShardedEnv> = SessionBatch::new().with_pool(env_pool());
    for i in 0..n_sessions {
        let spec = ShardSpec::new(4).with_pool(env_pool());
        sharded_batch.push(Session::for_dataset_sharded(
            &dataset,
            &member_config(i),
            spec,
        ));
    }
    let mut sharded_policy = RandomPolicy::new(ListMode::RankAll, 5);
    sharded_batch.run_batched(&mut sharded_policy);

    let platform_prints: Vec<u32> = platform_batch
        .sessions()
        .iter()
        .map(|s| s.env().canonical_fingerprint())
        .collect();
    let sharded_prints: Vec<u32> = sharded_batch
        .sessions()
        .iter()
        .map(|s| s.env().canonical_fingerprint())
        .collect();
    assert_eq!(platform_prints, sharded_prints);

    let platform_outcomes = platform_batch.finish_shared("Random");
    let sharded_outcomes = sharded_batch.finish_shared("Random");
    assert_eq!(platform_outcomes.len(), sharded_outcomes.len());
    for (a, b) in platform_outcomes.iter().zip(&sharded_outcomes) {
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.total_completions, b.total_completions);
        assert_eq!(
            a.final_total_quality.to_bits(),
            b.final_total_quality.to_bits()
        );
    }
}
