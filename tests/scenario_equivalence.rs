//! Suite #14 — scenario conformance fence for `crowd_sim::dynamics`.
//!
//! A [`crowd_sim::ScenarioSpec`] compiles worker churn, demand surges and task-mix
//! drift into a perturbed dataset *before* the replay; everything downstream runs the
//! unchanged zero-copy hot loop. This suite proves the scenario layer does not erode
//! any prior bit-identity proof:
//!
//! * a **no-op spec reproduces the baseline replay's canonical fingerprint exactly**
//!   (no RNG draws, no event churn);
//! * every **named registry scenario replays bit-identically** across shard counts
//!   {1, 2, 8} and the CI `CROWD_THREADS` {1, 4} matrix (the pool comes from
//!   `ThreadPool::from_env`), and across mid-scenario checkpoint/resume — including the
//!   scenario-section validation that refuses cross-scenario resumes;
//! * the scenario **properties hold over seeded sweeps**: no decision ever shows an
//!   offline worker a pool, and surge thinning preserves the arrival subsequence order;
//! * the edge cases ride the same sweeps: a worker retiring while tasks it completed
//!   are still pooled, a surge boundary landing exactly on an arrival, an empty
//!   availability window, and a drift epoch with zero remaining tasks.

use crowd_baselines::{Benefit, LinUcb, ListMode, RandomPolicy};
use crowd_experiments::{
    named_scenarios, resume_scenario_session, scenario_checkpoint, scenario_session,
    scenario_session_sharded, RunnerConfig, Session,
};
use crowd_metrics::MetricsSummary;
use crowd_sim::{
    Dataset, Env, Event, EventKind, Policy, ScenarioSpec, ShardSpec, SimConfig, WorkerId,
    MINUTES_PER_MONTH,
};
use crowd_tensor::{Rng, ThreadPool};

/// Everything one replay leaves behind, compared bitwise between environments.
#[derive(Debug, PartialEq)]
struct ReplayProbe {
    summary: MetricsSummary,
    evaluated: usize,
    completions: usize,
    fingerprint: u32,
    rng_probe: u64,
}

fn config() -> RunnerConfig {
    RunnerConfig::default()
}

/// The environment-side pool honours the CI thread matrix (`CROWD_THREADS` 1 / 4).
fn env_pool() -> ThreadPool {
    ThreadPool::from_env()
}

fn probe_platform(dataset: &Dataset, policy: &mut dyn Policy) -> ReplayProbe {
    let mut session = Session::for_dataset(dataset, &config());
    session.run(policy);
    let evaluated = session.evaluated_arrivals();
    let summary = session.metrics().summary();
    let env = session.env_mut();
    env.flush();
    ReplayProbe {
        summary,
        evaluated,
        completions: env.total_completions(),
        fingerprint: env.canonical_fingerprint(),
        rng_probe: env.rng_probe(),
    }
}

fn probe_sharded(dataset: &Dataset, policy: &mut dyn Policy, spec: ShardSpec) -> ReplayProbe {
    let mut session = Session::for_dataset_sharded(dataset, &config(), spec);
    session.run(policy);
    let evaluated = session.evaluated_arrivals();
    let summary = session.metrics().summary();
    let env = session.env_mut();
    Env::flush(env);
    ReplayProbe {
        summary,
        evaluated,
        completions: env.total_completions(),
        fingerprint: env.canonical_fingerprint(),
        rng_probe: env.rng_probe(),
    }
}

fn arrivals(dataset: &Dataset) -> Vec<Event> {
    dataset
        .events
        .iter()
        .copied()
        .filter(Event::is_arrival)
        .collect()
}

/// Kept arrivals must match the original stream front to back without reordering.
fn assert_subsequence(kept: &[Event], original: &[Event], label: &str) {
    let mut cursor = 0;
    for event in kept {
        while cursor < original.len() && original[cursor] != *event {
            cursor += 1;
        }
        assert!(
            cursor < original.len(),
            "{label}: kept arrival at t={} out of original order",
            event.time
        );
        cursor += 1;
    }
}

#[test]
fn noop_scenario_reproduces_the_baseline_canonical_fingerprint() {
    let dataset = SimConfig::tiny().generate();
    let noop = ScenarioSpec::new(12345);
    assert!(noop.is_noop());
    let perturbed = noop.apply(&dataset);
    assert_eq!(perturbed.events, dataset.events);

    let baseline = probe_platform(&dataset, &mut RandomPolicy::new(ListMode::RankAll, 5));
    let scenario = probe_platform(&perturbed, &mut RandomPolicy::new(ListMode::RankAll, 5));
    assert_eq!(scenario, baseline, "no-op scenario must be exact identity");

    // The registry's `stationary` entry is that no-op.
    let stationary = &named_scenarios(&dataset)[0];
    assert!(stationary.spec.is_noop());
    let registry = probe_platform(
        &stationary.spec.apply(&dataset),
        &mut RandomPolicy::new(ListMode::RankAll, 5),
    );
    assert_eq!(registry, baseline);
}

#[test]
fn every_named_scenario_is_bit_identical_across_shard_counts() {
    let dataset = SimConfig::tiny().generate();
    for scenario in named_scenarios(&dataset) {
        let perturbed = scenario.spec.apply(&dataset);
        let reference = probe_platform(&perturbed, &mut RandomPolicy::new(ListMode::RankAll, 5));
        for n_shards in [1, 2, 8] {
            let spec = ShardSpec::new(n_shards).with_pool(env_pool());
            let probe = probe_sharded(
                &perturbed,
                &mut RandomPolicy::new(ListMode::RankAll, 5),
                spec,
            );
            assert_eq!(
                probe,
                reference,
                "{} diverged at {n_shards} shard(s), {} thread(s)",
                scenario.name,
                env_pool().threads()
            );
        }
    }
}

#[test]
fn every_named_scenario_survives_mid_scenario_checkpoint_resume() {
    let dataset = SimConfig::tiny().generate();
    let make_policy = || LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
    for scenario in named_scenarios(&dataset) {
        // Uninterrupted run: step partway, checkpoint (with the scenario section),
        // keep going to completion.
        let shards = ShardSpec::new(2).with_pool(env_pool());
        let mut original = scenario_session_sharded(&dataset, &scenario, &config(), shards);
        let mut original_policy = make_policy();
        for _ in 0..20 {
            assert!(original.step(&mut original_policy), "{}", scenario.name);
        }
        let snapshot = scenario_checkpoint(&mut original, &original_policy, &scenario.spec)
            .expect("checkpoint");
        let file = crowd_ckpt::SnapshotFile::from_bytes(snapshot.to_bytes()).unwrap();
        original.run(&mut original_policy);

        // Resumed twin: fresh session + policy restored from the snapshot, run to end.
        let mut resumed = scenario_session_sharded(&dataset, &scenario, &config(), shards);
        let mut resumed_policy = make_policy();
        resume_scenario_session(&mut resumed, &mut resumed_policy, &file, &scenario.spec)
            .expect("same-scenario resume");
        resumed.run(&mut resumed_policy);

        Env::flush(original.env_mut());
        Env::flush(resumed.env_mut());
        assert_eq!(
            original.metrics().summary(),
            resumed.metrics().summary(),
            "{}",
            scenario.name
        );
        assert_eq!(
            original.env_mut().canonical_fingerprint(),
            resumed.env_mut().canonical_fingerprint(),
            "{}",
            scenario.name
        );
        assert_eq!(
            original.env_mut().rng_probe(),
            resumed.env_mut().rng_probe(),
            "{}",
            scenario.name
        );
    }
}

#[test]
fn cross_scenario_resume_is_refused() {
    let dataset = SimConfig::tiny().generate();
    let scenarios = named_scenarios(&dataset);
    let surge = &scenarios[1];
    let other = &scenarios[2];
    let mut session = scenario_session(&dataset, surge, &config());
    let mut policy = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
    for _ in 0..5 {
        session.step(&mut policy);
    }
    let snapshot = scenario_checkpoint(&mut session, &policy, &surge.spec).unwrap();
    let file = crowd_ckpt::SnapshotFile::from_bytes(snapshot.to_bytes()).unwrap();
    let mut wrong = scenario_session(&dataset, other, &config());
    let err = resume_scenario_session(&mut wrong, &mut policy, &file, &other.spec)
        .expect_err("resuming under a different scenario must fail");
    assert!(
        matches!(err, crowd_ckpt::CkptError::Corrupt { .. }),
        "{err:?}"
    );
}

#[test]
fn offline_workers_never_see_a_pool() {
    // Seeded sweep: random churn specs (retire / late-join / empty windows), replayed
    // end to end — every decision the platform asks for must belong to a worker that is
    // online under the spec at that arrival's time.
    const CASES: usize = 12;
    let dataset = SimConfig::tiny().generate();
    let horizon = dataset.horizon();
    let n_workers = dataset.workers.len();
    let mut rng = Rng::seed_from(71_005);
    for case in 0..CASES {
        let mut spec = ScenarioSpec::new(900 + case as u64);
        for w in 0..n_workers {
            match rng.below(4) {
                0 => {
                    // Retires mid-horizon.
                    let at = rng.range(1, horizon as usize) as u64;
                    spec = spec.with_window(WorkerId(w as u32), 0, at);
                }
                1 => {
                    // Joins mid-horizon.
                    let at = rng.range(1, horizon as usize) as u64;
                    spec = spec.with_window(WorkerId(w as u32), at, horizon);
                }
                2 => {
                    // Empty window: never online.
                    let at = rng.range(0, horizon as usize) as u64;
                    spec = spec.with_window(WorkerId(w as u32), at, at);
                }
                _ => {} // always online
            }
        }
        let perturbed = spec.apply(&dataset);
        let mut session = Session::for_dataset(&perturbed, &config());
        loop {
            let env = session.env_mut();
            if !env.next_arrival() {
                break;
            }
            let view = env.arrival();
            assert!(
                spec.worker_online(view.worker_id, view.time),
                "case {case}: offline worker {:?} shown a pool at t={}",
                view.worker_id,
                view.time
            );
        }
        // The perturbed replay stays shard-count invariant.
        let reference = probe_platform(&perturbed, &mut RandomPolicy::new(ListMode::RankAll, 5));
        let sharded = probe_sharded(
            &perturbed,
            &mut RandomPolicy::new(ListMode::RankAll, 5),
            ShardSpec::new(8).with_pool(env_pool()),
        );
        assert_eq!(sharded, reference, "case {case}");
    }
}

#[test]
fn surge_thinning_preserves_arrival_subsequence_order() {
    // Seeded sweep over random thinning/densifying phase stacks: the kept arrivals are
    // always an ordered subsequence of the original stream (densified copies are
    // adjacent duplicates, which the matcher consumes in place), and non-arrival events
    // survive verbatim.
    const CASES: usize = 16;
    let dataset = SimConfig::tiny().generate();
    let original = arrivals(&dataset);
    let horizon = dataset.horizon();
    let mut rng = Rng::seed_from(71_006);
    for case in 0..CASES {
        let mut spec = ScenarioSpec::new(1_000 + case as u64);
        for _ in 0..rng.range(1, 4) {
            let from = rng.range(0, horizon as usize) as u64;
            let until = (from + rng.range(1, horizon as usize) as u64).min(horizon);
            // Mostly thinning; the order property must hold either way.
            let rate = if rng.chance(0.7) {
                rng.uniform(0.1, 0.9)
            } else {
                rng.uniform(1.1, 2.5)
            };
            spec = spec.with_surge(from, until, rate);
        }
        let perturbed = spec.apply(&dataset);
        // Collapse densified adjacent duplicates; the remainder must be a subsequence.
        let mut deduped: Vec<Event> = Vec::new();
        for event in arrivals(&perturbed) {
            if deduped.last() != Some(&event) {
                deduped.push(event);
            }
        }
        assert_subsequence(&deduped, &original, &format!("case {case}"));
        let count_non = |d: &Dataset| d.events.iter().filter(|e| !e.is_arrival()).count();
        assert_eq!(count_non(&perturbed), count_non(&dataset), "case {case}");
    }
}

#[test]
fn retired_workers_completed_tasks_stay_pooled_until_expiry() {
    // Edge case: a worker completes tasks and then retires while those tasks are still
    // pooled. The pool must keep serving them to other workers, and the replay must
    // stay shard-count invariant. Swept over retirement months.
    let dataset = SimConfig::tiny().generate();
    let mut rng = Rng::seed_from(71_007);
    let mut exercised = false;
    for case in 0..8 {
        let retire_at = MINUTES_PER_MONTH + rng.range(1, MINUTES_PER_MONTH as usize) as u64;
        let victim = WorkerId(rng.below(dataset.workers.len()) as u32);
        let spec = ScenarioSpec::new(1_100 + case as u64).with_window(victim, 0, retire_at);
        let perturbed = spec.apply(&dataset);

        // Replay on the platform, recording which tasks the victim completed and
        // asserting they remain reachable through later arrivals' pools.
        let mut session = Session::for_dataset(&perturbed, &config());
        let mut victim_tasks: Vec<crowd_sim::TaskId> = Vec::new();
        let mut seen_later = false;
        loop {
            if !session.env_mut().next_arrival() {
                break;
            }
            let view = session.env_mut().arrival();
            let (worker, time) = (view.worker_id, view.time);
            if time >= retire_at {
                assert_ne!(worker, victim, "case {case}: victim arrived after retiring");
                for task in view.tasks() {
                    if victim_tasks.contains(&task.id) {
                        seen_later = true;
                    }
                }
            }
            if view.is_empty() {
                continue;
            }
            let mut decision = crowd_sim::Decision::new();
            decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
            let env = session.env_mut();
            env.apply(&decision);
            let feedback = env.feedback();
            if worker == victim {
                if let Some((task, _)) = feedback.completed {
                    victim_tasks.push(task);
                }
            }
        }
        if seen_later {
            exercised = true;
        }
        let reference = probe_platform(&perturbed, &mut RandomPolicy::new(ListMode::RankAll, 5));
        let sharded = probe_sharded(
            &perturbed,
            &mut RandomPolicy::new(ListMode::RankAll, 5),
            ShardSpec::new(2).with_pool(env_pool()),
        );
        assert_eq!(sharded, reference, "case {case}");
    }
    assert!(
        exercised,
        "sweep never saw a retired worker's completed task still pooled"
    );
}

#[test]
fn surge_boundary_landing_exactly_on_an_arrival_is_inside_the_phase() {
    // Edge case: `from` is inclusive and `until` exclusive, so an arrival exactly at
    // `from` is surged and one exactly at `until` is not. Swept over real arrival times
    // from the dataset, using an integer densify rate so the effect is deterministic.
    let dataset = SimConfig::tiny().generate();
    let original = arrivals(&dataset);
    let mut rng = Rng::seed_from(71_008);
    for case in 0..8 {
        let pivot = original[rng.below(original.len())].time;
        let spec = ScenarioSpec::new(1_200 + case as u64).with_surge(pivot, pivot + 1, 2.0);
        let perturbed = spec.apply(&dataset);
        let at_pivot_before = original.iter().filter(|e| e.time == pivot).count();
        let at_pivot_after = arrivals(&perturbed)
            .iter()
            .filter(|e| e.time == pivot)
            .count();
        assert_eq!(
            at_pivot_after,
            2 * at_pivot_before,
            "case {case}: boundary arrival at t={pivot} must be densified"
        );
        // Everything off the pivot minute is untouched.
        let off_pivot = |d: &Dataset| {
            arrivals(d)
                .into_iter()
                .filter(|e| e.time != pivot)
                .collect::<Vec<_>>()
        };
        assert_eq!(off_pivot(&perturbed), off_pivot(&dataset), "case {case}");
        // And `until` is exclusive: surging [t, t) is a no-op on the stream.
        let empty = ScenarioSpec::new(1_300 + case as u64).with_surge(pivot, pivot, 3.0);
        assert_eq!(empty.apply(&dataset).events, dataset.events, "case {case}");
    }
}

#[test]
fn drift_epoch_with_zero_remaining_tasks_matches_the_baseline_replay() {
    // Edge case: a drift epoch scheduled after the last task creation rewrites nothing —
    // the spec is non-noop, but the replay must reproduce the baseline fingerprint.
    let dataset = SimConfig::tiny().generate();
    let last_creation = dataset
        .tasks
        .iter()
        .map(|t| t.created_at)
        .max()
        .unwrap_or(0);
    let mut rng = Rng::seed_from(71_009);
    let baseline = probe_platform(&dataset, &mut RandomPolicy::new(ListMode::RankAll, 5));
    for case in 0..8 {
        let at = last_creation + 1 + rng.range(0, MINUTES_PER_MONTH as usize) as u64;
        let step = rng.range(1, dataset.n_categories.max(2)) as u16;
        let spec = ScenarioSpec::new(1_400 + case as u64).with_drift(at, step, 1.5);
        assert!(!spec.is_noop());
        let perturbed = spec.apply(&dataset);
        assert_eq!(perturbed.tasks, dataset.tasks, "case {case}");
        assert_eq!(perturbed.events, dataset.events, "case {case}");
        let probe = probe_platform(&perturbed, &mut RandomPolicy::new(ListMode::RankAll, 5));
        assert_eq!(probe, baseline, "case {case}");
    }
}

#[test]
fn empty_availability_window_silences_a_worker_for_the_whole_replay() {
    // Edge case sweep: a worker with an empty window never arrives, every other worker
    // is untouched, and the replay stays shard-count invariant.
    let dataset = SimConfig::tiny().generate();
    let mut rng = Rng::seed_from(71_010);
    for case in 0..8 {
        let silenced = WorkerId(rng.below(dataset.workers.len()) as u32);
        let at = rng.range(0, dataset.horizon() as usize) as u64;
        let spec = ScenarioSpec::new(1_500 + case as u64).with_window(silenced, at, at);
        let perturbed = spec.apply(&dataset);
        assert!(perturbed
            .events
            .iter()
            .all(|e| e.kind != EventKind::WorkerArrival(silenced)));
        let others = |d: &Dataset| {
            arrivals(d)
                .into_iter()
                .filter(|e| e.kind != EventKind::WorkerArrival(silenced))
                .collect::<Vec<_>>()
        };
        assert_eq!(others(&perturbed), others(&dataset), "case {case}");
        let reference = probe_platform(&perturbed, &mut RandomPolicy::new(ListMode::RankAll, 5));
        let sharded = probe_sharded(
            &perturbed,
            &mut RandomPolicy::new(ListMode::RankAll, 5),
            ShardSpec::new(8).with_pool(env_pool()),
        );
        assert_eq!(sharded, reference, "case {case}");
    }
}
