//! Kernel differential equivalence (the PR 7 regression fence).
//!
//! The vectorised, register-blocked matmul kernels in `crowd-tensor` are the *only*
//! production path — every `Linear`, `RowwiseFF` and attention projection in the stack
//! flows through them — and the whole workspace's bit-identity story (parallel-,
//! checkpoint-, batched- and serve-equivalence) rests on their accumulation order never
//! moving. This suite pins that order differentially: every kernel output is compared
//! `to_bits`-for-`to_bits` against the retained scalar references
//! [`Matrix::matmul_ref`] / [`Matrix::matmul_transpose_ref`] (kept precisely as
//! oracles, like `learn_sequential` and `apply_owned`), over
//!
//! * **seeded sweeps** of random shapes and values (xoshiro-seeded, reproducible);
//! * **adversarial shapes**: 1×1, every lane-remainder width 1..=9 around the 8-wide
//!   register block, tall/skinny, and empty (zero rows, zero cols, zero inner dim);
//! * **adversarial values**: NaN, ±0.0, subnormals, and mixed magnitudes that make
//!   floating-point addition maximally order-sensitive;
//! * **the parallel twins** (`matmul_par`, `matmul_transpose_par`) at threads
//!   {1, 2, 8}, which must agree with the same scalar references — shard boundaries
//!   pick the computing thread, never the summation order.
//!
//! The documented contract (ARCHITECTURE.md, "Vectorised kernels"): every output
//! element is the sequential sum over the inner dimension in increasing index order,
//! one multiply-then-add per step starting from +0.0 — no FMA, no split partial sums,
//! no zero-skipping. The `accumulation_order_is_the_documented_left_to_right_fold`
//! test below fails if the kernels ever switch to any other order; the sweeps fail if
//! vectorisation ever changes a single bit.

use crowd_tensor::{Matrix, Rng, ThreadPool};

/// Asserts bit-exact equality, which is stricter than `==` (NaN payloads and the sign
/// of zero must survive the kernels unchanged).
fn assert_bits_eq(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!(
        got.shape(),
        want.shape(),
        "{label}: shape mismatch ({:?} vs {:?})",
        got.shape(),
        want.shape()
    );
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: element {i} diverged ({g:?} vs {w:?})"
        );
    }
}

/// Checks both kernels (and their parallel twins at several widths) against the scalar
/// references for one (a, b) pair, where `b` is shaped for `matmul` and `bt` — its
/// transpose-layout sibling — for `matmul_transpose`.
fn check_pair(label: &str, a: &Matrix, b: &Matrix, bt: &Matrix) {
    let want = a.matmul_ref(b).expect("reference matmul");
    let got = a.matmul(b).expect("vectorised matmul");
    assert_bits_eq(&format!("{label}/matmul"), &got, &want);

    let want_t = a
        .matmul_transpose_ref(bt)
        .expect("reference matmul_transpose");
    let got_t = a.matmul_transpose(bt).expect("vectorised matmul_transpose");
    assert_bits_eq(&format!("{label}/matmul_transpose"), &got_t, &want_t);

    for threads in [1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let par = a.matmul_par(b, pool).expect("parallel matmul");
        assert_bits_eq(&format!("{label}/matmul_par@{threads}"), &par, &want);
        let par_t = a
            .matmul_transpose_par(bt, pool)
            .expect("parallel matmul_transpose");
        assert_bits_eq(
            &format!("{label}/matmul_transpose_par@{threads}"),
            &par_t,
            &want_t,
        );
    }
}

fn random_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.uniform(-2.0, 2.0)).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

/// A matrix whose entries cycle through adversarial values, jittered by the RNG so no
/// two sweeps see the same placement.
fn adversarial_matrix(rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
    // NaN, signed zeros, subnormals, magnitude cliffs: the values most likely to expose
    // a reordered sum, a skipped term, or a flushed denormal.
    const PALETTE: [f32; 10] = [
        f32::NAN,
        0.0,
        -0.0,
        f32::MIN_POSITIVE / 2.0, // subnormal
        -1.0e-40,                // subnormal, negative
        1.0e30,
        -1.0e30,
        1.0e-30,
        1.0,
        -3.5,
    ];
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            if rng.chance(0.35) {
                PALETTE[rng.below(PALETTE.len())]
            } else {
                rng.uniform(-4.0, 4.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

#[test]
fn seeded_sweep_of_random_shapes_matches_the_references_bit_for_bit() {
    let mut rng = Rng::seed_from(71_001);
    for case in 0..60 {
        let m = rng.range(1, 24);
        let k = rng.range(1, 24);
        let n = rng.range(1, 40); // crosses the 8-wide lane boundary repeatedly
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let bt = random_matrix(n, k, &mut rng);
        check_pair(&format!("sweep[{case}] {m}x{k}x{n}"), &a, &b, &bt);
    }
}

#[test]
fn lane_remainder_widths_one_through_nine_match_the_references() {
    // n = 1..=9 brackets the LANES = 8 register block: pure-remainder (n < 8), exactly
    // one block (n = 8), and block-plus-remainder (n = 9).
    let mut rng = Rng::seed_from(71_002);
    for n in 1..=9usize {
        for &(m, k) in &[(1usize, 1usize), (3, 5), (4, 8), (7, 13)] {
            let a = adversarial_matrix(m, k, &mut rng);
            let b = adversarial_matrix(k, n, &mut rng);
            let bt = adversarial_matrix(n, k, &mut rng);
            check_pair(&format!("width {n} ({m}x{k})"), &a, &b, &bt);
        }
    }
}

#[test]
fn tall_skinny_and_one_by_one_shapes_match_the_references() {
    let mut rng = Rng::seed_from(71_003);
    // (m, k, n): single element, tall-skinny, short-fat, deep inner dimension — the
    // row-tile ladder (4/2/1) and both remainder paths all get exercised.
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (257, 3, 2),
        (2, 3, 257),
        (3, 511, 5),
        (9, 9, 9),
        (64, 16, 24),
    ] {
        let a = adversarial_matrix(m, k, &mut rng);
        let b = adversarial_matrix(k, n, &mut rng);
        let bt = adversarial_matrix(n, k, &mut rng);
        check_pair(&format!("shape {m}x{k}x{n}"), &a, &b, &bt);
    }
}

#[test]
fn empty_operands_produce_empty_or_zero_results_like_the_references() {
    // Zero rows, zero columns and a zero inner dimension: the kernels must agree with
    // the references on shape *and* contents (a k = 0 product is all +0.0 — the
    // documented accumulator start — not garbage).
    for &(m, k, n) in &[(0usize, 4usize, 3usize), (4, 0, 3), (4, 3, 0), (0, 0, 0)] {
        let a = Matrix::zeros(m, k);
        let b = Matrix::zeros(k, n);
        let bt = Matrix::zeros(n, k);
        check_pair(&format!("empty {m}x{k}x{n}"), &a, &b, &bt);
        let got = a.matmul(&b).unwrap();
        assert_eq!(got.shape(), (m, n));
        assert!(got
            .as_slice()
            .iter()
            .all(|v| v.to_bits() == 0.0f32.to_bits()));
    }
}

#[test]
fn adversarial_value_sweep_preserves_nan_payloads_and_signed_zeros() {
    let mut rng = Rng::seed_from(71_004);
    for case in 0..40 {
        let m = rng.range(1, 12);
        let k = rng.range(1, 12);
        let n = rng.range(1, 20);
        let a = adversarial_matrix(m, k, &mut rng);
        let b = adversarial_matrix(k, n, &mut rng);
        let bt = adversarial_matrix(n, k, &mut rng);
        check_pair(&format!("adversarial[{case}] {m}x{k}x{n}"), &a, &b, &bt);
    }
}

#[test]
fn accumulation_order_is_the_documented_left_to_right_fold() {
    // [1e8, 1, -1e8] · [1, 1, 1] is maximally order-sensitive: the documented
    // left-to-right fold absorbs the 1.0 into 1e8 (1e8 + 1 == 1e8 in f32) and then
    // cancels, giving exactly +0.0. Any other association — (1 + -1e8) first, or a
    // split partial sum such as (1e8) + (1 + -1e8) — gives 1.0 instead. This pins the
    // ARCHITECTURE.md contract independently of the reference implementation.
    let a = Matrix::from_vec(1, 3, vec![1.0e8, 1.0, -1.0e8]).unwrap();
    let ones_col = Matrix::from_vec(3, 1, vec![1.0; 3]).unwrap();
    let ones_row = Matrix::from_vec(1, 3, vec![1.0; 3]).unwrap();

    let spec: f32 = a.as_slice().iter().fold(0.0f32, |acc, &v| acc + v * 1.0);
    assert_eq!(spec.to_bits(), 0.0f32.to_bits(), "spec fold itself");

    for (label, result) in [
        ("matmul", a.matmul(&ones_col).unwrap()),
        ("matmul_ref", a.matmul_ref(&ones_col).unwrap()),
        ("matmul_transpose", a.matmul_transpose(&ones_row).unwrap()),
        (
            "matmul_transpose_ref",
            a.matmul_transpose_ref(&ones_row).unwrap(),
        ),
    ] {
        assert_eq!(
            result.get(0, 0).to_bits(),
            spec.to_bits(),
            "{label} does not use the documented left-to-right accumulation order"
        );
    }

    // The same probe embedded past the lane boundary: column 10 of a 1×3 · 3×16
    // product exercises the blocked kernel (not just the remainder path).
    let mut wide = Matrix::zeros(3, 16);
    for r in 0..3 {
        wide.set(r, 10, 1.0);
    }
    let blocked = a.matmul(&wide).unwrap();
    assert_eq!(blocked.get(0, 10).to_bits(), spec.to_bits());
}

#[test]
fn zero_rows_are_not_skipped() {
    // A row of exact zeros must still run the documented fold (0 * b summed over k),
    // because 0.0 * NaN is NaN: "skip zero terms" is an *observable* optimisation, and
    // the kernels must not take it. (The sign of an output zero, by contrast, is
    // always + here: the fold starts at +0.0 and +0.0 + -0.0 rounds to +0.0.)
    let a = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]).unwrap();
    let b = Matrix::from_vec(2, 2, vec![f32::NAN, -1.0, 1.0, -1.0]).unwrap();
    let got = a.matmul(&b).unwrap();
    let want = a.matmul_ref(&b).unwrap();
    assert_bits_eq("zero-row", &got, &want);
    assert!(
        got.get(0, 0).is_nan(),
        "0 * NaN must stay NaN, not be skipped"
    );
    assert_eq!(
        got.get(0, 1).to_bits(),
        0.0f32.to_bits(),
        "the zero row's fold lands on +0.0 exactly"
    );
}

#[test]
fn shape_mismatches_error_identically_on_kernels_and_references() {
    let a = Matrix::zeros(2, 3);
    let b = Matrix::zeros(4, 2);
    assert!(a.matmul(&b).is_err());
    assert!(a.matmul_ref(&b).is_err());
    let bt = Matrix::zeros(2, 4);
    assert!(a.matmul_transpose(&bt).is_err());
    assert!(a.matmul_transpose_ref(&bt).is_err());
}
