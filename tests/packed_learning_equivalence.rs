//! Packed-vs-sequential learning equivalence (the PR 3 regression fence).
//!
//! `DqnLearner::learn` differentiates the whole minibatch as **one** autograd graph
//! (`SetQNetwork::forward_batch` + one in-graph weighted masked MSE + two packed target
//! passes); `DqnLearner::learn_sequential` is the retained per-transition reference loop.
//! This suite proves the equivalence contract over long seeded sweeps for both MDPs:
//!
//! * **Bit-identical observables.** From bit-identical learner state, both paths report
//!   the same `LearnReport` loss and mean TD error *to the bit*, write the same replay
//!   priorities to the bit, and consume the sampling RNG identically — for ≥ 50
//!   consecutive updates per MDP, with fresh transitions churning the memory between
//!   updates. This holds because the packed forward values equal the per-state forward
//!   values bit for bit (row-wise ops never mix rows; per-segment attention runs the same
//!   kernels on the same bits; padding contributes exact zeros) and the packed loss
//!   accumulates the per-transition terms in the sequential loop's f32 order.
//! * **Parameter agreement to documented f32 tolerance.** Post-update parameters are
//!   *not* bit-compared: the packed backward sums each parameter's gradient over all
//!   segments in one sweep, while the sequential loop accumulates per-transition gradient
//!   matrices and then scales — the same real-number sum in a different f32 association
//!   order. The sweep asserts every parameter stays within a tight absolute/relative
//!   tolerance after every update.
//!
//! Protocol per update: clone the packed learner (full state: networks, Adam moments,
//! replay priorities, annealed β, **and the owned minibatch-sampling RNG**), run
//! `learn_sequential` on the clone and `learn` on the original, compare, drop the clone.
//! Cloning re-synchronises the tolerated parameter drift each round, so all 50+ updates
//! compare both paths from bit-identical pre-states and the bit-level assertions stay
//! exact.

use crowd_bench::synthetic_state;
use crowd_rl_core::{
    DdqnConfig, DqnLearner, FutureBranch, StateKind, StateTransformer, Transition,
};
use crowd_tensor::Rng;
use std::sync::Arc;

const UPDATES: usize = 52;
const MAX_TASKS: usize = 6;
const TASK_DIM: usize = 4;
const WORKER_DIM: usize = 3;

fn config() -> DdqnConfig {
    DdqnConfig {
        max_tasks: MAX_TASKS,
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        buffer_size: 64,
        // Exercise the hard target sync a few times inside the sweep.
        target_sync_every: 13,
        learning_rate: 0.01,
        ..DdqnConfig::default()
    }
}

/// A random state over `pool` tasks (1 ≤ pool ≤ MAX_TASKS keeps every transition's
/// action row real; branch states additionally use pool = 0 for expired-pool branches).
/// Rides on the shared `crowd_bench::synthetic_state` fixture so this suite and
/// `benches/batched_training.rs` generate from one definition.
fn random_state(tf: &StateTransformer, pool: usize, rng: &mut Rng) -> crowd_rl_core::StateTensor {
    synthetic_state(tf, pool, TASK_DIM, WORKER_DIM, rng)
}

/// A random transition with 0–3 future branches of mixed pool sizes, including empty
/// branch pools and zero-probability branches (both must be skipped identically by the
/// packed and the sequential target computation).
fn random_transition(tf: &StateTransformer, rng: &mut Rng) -> Transition {
    let pool = 1 + rng.below(MAX_TASKS);
    let state = random_state(tf, pool, rng);
    let n_branches = rng.below(4);
    let branches: Vec<FutureBranch> = (0..n_branches)
        .map(|_| {
            let branch_pool = rng.below(MAX_TASKS + 1); // may be 0 (empty future pool)
            FutureBranch {
                probability: if rng.unit() < 0.2 {
                    0.0 // dead branch: must contribute nothing in either path
                } else {
                    rng.uniform(0.05, 0.5)
                },
                state: random_state(tf, branch_pool, rng),
            }
        })
        .collect();
    Transition {
        action_row: rng.below(pool),
        reward: if rng.unit() < 0.5 { 1.0 } else { 0.0 },
        state,
        branches: Arc::new(branches),
    }
}

fn max_param_divergence(a: &DqnLearner, b: &DqnLearner) -> (f32, String) {
    let mut worst = 0.0f32;
    let mut worst_name = String::new();
    for ((_, name, pa), (_, _, pb)) in a.params().iter().zip(b.params().iter()) {
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            // Normalised divergence: absolute for small weights, relative for large.
            let diff = (x - y).abs() / x.abs().max(y.abs()).max(1.0);
            if diff > worst {
                worst = diff;
                worst_name = name.to_string();
            }
        }
    }
    (worst, worst_name)
}

/// The seeded sweep for one MDP: ≥ 50 packed-vs-sequential update pairs from identical
/// states, with the replay memory churning between updates.
fn run_sweep(kind: StateKind, gamma: f32, seed: u64) {
    let cfg = config();
    let tf = StateTransformer::new(kind, MAX_TASKS, TASK_DIM, WORKER_DIM);
    let mut init_rng = Rng::seed_from(seed);
    let mut learner = DqnLearner::new(&cfg, tf.row_dim(), gamma, &mut init_rng);
    let mut feed_rng = Rng::seed_from(seed ^ 0x9E37_79B9_7F4A_7C15);
    for _ in 0..cfg.batch_size * 2 {
        learner.store_transition(random_transition(&tf, &mut feed_rng));
    }

    for update in 0..UPDATES {
        // Keep the buffer churning so the sweep covers wrap-around and re-prioritised
        // slots, not just the initial fill.
        learner.store_transition(random_transition(&tf, &mut feed_rng));
        if update % 3 == 0 {
            learner.store_transition(random_transition(&tf, &mut feed_rng));
        }

        // The clone carries the sampling RNG, so both paths draw the same minibatch.
        let mut sequential = learner.clone();
        let packed_report = learner
            .learn()
            .expect("packed learn failed")
            .expect("memory holds enough transitions");
        let sequential_report = sequential
            .learn_sequential()
            .expect("sequential learn failed")
            .expect("memory holds enough transitions");

        assert_eq!(
            packed_report.batch, sequential_report.batch,
            "[{kind:?} update {update}] batch size diverged"
        );
        assert_eq!(
            packed_report.loss.to_bits(),
            sequential_report.loss.to_bits(),
            "[{kind:?} update {update}] loss diverged: packed {} vs sequential {}",
            packed_report.loss,
            sequential_report.loss
        );
        assert_eq!(
            packed_report.mean_td_error.to_bits(),
            sequential_report.mean_td_error.to_bits(),
            "[{kind:?} update {update}] mean TD error diverged: packed {} vs sequential {}",
            packed_report.mean_td_error,
            sequential_report.mean_td_error
        );
        for slot in 0..cfg.buffer_size {
            assert_eq!(
                learner.replay_priority(slot).to_bits(),
                sequential.replay_priority(slot).to_bits(),
                "[{kind:?} update {update}] replay priority diverged at slot {slot}"
            );
        }
        assert_eq!(
            learner.rng_probe(),
            sequential.rng_probe(),
            "[{kind:?} update {update}] the two paths consumed the RNG differently"
        );
        let (divergence, name) = max_param_divergence(&learner, &sequential);
        assert!(
            divergence < 1e-3,
            "[{kind:?} update {update}] parameter {name} diverged beyond f32 tolerance: {divergence}"
        );
        assert_eq!(learner.updates(), sequential.updates());
    }
    assert_eq!(learner.updates() as usize, UPDATES);
}

#[test]
fn packed_learning_matches_sequential_for_mdp_w() {
    // MDP(w): worker-benefit states `[f_t | f_w]`, completion rewards, γ = 0.3.
    run_sweep(StateKind::Worker, 0.3, 202_401);
}

#[test]
fn packed_learning_matches_sequential_for_mdp_r() {
    // MDP(r): requester-benefit states `[f_t | f_w | q_w | q_t]`, γ = 0.5.
    run_sweep(StateKind::Requester, 0.5, 202_402);
}

#[test]
fn packed_learning_handles_supervised_transitions() {
    // Branch-free transitions (empty future distributions) reduce both paths to masked
    // regression on the immediate reward; they must still agree to the bit.
    let cfg = config();
    let tf = StateTransformer::new(StateKind::Worker, MAX_TASKS, TASK_DIM, WORKER_DIM);
    let mut rng = Rng::seed_from(202_403);
    let mut learner = DqnLearner::new(&cfg, tf.row_dim(), 0.9, &mut rng);
    for _ in 0..cfg.batch_size * 2 {
        let pool = 1 + rng.below(MAX_TASKS);
        let state = random_state(&tf, pool, &mut rng);
        learner.store_transition(Transition {
            action_row: rng.below(pool),
            reward: rng.uniform(0.0, 1.0),
            state,
            branches: Arc::new(Vec::new()),
        });
    }
    for update in 0..10 {
        let mut sequential = learner.clone();
        let packed = learner.learn().unwrap().unwrap();
        let reference = sequential.learn_sequential().unwrap().unwrap();
        assert_eq!(
            packed.loss.to_bits(),
            reference.loss.to_bits(),
            "supervised update {update} loss diverged"
        );
        assert_eq!(
            packed.mean_td_error.to_bits(),
            reference.mean_td_error.to_bits(),
            "supervised update {update} TD error diverged"
        );
    }
}
