//! Parallel-vs-serial execution equivalence (the PR 4 regression fence).
//!
//! The workspace's parallelism is **deterministic by construction**: work is sharded so
//! every unit owns its inputs and outputs — a session owns its policy and RNG streams
//! (`SessionBatch::step_all_parallel`), a matmul shard owns its output rows
//! (`Matrix::matmul_par` and friends), a learner branch owns its replay memory, parameter
//! stores and sampling RNG (`DdqnAgent`'s `par_join` dispatch). This suite proves the
//! resulting contract end to end over full replays of the evaluation protocol:
//!
//! > `results(threads = 1) == results(threads = k)` — **to the bit** — for every
//! > observable: per-session metrics, completions, final task qualities, evaluated
//! > arrival counts, every learner's loss stream and post-run sampling-RNG probe, the
//! > agents' exploration-RNG probes, and every post-run network parameter.
//!
//! Three execution shapes are covered:
//!
//! * [`SessionBatch::step_all_parallel`] — N *training* DDQN agents (exploration and
//!   learning active, including a balanced agent whose two learner branches dispatch
//!   concurrently) plus baselines, sharded across pool workers;
//! * [`SessionBatch::step_batched`] — one shared frozen agent with the parallel
//!   pack/unpack stages around the single batched forward pass;
//! * `ThreadPool::from_env()` — whatever `CROWD_THREADS` the environment picked (CI runs
//!   this whole suite twice, at `CROWD_THREADS=1` and `CROWD_THREADS=4`, so the serial
//!   fallback and a real multi-thread pool both stay proven).
//!
//! Since PR 7, every `ThreadPool` call dispatches through the process-wide
//! **persistent worker pool** (`crowd_parallel::PersistentPool`) instead of spawning
//! scoped threads per call — so every replay below additionally proves that parked,
//! warm-reused workers preserve bit-identity, and
//! `replay_on_a_warm_persistent_pool_matches_serial` pins the warm-reuse case
//! explicitly (workers already spawned and parked before the replay begins).

use crowd_experiments::{RunOutcome, RunnerConfig, Session, SessionBatch};
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{
    ArrivalContext, ArrivalView, BoxedPolicy, Dataset, Decision, FeedbackView, LearnerTiming,
    Platform, Policy, PolicyFeedback, SimConfig,
};
use crowd_tensor::ThreadPool;
use std::sync::{Arc, Mutex};

/// Bit-level fingerprint of one session's outcome (no wall-clock fields).
#[derive(Debug, Clone, PartialEq, Eq)]
struct OutcomeBits {
    policy: String,
    summary: [u32; 6],
    timestamps: usize,
    total_completions: usize,
    final_total_quality: u32,
    evaluated_arrivals: usize,
}

impl OutcomeBits {
    fn of(outcome: &RunOutcome) -> Self {
        let s = outcome.summary();
        OutcomeBits {
            policy: outcome.policy.clone(),
            summary: [
                s.cr.to_bits(),
                s.k_cr.to_bits(),
                s.ndcg_cr.to_bits(),
                s.qg.to_bits(),
                s.k_qg.to_bits(),
                s.ndcg_qg.to_bits(),
            ],
            timestamps: s.timestamps,
            total_completions: outcome.total_completions,
            final_total_quality: outcome.final_total_quality.to_bits(),
            evaluated_arrivals: outcome.evaluated_arrivals,
        }
    }
}

/// Bit-level fingerprint of a DDQN agent's internal state after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AgentBits {
    explore_rng_probe: u64,
    worker_losses: Vec<u32>,
    requester_losses: Vec<u32>,
    worker_rng_probe: u64,
    requester_rng_probe: u64,
    worker_params: Vec<u32>,
    requester_params: Vec<u32>,
    updates: u64,
}

impl AgentBits {
    fn of(agent: &DdqnAgent) -> Self {
        let params = |learner: &crowd_rl_core::DqnLearner| {
            learner
                .params()
                .iter()
                .flat_map(|(_, _, m)| m.as_slice().iter().map(|v| v.to_bits()))
                .collect::<Vec<u32>>()
        };
        AgentBits {
            explore_rng_probe: agent.rng_probe(),
            worker_losses: agent
                .worker_learner()
                .loss_history()
                .iter()
                .map(|l| l.to_bits())
                .collect(),
            requester_losses: agent
                .requester_learner()
                .loss_history()
                .iter()
                .map(|l| l.to_bits())
                .collect(),
            worker_rng_probe: agent.worker_learner().rng_probe(),
            requester_rng_probe: agent.requester_learner().rng_probe(),
            worker_params: params(agent.worker_learner()),
            requester_params: params(agent.requester_learner()),
            updates: agent.total_updates(),
        }
    }
}

/// A boxed-policy adapter that keeps the concrete agent reachable after the run: the
/// session owns the box, the test keeps a second `Arc` to fingerprint the agent's
/// internal state. Never contended (each session steps its own policy), so the mutex is
/// only the cheap price of shared ownership.
struct ProbedAgent {
    name: String,
    inner: Arc<Mutex<DdqnAgent>>,
}

impl ProbedAgent {
    fn pair(agent: DdqnAgent) -> (Box<Self>, Arc<Mutex<DdqnAgent>>) {
        let name = agent.name().to_string();
        let inner = Arc::new(Mutex::new(agent));
        (
            Box::new(ProbedAgent {
                name,
                inner: Arc::clone(&inner),
            }),
            inner,
        )
    }
}

impl Policy for ProbedAgent {
    fn name(&self) -> &str {
        &self.name
    }
    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        self.inner.lock().unwrap().act(view, decision);
    }
    fn observe(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) {
        self.inner.lock().unwrap().observe(view, feedback);
    }
    fn end_of_day(&mut self, day: usize) {
        self.inner.lock().unwrap().end_of_day(day);
    }
    fn warm_start(&mut self, history: &[(ArrivalContext, PolicyFeedback)]) {
        self.inner.lock().unwrap().warm_start(history);
    }
    fn learner_timing(&self) -> Option<LearnerTiming> {
        self.inner.lock().unwrap().learner_timing()
    }
    fn set_thread_pool(&mut self, pool: ThreadPool) {
        self.inner.lock().unwrap().set_thread_pool(pool);
    }
}

fn dataset() -> Dataset {
    SimConfig::tiny().generate()
}

fn agent_config() -> DdqnConfig {
    DdqnConfig {
        max_tasks: 24,
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        buffer_size: 128,
        learn_every: 4,
        exploration_anneal_steps: 150,
        ..DdqnConfig::default()
    }
}

fn agent_for(dataset: &Dataset, config: DdqnConfig) -> DdqnAgent {
    let features = Platform::default_feature_space(dataset);
    DdqnAgent::new(config, features.task_dim(), features.worker_dim())
}

/// Full replay of N sessions through `step_all_parallel` on a `threads`-wide pool:
/// three *training* DDQN agents (worker-only, requester-only, and a balanced one whose
/// two learner branches run the concurrent `par_join` dispatch) plus a baseline.
fn run_replay(dataset: &Dataset, pool: ThreadPool) -> (Vec<OutcomeBits>, Vec<AgentBits>) {
    let configs = [
        agent_config().worker_only(),
        agent_config().requester_only(),
        agent_config().with_balance(0.5),
    ];
    let mut policies: Vec<BoxedPolicy> = Vec::new();
    let mut probes = Vec::new();
    for config in configs {
        let (boxed, probe) = ProbedAgent::pair(agent_for(dataset, config));
        policies.push(boxed);
        probes.push(probe);
    }
    policies.push(Box::new(crowd_baselines::RandomPolicy::new(
        crowd_baselines::ListMode::RankAll,
        13,
    )));

    let cfg = RunnerConfig::default();
    let mut batch = SessionBatch::new().with_pool(pool);
    for policy in &mut policies {
        policy.set_thread_pool(pool);
        batch.push(Session::for_dataset(dataset, &cfg));
    }
    batch.run_all_parallel(&mut policies);
    let outcomes = batch.finish(&policies);

    let outcome_bits = outcomes.iter().map(OutcomeBits::of).collect();
    let agent_bits = probes
        .iter()
        .map(|probe| AgentBits::of(&probe.lock().unwrap()))
        .collect();
    (outcome_bits, agent_bits)
}

#[test]
fn full_replay_is_bit_identical_at_threads_1_2_8() {
    let dataset = dataset();
    let (outcomes_1, agents_1) = run_replay(&dataset, ThreadPool::new(1));
    assert_eq!(outcomes_1.len(), 4);
    // The training agents actually learned — otherwise the loss-stream comparison below
    // would be vacuous.
    assert!(agents_1.iter().all(|a| a.updates > 0), "no learner ran");
    assert!(
        !agents_1[2].worker_losses.is_empty() && !agents_1[2].requester_losses.is_empty(),
        "the balanced agent must exercise BOTH learner branches (the par_join path)"
    );
    for threads in [2usize, 8] {
        let (outcomes_k, agents_k) = run_replay(&dataset, ThreadPool::new(threads));
        assert_eq!(
            outcomes_1, outcomes_k,
            "per-session outcomes diverged at {threads} threads"
        );
        assert_eq!(
            agents_1, agents_k,
            "agent internal state (loss streams / RNG probes / parameters) diverged at {threads} threads"
        );
    }
}

#[test]
fn full_replay_on_the_env_configured_pool_matches_serial() {
    // CI runs the suite twice — CROWD_THREADS=1 and CROWD_THREADS=4 — so both the serial
    // fallback and a real pool flow through the exact same assertion.
    let dataset = dataset();
    let env_pool = ThreadPool::from_env();
    let serial = run_replay(&dataset, ThreadPool::serial());
    let pooled = run_replay(&dataset, env_pool);
    assert_eq!(
        serial,
        pooled,
        "replay on the CROWD_THREADS pool ({} threads) diverged from serial",
        env_pool.threads()
    );
}

/// Shared-agent batched stepping (`step_batched` with its parallel pack/unpack stages)
/// at several thread counts: a trained-then-frozen agent over N behaviour seeds.
#[test]
fn batched_stepping_is_bit_identical_at_any_thread_count() {
    let dataset = dataset();
    let cfg = RunnerConfig::default();

    let run = |pool: ThreadPool| {
        let mut agent = agent_for(&dataset, agent_config().with_balance(0.5));
        agent.set_thread_pool(pool);
        // Train over one replay, then freeze: `act` becomes a pure function of the entry
        // parameters, the precondition for batched ≡ sequential (see BatchedPolicy docs).
        let mut training_session = Session::for_dataset(&dataset, &cfg);
        training_session.run(&mut agent);
        agent.freeze_exploration();
        agent.freeze_learning();

        let mut batch = SessionBatch::new().with_pool(pool);
        for i in 0..4u64 {
            batch.push(Session::for_dataset(
                &dataset,
                &RunnerConfig {
                    platform_seed: 5_000 + i,
                    ..cfg.clone()
                },
            ));
        }
        batch.run_batched(&mut agent);
        let outcomes: Vec<OutcomeBits> = batch
            .finish_shared(agent.name())
            .iter()
            .map(OutcomeBits::of)
            .collect();
        (outcomes, AgentBits::of(&agent))
    };

    let serial = run(ThreadPool::new(1));
    assert!(serial.1.updates > 0, "training replay never learned");
    for threads in [2usize, 8] {
        let pooled = run(ThreadPool::new(threads));
        assert_eq!(
            serial, pooled,
            "batched stepping diverged at {threads} threads"
        );
    }
}

#[test]
fn replay_on_a_warm_persistent_pool_matches_serial() {
    let dataset = dataset();
    let pool = ThreadPool::new(4);
    // Warm the persistent pool first: after this call its workers exist and are
    // parked, so the replay below runs entirely on reused (not freshly spawned)
    // workers — the case a per-call scoped pool never had.
    let mut scratch = vec![0u64; 64];
    pool.par_chunks(&mut scratch, 1, |offset, chunk| {
        chunk.iter_mut().for_each(|x| *x = offset as u64)
    });
    let spawned_before = crowd_parallel::PersistentPool::global().workers_spawned();
    assert!(
        spawned_before >= 1,
        "the warm-up call must have spawned workers"
    );

    let warm = run_replay(&dataset, pool);
    let serial = run_replay(&dataset, ThreadPool::serial());
    assert_eq!(
        warm, serial,
        "a replay on warm, reused pool workers diverged from serial"
    );
}

#[test]
fn empty_batch_parallel_stepping_is_a_noop() {
    let mut batch: SessionBatch = SessionBatch::new().with_pool(ThreadPool::new(8));
    assert_eq!(batch.step_all_parallel(&mut []), 0);
    assert_eq!(batch.pool().threads(), 8);
}
