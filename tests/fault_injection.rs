//! Deterministic fault injection across the storage stack: every disk touch in
//! `crowd-ckpt` (and therefore in the `crowd-serve` decision log built on it) is a
//! numbered operation behind an [`Fs`] handle, and a [`FaultPlan`] can make exactly
//! op N fail, write short, read corrupt, or stall. That turns "what if the disk
//! fails *right here*?" into a sweepable test input: these tests inject a fault at
//! **every** numbered I/O site of a workload and assert the bit-identical-or-typed
//! contract — the system either recovers to the exact state an unfaulted run
//! reaches, or fails with a typed error. Silent divergence is never an outcome.
//!
//! The serving sweeps drive a *learning* DDQN agent (exploration and learner ticks
//! on), the hardest state to keep bit-exact, through [`Client::decide_with_retry`] —
//! the self-healing client loop that turns transient `Saturated`/`Degraded`
//! rejections into bounded backoff.

use crowd_ckpt::{CkptError, FaultKind, FaultPlan, FaultRule, Fs, OpClass, Snapshot, SnapshotFile};
use crowd_experiments::{collect_arrival_contexts, ddqn_config_for, ddqn_for, Scale};
use crowd_rl_core::DdqnAgent;
use crowd_serve::{
    replay_records, DecisionLog, LogConfig, RetryPolicy, ServeConfig, ServeDecision, ServeError,
    Server,
};
use crowd_sim::{ArrivalContext, Dataset, Policy, PolicyFeedback, SimConfig};
use crowd_tensor::ThreadPool;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn dataset() -> Dataset {
    SimConfig::tiny().generate()
}

/// A live agent: learning ON, exploration ON — every decision draws RNG, every
/// feedback runs learner ticks.
fn agent(dataset: &Dataset) -> DdqnAgent {
    ddqn_for(dataset, ddqn_config_for(Scale::Tiny))
}

/// A frozen twin of [`agent`]: no learning, no exploration (deterministic + cheap).
fn frozen(dataset: &Dataset) -> DdqnAgent {
    let mut frozen = agent(dataset);
    frozen.freeze_learning();
    frozen.freeze_exploration();
    frozen
}

fn feedback_for(context: &ArrivalContext, decision: &ServeDecision) -> PolicyFeedback {
    PolicyFeedback {
        time: context.time,
        worker_id: context.worker_id,
        worker_quality: context.worker_quality,
        shown: decision.shown.clone(),
        completed: decision.shown.first().map(|&t| (t, 0)),
        quality_gain: 0.125,
        worker_feature_before: context.worker_feature.clone(),
        worker_feature_after: context.worker_feature.clone(),
    }
}

/// Canonical (wall-clock-free) encoding of the policy's complete semantic state.
fn fingerprint(policy: &dyn Policy) -> Vec<u8> {
    let mut w = crowd_ckpt::StateWriter::canonical();
    policy
        .checkpoint_state(&mut w)
        .expect("policy supports checkpointing");
    w.into_bytes()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crowd-fault-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_config(dir: &Path, fs: Fs) -> ServeConfig {
    let mut log = LogConfig::new(dir);
    log.fs = fs;
    ServeConfig {
        pool: ThreadPool::from_env(),
        log: Some(log),
        ..ServeConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Snapshot layer: atomic publish under a fault at every I/O site.
// ---------------------------------------------------------------------------

fn blob_snapshot(tag: u8) -> Snapshot {
    let mut snapshot = Snapshot::new();
    snapshot.put_raw("blob", vec![tag; 1024]);
    snapshot
}

/// The `blob` section of the snapshot at `path`, read with the real filesystem.
/// Panics on any torn/corrupt state — the atomicity contract says there is none.
fn read_blob(path: &Path) -> Vec<u8> {
    let file = SnapshotFile::read_in(&Fs::real(), path).expect("published snapshot always reads");
    let mut r = file.reader("blob").expect("blob section present");
    let n = r.remaining();
    r.take_bytes(n).expect("blob bytes").to_vec()
}

#[test]
fn snapshot_rewrite_is_atomic_under_a_fault_at_every_io_site() {
    // Baseline pass: count the I/O ops one snapshot write issues.
    let probe_dir = tmp_dir("snap-probe");
    std::fs::create_dir_all(&probe_dir).unwrap();
    let (fs, probe) = Fs::faulty(FaultPlan::none());
    blob_snapshot(0xBB)
        .write_to_in(&fs, probe_dir.join("state.ckpt"))
        .unwrap();
    let write_ops = probe.ops();
    assert!(write_ops >= 5, "create/write/sync/rename/sync_dir expected");
    std::fs::remove_dir_all(&probe_dir).unwrap();

    // Sweep: overwrite an existing good image with op n poisoned, for every n. The
    // published path must always hold a *complete* image — the old one when the
    // write failed before the rename took, the new one otherwise. Never a torn mix.
    let old_blob = vec![0xAAu8; 1024];
    let new_blob = vec![0xBBu8; 1024];
    for n in 0..write_ops {
        let dir = tmp_dir(&format!("snap-{n}"));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        blob_snapshot(0xAA).write_to_in(&Fs::real(), &path).unwrap();

        let (fs, _probe) = Fs::faulty(FaultPlan::fail_op(n));
        let result = blob_snapshot(0xBB).write_to_in(&fs, &path);
        let on_disk = read_blob(&path);
        match result {
            Ok(()) => assert_eq!(on_disk, new_blob, "fault at op {n}: success must publish"),
            Err(error) => {
                // Typed CkptError; the image is the old or the new one, complete.
                assert!(
                    on_disk == old_blob || on_disk == new_blob,
                    "fault at op {n} tore the published image (error was: {error})"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn snapshot_read_corruption_is_a_typed_crc_error() {
    let dir = tmp_dir("snap-rot");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.ckpt");
    blob_snapshot(0xCC).write_to_in(&Fs::real(), &path).unwrap();

    // Silent media rot: the read succeeds but one mid-file byte is flipped. The
    // per-section CRC must turn that into a typed error, never a loaded state.
    let (fs, _probe) = Fs::faulty(FaultPlan::none().with_rule(FaultRule {
        from_op: 0,
        to_op: u64::MAX,
        class: Some(OpClass::Read),
        kind: FaultKind::CorruptRead,
        once: false,
    }));
    let error = SnapshotFile::read_in(&fs, &path).unwrap_err();
    assert!(
        matches!(error, CkptError::CrcMismatch { .. }),
        "expected a CRC mismatch, got: {error}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Serving stack: a learning server under a fault at every I/O site.
// ---------------------------------------------------------------------------

struct WorkloadOutcome {
    decisions: Vec<ServeDecision>,
    fingerprint: Vec<u8>,
    healed: u64,
    degraded_rounds: u64,
}

/// Serves every context (decide via the retrying client, then feedback) against a
/// fresh live agent over a log in `dir` backed by `fs`, then shuts down gracefully.
fn run_serve_workload(
    fs: Fs,
    dir: &Path,
    dataset: &Dataset,
    contexts: &[ArrivalContext],
) -> Result<WorkloadOutcome, ServeError> {
    let server = Server::start(Box::new(agent(dataset)), serve_config(dir, fs))?;
    let client = server.client();
    let retry = RetryPolicy {
        deadline: Duration::from_secs(10),
        ..RetryPolicy::default()
    };
    let mut decisions = Vec::new();
    for context in contexts {
        let served = client.decide_with_retry(context, &retry)?;
        client
            .feedback(served.request_id, feedback_for(context, &served))
            .map_err(|_| ServeError::ShuttingDown)?;
        decisions.push(served);
    }
    let (policy, report) = server.shutdown();
    Ok(WorkloadOutcome {
        decisions,
        fingerprint: fingerprint(policy.as_ref()),
        healed: report.healed,
        degraded_rounds: report.degraded_rounds,
    })
}

/// I/O ops `Server::start` issues before any request is served (deterministic: the
/// log is created synchronously before the worker spawns).
fn ops_to_start(dataset: &Dataset) -> u64 {
    let dir = tmp_dir("start-probe");
    let (fs, probe) = Fs::faulty(FaultPlan::none());
    let server = Server::start(Box::new(frozen(dataset)), serve_config(&dir, fs)).unwrap();
    let ops = probe.ops();
    server.kill();
    let _ = std::fs::remove_dir_all(&dir);
    ops
}

#[test]
fn a_fault_at_every_io_site_recovers_bit_identical_or_fails_typed() {
    let dataset = dataset();
    let contexts = collect_arrival_contexts(&dataset, 31, 8);
    assert_eq!(contexts.len(), 8);
    let start_ops = ops_to_start(&dataset);

    // Baseline: the same workload on a fault-free injected fs gives the op count to
    // sweep and the state every successful faulted run must land on.
    let clean_dir = tmp_dir("sweep-clean");
    let (fs, probe) = Fs::faulty(FaultPlan::none());
    let clean = run_serve_workload(fs, &clean_dir, &dataset, &contexts).unwrap();
    let total_ops = probe.ops();
    assert!(total_ops > start_ops, "serving must issue log I/O");
    std::fs::remove_dir_all(&clean_dir).unwrap();

    // Sweep a single class-appropriate fault (short write, failed fsync, failed
    // rename, …) at every site. Ops past `start_ops` are the serving phase: the
    // bounded in-server retry (`append_retrying` + tail heal) must absorb every one
    // of those without the client even noticing — and the log must still replay to
    // the live policy's exact state. Faults in the start phase may surface as typed
    // errors instead; the sweep runs two ops past the clean count to include the
    // nothing-fires edge.
    for n in 0..total_ops + 2 {
        let dir = tmp_dir(&format!("sweep-{n}"));
        let (fs, _probe) = Fs::faulty(FaultPlan::fail_op(n));
        match run_serve_workload(fs, &dir, &dataset, &contexts) {
            Ok(outcome) => {
                assert_eq!(
                    outcome.decisions, clean.decisions,
                    "fault at op {n}: served decisions diverged from the clean run"
                );
                assert_eq!(
                    outcome.fingerprint, clean.fingerprint,
                    "fault at op {n}: policy state diverged from the clean run"
                );
                let records = DecisionLog::read(&dir).unwrap();
                let mut replayed = agent(&dataset);
                replay_records(&mut replayed, &records).unwrap();
                assert_eq!(
                    fingerprint(&replayed),
                    clean.fingerprint,
                    "fault at op {n}: log replay diverged from the live state"
                );
            }
            Err(error) => {
                assert!(
                    n < start_ops,
                    "fault at serving-phase op {n} must be self-healed, got: {error}"
                );
                // The failure was loud and typed. Whatever the aborted start left on
                // disk must still read-and-replay cleanly or fail typed itself.
                if let Ok(records) = DecisionLog::read(&dir) {
                    replay_records(&mut agent(&dataset), &records).unwrap();
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_sustained_log_outage_degrades_heals_and_replays_bit_identical() {
    let dataset = dataset();
    let contexts = collect_arrival_contexts(&dataset, 47, 8);
    let start_ops = ops_to_start(&dataset);

    // Every fdatasync in a 40-op window starting at the first serving op fails: the
    // first round's group commit exhausts its bounded retries and the server goes
    // degraded. The retrying client keeps resubmitting; once the window passes, the
    // worker heals (backlog + degraded marker appended) and serving resumes.
    let dir = tmp_dir("outage");
    let (fs, _probe) = Fs::faulty(FaultPlan::fail_ops(
        start_ops,
        start_ops + 40,
        Some(OpClass::SyncData),
    ));
    let outcome = run_serve_workload(fs, &dir, &dataset, &contexts).unwrap();
    assert_eq!(outcome.decisions.len(), contexts.len());
    assert!(outcome.degraded_rounds >= 1, "outage never degraded");
    assert_eq!(outcome.healed, 1, "outage must heal exactly once");

    // The backlogged round executed on the policy even though its client was told to
    // retry, so the retried request got a later id — ids never fork.
    let ids: Vec<u64> = outcome.decisions.iter().map(|d| d.request_id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate request ids served");

    // Log order is execution order even across the outage: replay lands exactly on
    // the live policy's state, and the degraded marker is there to prove the shed.
    let records = DecisionLog::read(&dir).unwrap();
    let mut replayed = agent(&dataset);
    let state = replay_records(&mut replayed, &records).unwrap();
    assert_eq!(state.degraded, 1, "degraded marker missing from the log");
    assert_eq!(
        fingerprint(&replayed),
        outcome.fingerprint,
        "replay across the outage diverged from the live state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_fsync_latency_slows_serving_but_changes_nothing() {
    let dataset = dataset();
    let contexts = collect_arrival_contexts(&dataset, 13, 5);
    let dir = tmp_dir("latency");
    let (fs, _probe) = Fs::faulty(FaultPlan::slow(OpClass::SyncData, Duration::from_millis(2)));
    let started = std::time::Instant::now();
    let outcome = run_serve_workload(fs, &dir, &dataset, &contexts).unwrap();
    assert!(
        started.elapsed() >= Duration::from_millis(10),
        "five synced rounds behind a 2ms fsync cannot finish in under 10ms"
    );
    assert_eq!(outcome.decisions.len(), 5);
    assert_eq!(outcome.degraded_rounds, 0, "latency is not an error");
    let records = DecisionLog::read(&dir).unwrap();
    let mut replayed = agent(&dataset);
    replay_records(&mut replayed, &records).unwrap();
    assert_eq!(fingerprint(&replayed), outcome.fingerprint);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Retry/backoff under saturation: nothing lost, nothing duplicated.
// ---------------------------------------------------------------------------

#[test]
fn retrying_clients_drain_a_saturated_server_without_loss_or_duplication() {
    let dataset = dataset();
    let n_threads = 4usize;
    let per_thread = 8usize;
    let contexts = collect_arrival_contexts(&dataset, 59, n_threads * per_thread);
    assert_eq!(contexts.len(), n_threads * per_thread);

    // A deliberately tiny server: one-slot ingress, one decision per round. Every
    // client sees Saturated constantly and leans on the backoff loop.
    let dir = tmp_dir("saturated");
    let config = ServeConfig {
        queue_capacity: 1,
        max_batch: 1,
        ..serve_config(&dir, Fs::real())
    };
    let server = Server::start(Box::new(frozen(&dataset)), config).unwrap();

    let mut handles = Vec::new();
    for chunk in contexts.chunks(per_thread) {
        let client = server.client();
        let chunk = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            let retry = RetryPolicy {
                deadline: Duration::from_secs(30),
                ..RetryPolicy::default()
            };
            chunk
                .iter()
                .map(|context| {
                    client
                        .decide_with_retry(context, &retry)
                        .expect("retry loop outlasts saturation")
                        .request_id
                })
                .collect::<Vec<u64>>()
        }));
    }
    let mut ids: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let (_policy, report) = server.shutdown();

    // Every request was served exactly once: ids are a permutation of 0..32.
    ids.sort_unstable();
    let expected: Vec<u64> = (0..(n_threads * per_thread) as u64).collect();
    assert_eq!(ids, expected, "ids lost or duplicated under saturation");
    assert_eq!(report.decisions as usize, contexts.len());
    assert!(report.log_error.is_none());

    // And the log agrees: one decision record per request, ids strictly increasing.
    let records = DecisionLog::read(&dir).unwrap();
    let mut replayed = frozen(&dataset);
    let state = replay_records(&mut replayed, &records).unwrap();
    assert_eq!(state.next_request_id as usize, contexts.len());
    assert_eq!(state.decisions as usize, contexts.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Log compaction: base image + suffix replay is bit-identical to full replay.
// ---------------------------------------------------------------------------

#[test]
fn compacted_log_recovery_is_bit_identical_to_full_replay() {
    let dataset = dataset();
    let contexts = collect_arrival_contexts(&dataset, 71, 20);
    assert_eq!(contexts.len(), 20);

    // Twin: the same 20 arrivals served without interruption or compaction.
    let twin_dir = tmp_dir("compact-twin");
    let server = Server::start(
        Box::new(agent(&dataset)),
        serve_config(&twin_dir, Fs::real()),
    )
    .unwrap();
    let client = server.client();
    let mut twin_decisions = Vec::new();
    for context in &contexts {
        let served = client.decide(context.clone()).unwrap();
        client
            .feedback(served.request_id, feedback_for(context, &served))
            .unwrap();
        twin_decisions.push(served);
    }
    let (twin_policy, _report) = server.shutdown();
    let twin_fingerprint = fingerprint(twin_policy.as_ref());

    // Interrupted run: 1-byte segment threshold (every batch rotates), an explicit
    // compaction mid-stream, a kill, a recovery from base + suffix, and a second
    // stretch under auto-compaction.
    let dir = tmp_dir("compact");
    let mut config = serve_config(&dir, Fs::real());
    config.log.as_mut().unwrap().segment_bytes = 1;
    let server = Server::start(Box::new(agent(&dataset)), config.clone()).unwrap();
    let client = server.client();
    let mut decisions = Vec::new();
    let mut withheld = None;
    for (i, context) in contexts[..15].iter().enumerate() {
        let served = client.decide(context.clone()).unwrap();
        if i + 1 < 15 {
            client
                .feedback(served.request_id, feedback_for(context, &served))
                .unwrap();
        } else {
            // The kill must land between an acked decide and its feedback.
            withheld = Some((served.request_id, feedback_for(context, &served)));
        }
        decisions.push(served);
        if i == 11 {
            let stats = client.compact().unwrap();
            assert!(stats.absorbed_segments >= 1, "nothing was compacted");
            assert!(stats.suffix_start >= 1);
        }
    }
    server.kill();

    // The full-replay reader refuses a compacted log (typed, not silent).
    assert!(
        DecisionLog::read(&dir).is_err(),
        "a compacted log must not full-replay silently"
    );

    // Recovery restores the policy from the base image and replays only the suffix.
    config.compact_after_segments = Some(4);
    let (server, recovery) = Server::recover(Box::new(agent(&dataset)), config.clone()).unwrap();
    assert!(
        recovery.compacted_suffix_start.is_some(),
        "recovery must have used the base image"
    );
    assert!(
        (recovery.replayed_decisions as usize) < 15,
        "suffix replay must be shorter than the full history"
    );
    let (withheld_id, withheld_feedback) = withheld.unwrap();
    assert!(
        recovery
            .pending_requests
            .iter()
            .any(|(id, _)| *id == withheld_id),
        "the request-id handshake must surface the unanswered decide"
    );

    // Resume exactly where the acks stopped; auto-compaction runs along the way.
    let client = server.client();
    client.feedback(withheld_id, withheld_feedback).unwrap();
    for context in &contexts[15..] {
        let served = client.decide(context.clone()).unwrap();
        client
            .feedback(served.request_id, feedback_for(context, &served))
            .unwrap();
        decisions.push(served);
    }
    let (policy, report) = server.shutdown();
    assert!(report.log_error.is_none());
    assert!(report.compactions >= 1, "auto-compaction never triggered");
    assert!(report.compact_error.is_none());

    assert_eq!(decisions, twin_decisions, "served decisions diverged");
    assert_eq!(
        fingerprint(policy.as_ref()),
        twin_fingerprint,
        "compacted-log run diverged from the uninterrupted twin"
    );

    // A second recovery over the auto-compacted log still lands on the same state.
    let (server, recovery) = Server::recover(Box::new(agent(&dataset)), config).unwrap();
    assert!(recovery.compacted_suffix_start.is_some());
    let (policy, _report) = server.shutdown();
    assert_eq!(
        fingerprint(policy.as_ref()),
        twin_fingerprint,
        "re-recovery over the auto-compacted log diverged"
    );

    std::fs::remove_dir_all(&twin_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
