//! End-to-end integration tests: dataset generation → platform replay → DDQN agent →
//! metrics, spanning every crate in the workspace.

use crowd_experiments::{run_policy, RunnerConfig};
use crowd_rl_core::{DdqnAgent, DdqnConfig, RecommendationMode};
use crowd_sim::{monthly_stats, Decision, Env, Platform, SimConfig};

fn tiny_ddqn_config() -> DdqnConfig {
    DdqnConfig {
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        learn_every: 4,
        max_tasks: 32,
        buffer_size: 256,
        ..DdqnConfig::default()
    }
}

#[test]
fn ddqn_full_pipeline_produces_sane_metrics() {
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);
    let mut agent = DdqnAgent::new(
        tiny_ddqn_config(),
        features.task_dim(),
        features.worker_dim(),
    );
    let outcome = run_policy(&dataset, &mut agent, &RunnerConfig::default());
    let summary = outcome.summary();

    assert!(
        outcome.evaluated_arrivals > 50,
        "too few evaluated arrivals"
    );
    assert!(
        (0.0..=1.0).contains(&summary.cr),
        "CR out of range: {}",
        summary.cr
    );
    assert!(
        summary.ndcg_cr >= summary.cr - 1e-6,
        "nDCG-CR must dominate CR"
    );
    assert!(summary.k_cr >= summary.cr - 1e-6, "kCR must dominate CR");
    assert!(summary.qg >= 0.0);
    assert!(summary.ndcg_qg >= 0.0);
    assert!(outcome.final_total_quality > 0.0);
    assert!(agent.total_updates() > 0, "the agent never learned");
    // The agent should achieve a non-trivial list success rate: the cascade model completes
    // something whenever an interesting task appears early enough.
    assert!(
        summary.ndcg_cr > 0.05,
        "nDCG-CR suspiciously low: {}",
        summary.ndcg_cr
    );
}

#[test]
fn ddqn_assign_one_mode_runs_end_to_end() {
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);
    let config = tiny_ddqn_config()
        .with_mode(RecommendationMode::AssignOne)
        .with_balance(0.25);
    let mut agent = DdqnAgent::new(config, features.task_dim(), features.worker_dim());
    let outcome = run_policy(&dataset, &mut agent, &RunnerConfig::default());
    let summary = outcome.summary();
    // In assign-one mode CR, kCR and nDCG-CR coincide (only one position exists).
    assert!((summary.cr - summary.k_cr).abs() < 1e-6);
    assert!((summary.cr - summary.ndcg_cr).abs() < 1e-6);
    assert!(outcome.update_timer.count() > 0);
}

#[test]
fn dataset_statistics_match_the_papers_shape() {
    // The replica generator must produce the qualitative dataset shape of Fig. 5/6: a steady
    // pool of available tasks and same-worker revisit gaps spread between minutes and days.
    let dataset = SimConfig::small().generate();
    let stats = monthly_stats(&dataset);
    // Post-initialisation months have a stable pool and a steady arrival flow.
    for month in stats.iter().skip(1) {
        assert!(
            month.avg_available > 3.0,
            "month {} pool too small",
            month.month
        );
        assert!(
            month.arrivals > 100,
            "month {} has too few arrivals",
            month.month
        );
        assert!(month.new_tasks > 0 && month.expired_tasks > 0);
    }
    let same = crowd_sim::same_worker_gap_histogram(&dataset, 30, 10_080);
    assert!(same.fraction_below(180) > 0.1, "no short revisits");
    assert!(same.fraction_below(180) < 0.9, "no day-scale revisits");
}

#[test]
fn platform_conserves_quality_accounting() {
    // The sum of per-feedback quality gains equals the platform's final total task quality.
    let dataset = SimConfig::tiny().generate();
    let features = Platform::default_feature_space(&dataset);
    let mut platform = Platform::new(dataset, features, 3);
    let mut decision = Decision::new();
    let mut gain_sum = 0.0f32;
    while platform.next_arrival() {
        let view = platform.arrival();
        if view.is_empty() {
            continue;
        }
        decision.clear();
        decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
        platform.apply(&decision);
        gain_sum += platform.feedback().quality_gain;
    }
    let total = platform.total_task_quality();
    assert!(
        (gain_sum - total).abs() < total.max(1.0) * 1e-3,
        "gain sum {gain_sum} != total quality {total}"
    );
}
