//! Checkpoint/resume equivalence (the PR 5 regression fence) and loader robustness.
//!
//! The contract: a training run that is checkpointed mid-replay, dropped, and resumed
//! from the snapshot file in fresh objects is **bit-identical** to a run that never
//! stopped — per-session metrics, completions, final task qualities, every learner's
//! loss stream and sampling-RNG probe, the agent's exploration-RNG probe, and every
//! network parameter (compared via `to_bits`). The suite runs on the
//! `CROWD_THREADS`-configured pool, so the CI matrix (threads 1 and 4) proves the
//! contract under both serial and pooled execution, and one test additionally sweeps
//! explicit pools {1, 4} in-process.
//!
//! Why this is provable at all: PR 4 made every run deterministic by construction
//! (ordered maps, owned RNG streams, shard-stable parallelism), so "same state ⇒ same
//! future" holds bit-exactly; the checkpoint format stores floats as raw bits and RNGs
//! as word states, so "same state" is achievable across a process boundary.
//!
//! The suite also covers the loader's robustness guarantees (truncation, bit flips,
//! wrong magic, future version — typed errors, never panics or half-loads) and the
//! byte-level format stability against the committed golden snapshot
//! (`tests/fixtures/format_v1.ckpt`; regenerate consciously with `UPDATE_GOLDEN=1`
//! after a deliberate format-version bump).

use crowd_bench::ckpt_fixtures;
use crowd_ckpt::{CkptError, Snapshot, SnapshotFile};
use crowd_experiments::{RunOutcome, RunnerConfig, Session, SessionBatch};
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{BoxedPolicy, Dataset, Platform, Policy, SimConfig};
use crowd_tensor::ThreadPool;

/// Bit-level fingerprint of one session's outcome (no wall-clock fields).
#[derive(Debug, Clone, PartialEq, Eq)]
struct OutcomeBits {
    policy: String,
    summary: [u32; 6],
    timestamps: usize,
    total_completions: usize,
    final_total_quality: u32,
    evaluated_arrivals: usize,
}

impl OutcomeBits {
    fn of(outcome: &RunOutcome) -> Self {
        let s = outcome.summary();
        OutcomeBits {
            policy: outcome.policy.clone(),
            summary: [
                s.cr.to_bits(),
                s.k_cr.to_bits(),
                s.ndcg_cr.to_bits(),
                s.qg.to_bits(),
                s.k_qg.to_bits(),
                s.ndcg_qg.to_bits(),
            ],
            timestamps: s.timestamps,
            total_completions: outcome.total_completions,
            final_total_quality: outcome.final_total_quality.to_bits(),
            evaluated_arrivals: outcome.evaluated_arrivals,
        }
    }
}

/// Bit-level fingerprint of a DDQN agent's internal state after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AgentBits {
    explore_rng_probe: u64,
    worker_losses: Vec<u32>,
    requester_losses: Vec<u32>,
    worker_rng_probe: u64,
    requester_rng_probe: u64,
    worker_params: Vec<u32>,
    requester_params: Vec<u32>,
    updates: u64,
}

impl AgentBits {
    fn of(agent: &DdqnAgent) -> Self {
        let params = |learner: &crowd_rl_core::DqnLearner| {
            learner
                .params()
                .iter()
                .flat_map(|(_, _, m)| m.as_slice().iter().map(|v| v.to_bits()))
                .collect::<Vec<u32>>()
        };
        AgentBits {
            explore_rng_probe: agent.rng_probe(),
            worker_losses: agent
                .worker_learner()
                .loss_history()
                .iter()
                .map(|l| l.to_bits())
                .collect(),
            requester_losses: agent
                .requester_learner()
                .loss_history()
                .iter()
                .map(|l| l.to_bits())
                .collect(),
            worker_rng_probe: agent.worker_learner().rng_probe(),
            requester_rng_probe: agent.requester_learner().rng_probe(),
            worker_params: params(agent.worker_learner()),
            requester_params: params(agent.requester_learner()),
            updates: agent.total_updates(),
        }
    }
}

fn dataset() -> Dataset {
    SimConfig::tiny().generate()
}

fn agent_config() -> DdqnConfig {
    DdqnConfig {
        max_tasks: 24,
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        buffer_size: 128,
        learn_every: 4,
        exploration_anneal_steps: 150,
        ..DdqnConfig::default()
    }
}

fn agent_for(dataset: &Dataset, config: DdqnConfig) -> DdqnAgent {
    let features = Platform::default_feature_space(dataset);
    DdqnAgent::new(config, features.task_dim(), features.worker_dim())
}

fn temp_ckpt_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("crowd_ckpt_equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The headline contract, through a real file: a *training* DDQN agent (both MDPs,
/// exploration and learning active) is checkpointed mid-replay, everything is dropped,
/// and a fresh process-equivalent (new session, new agent, snapshot read back from
/// disk) continues to the end — bit-identical to the uninterrupted twin in every
/// observable, on the `CROWD_THREADS`-configured pool (CI runs this at 1 and 4).
#[test]
fn resumed_training_run_is_bit_identical_to_uninterrupted() {
    let dataset = dataset();
    let cfg = RunnerConfig::default();
    let pool = ThreadPool::from_env();
    let config = agent_config().with_balance(0.5);

    // Uninterrupted baseline.
    let mut baseline_agent = agent_for(&dataset, config.clone());
    baseline_agent.set_thread_pool(pool);
    let mut baseline_session = Session::for_dataset(&dataset, &cfg);
    while baseline_session.step(&mut baseline_agent) {}
    let baseline_outcome = OutcomeBits::of(&baseline_session.finish(baseline_agent.name()));
    let baseline_bits = AgentBits::of(&baseline_agent);
    assert!(baseline_bits.updates > 0, "baseline never learned");
    assert!(
        !baseline_bits.worker_losses.is_empty() && !baseline_bits.requester_losses.is_empty(),
        "both learner branches must be exercised"
    );

    // Checkpointed twin: stop mid-replay, snapshot to a real file, drop everything.
    let path = temp_ckpt_path(&format!("resume_{}.ckpt", pool.threads()));
    {
        let mut agent = agent_for(&dataset, config.clone());
        agent.set_thread_pool(pool);
        let mut session = Session::for_dataset(&dataset, &cfg);
        for _ in 0..60 {
            assert!(session.step(&mut agent), "tiny replay ended too early");
        }
        assert!(
            agent.total_updates() > 0,
            "checkpoint taken before learning"
        );
        session
            .checkpoint(&agent)
            .expect("DDQN agent supports checkpointing")
            .write_to(&path)
            .unwrap();
        // `session` and `agent` drop here — nothing survives but the file.
    }

    // Fresh-process equivalent: rebuild from config, load, continue.
    let file = SnapshotFile::read(&path).unwrap();
    let mut resumed_agent = agent_for(&dataset, config);
    resumed_agent.set_thread_pool(pool);
    let mut resumed_session = Session::for_dataset(&dataset, &cfg);
    resumed_session.resume(&mut resumed_agent, &file).unwrap();
    assert_eq!(resumed_session.evaluated_arrivals(), 60);
    while resumed_session.step(&mut resumed_agent) {}
    let resumed_outcome = OutcomeBits::of(&resumed_session.finish(resumed_agent.name()));
    let resumed_bits = AgentBits::of(&resumed_agent);

    assert_eq!(
        baseline_outcome, resumed_outcome,
        "metrics/completions/quality diverged after resume"
    );
    assert_eq!(
        baseline_bits, resumed_bits,
        "agent internals (loss streams / RNG probes / parameters) diverged after resume"
    );
    std::fs::remove_file(&path).ok();
}

/// The same save→drop→load→continue scenario at explicit thread counts 1 and 4: the
/// resumed run must match its own-pool baseline, and the outcomes must also agree
/// *across* pools (checkpointing composes with the parallel-execution bit-identity
/// contract).
#[test]
fn resume_is_bit_identical_at_threads_1_and_4() {
    let dataset = dataset();
    let cfg = RunnerConfig::default();
    let run = |threads: usize| {
        let pool = ThreadPool::new(threads);
        let config = agent_config().with_balance(0.5);
        let snapshot = {
            let mut agent = agent_for(&dataset, config.clone());
            agent.set_thread_pool(pool);
            let mut session = Session::for_dataset(&dataset, &cfg);
            for _ in 0..50 {
                assert!(session.step(&mut agent));
            }
            session.checkpoint(&agent).unwrap().to_bytes()
        };
        let file = SnapshotFile::from_bytes(snapshot).unwrap();
        let mut agent = agent_for(&dataset, config);
        agent.set_thread_pool(pool);
        let mut session = Session::for_dataset(&dataset, &cfg);
        session.resume(&mut agent, &file).unwrap();
        while session.step(&mut agent) {}
        let outcome = OutcomeBits::of(&session.finish(agent.name()));
        (outcome, AgentBits::of(&agent))
    };
    let serial = run(1);
    let pooled = run(4);
    assert!(serial.1.updates > 0);
    assert_eq!(serial, pooled, "resumed runs diverged across thread counts");
}

/// A checkpoint taken before the first step stores the pre-warm-start phase
/// (`warm_started == false`, pristine warm-up RNG): the resumed session must replay the
/// whole warm-up month — including the random full-pool rankings and the warm-start
/// hand-off — bit-identically.
#[test]
fn checkpoint_before_warmup_resumes_the_whole_protocol() {
    let dataset = dataset();
    let cfg = RunnerConfig::default();
    let config = agent_config().worker_only();

    let mut baseline_agent = agent_for(&dataset, config.clone());
    let mut baseline_session = Session::for_dataset(&dataset, &cfg);
    while baseline_session.step(&mut baseline_agent) {}
    let baseline = (
        OutcomeBits::of(&baseline_session.finish(baseline_agent.name())),
        AgentBits::of(&baseline_agent),
    );

    let bytes = {
        let agent = agent_for(&dataset, config.clone());
        let mut session: Session = Session::for_dataset(&dataset, &cfg);
        session.checkpoint(&agent).unwrap().to_bytes()
    };
    let file = SnapshotFile::from_bytes(bytes).unwrap();
    let mut agent = agent_for(&dataset, config);
    let mut session = Session::for_dataset(&dataset, &cfg);
    session.resume(&mut agent, &file).unwrap();
    assert_eq!(session.evaluated_arrivals(), 0);
    while session.step(&mut agent) {}
    let resumed = (
        OutcomeBits::of(&session.finish(agent.name())),
        AgentBits::of(&agent),
    );
    assert_eq!(baseline, resumed);
}

fn batch_lineup(dataset: &Dataset) -> Vec<BoxedPolicy> {
    vec![
        Box::new(agent_for(dataset, agent_config().worker_only())),
        Box::new(agent_for(dataset, agent_config().with_balance(0.5))),
        Box::new(crowd_baselines::RandomPolicy::new(
            crowd_baselines::ListMode::RankAll,
            13,
        )),
        // The two daily-retrained supervised baselines, checkpointable since PR 7 —
        // their RNG streams, factor/example windows and (for Greedy NN) MLP + Adam
        // state must all survive the member snapshot.
        Box::new(crowd_baselines::Taskrec::new(
            crowd_baselines::ListMode::RankAll,
            4,
            17,
        )),
        Box::new(crowd_baselines::GreedyNn::new(
            crowd_baselines::Benefit::Worker,
            crowd_baselines::ListMode::RankAll,
            19,
        )),
    ]
}

/// Per-member `SessionBatch` snapshots: five replicas (two training agents, Random,
/// and the Taskrec / Greedy NN supervised baselines) stepped in lock-step,
/// checkpointed between rounds, resumed into a fresh batch with fresh policies —
/// every member finishes bit-identically to the uninterrupted batch.
#[test]
fn session_batch_member_snapshots_resume_bit_identically() {
    let dataset = dataset();
    let cfg = RunnerConfig::default();
    let pool = ThreadPool::from_env();

    let mut baseline_policies = batch_lineup(&dataset);
    let mut baseline = SessionBatch::new().with_pool(pool);
    for policy in &mut baseline_policies {
        policy.set_thread_pool(pool);
        baseline.push(Session::for_dataset(&dataset, &cfg));
    }
    baseline.run_all_parallel(&mut baseline_policies);
    let baseline_outcomes: Vec<OutcomeBits> = baseline
        .finish(&baseline_policies)
        .iter()
        .map(OutcomeBits::of)
        .collect();

    let bytes = {
        let mut policies = batch_lineup(&dataset);
        let mut batch = SessionBatch::new().with_pool(pool);
        for policy in &mut policies {
            policy.set_thread_pool(pool);
            batch.push(Session::for_dataset(&dataset, &cfg));
        }
        for _ in 0..40 {
            assert!(batch.step_all_parallel(&mut policies) > 0);
        }
        batch.checkpoint(&policies).unwrap().to_bytes()
    };

    let file = SnapshotFile::from_bytes(bytes).unwrap();
    let mut policies = batch_lineup(&dataset);
    let mut batch = SessionBatch::new().with_pool(pool);
    for policy in &mut policies {
        policy.set_thread_pool(pool);
        batch.push(Session::for_dataset(&dataset, &cfg));
    }
    batch.resume(&mut policies, &file).unwrap();
    batch.run_all_parallel(&mut policies);
    let resumed_outcomes: Vec<OutcomeBits> = batch
        .finish(&policies)
        .iter()
        .map(OutcomeBits::of)
        .collect();
    assert_eq!(baseline_outcomes, resumed_outcomes);
}

/// Shared-policy batched stepping: a frozen agent driving four replicas through
/// `step_batched` is checkpointed between rounds with `checkpoint_shared` and resumed
/// with `resume_shared` — outcomes and agent state match the uninterrupted batch.
#[test]
fn shared_policy_batch_snapshot_resumes_bit_identically() {
    let dataset = dataset();
    let cfg = RunnerConfig::default();
    let sessions_for = || {
        (0..4u64)
            .map(|i| {
                Session::for_dataset(
                    &dataset,
                    &RunnerConfig {
                        platform_seed: 5_000 + i,
                        ..cfg.clone()
                    },
                )
            })
            .collect::<Vec<Session>>()
    };
    let trained_agent = || {
        let mut agent = agent_for(&dataset, agent_config().with_balance(0.5));
        let mut session = Session::for_dataset(&dataset, &cfg);
        session.run(&mut agent);
        agent.freeze_exploration();
        agent.freeze_learning();
        agent
    };

    let mut baseline_agent = trained_agent();
    let mut baseline = SessionBatch::new();
    for s in sessions_for() {
        baseline.push(s);
    }
    baseline.run_batched(&mut baseline_agent);
    let baseline_outcomes: Vec<OutcomeBits> = baseline
        .finish_shared(baseline_agent.name())
        .iter()
        .map(OutcomeBits::of)
        .collect();
    let baseline_bits = AgentBits::of(&baseline_agent);

    let bytes = {
        let mut agent = trained_agent();
        let mut batch = SessionBatch::new();
        for s in sessions_for() {
            batch.push(s);
        }
        for _ in 0..30 {
            assert!(batch.step_batched(&mut agent) > 0);
        }
        batch.checkpoint_shared(&agent).unwrap().to_bytes()
    };

    let file = SnapshotFile::from_bytes(bytes).unwrap();
    // The resumed agent is rebuilt *untrained* — everything comes from the snapshot.
    let mut agent = agent_for(&dataset, agent_config().with_balance(0.5));
    let mut batch = SessionBatch::new();
    for s in sessions_for() {
        batch.push(s);
    }
    batch.resume_shared(&mut agent, &file).unwrap();
    batch.run_batched(&mut agent);
    let resumed_outcomes: Vec<OutcomeBits> = batch
        .finish_shared(agent.name())
        .iter()
        .map(OutcomeBits::of)
        .collect();
    assert_eq!(baseline_outcomes, resumed_outcomes);
    assert_eq!(baseline_bits, AgentBits::of(&agent));
}

/// Builds real session-checkpoint bytes for the robustness sweeps.
fn real_checkpoint_bytes(dataset: &Dataset) -> Vec<u8> {
    let cfg = RunnerConfig::default();
    let mut agent = agent_for(dataset, agent_config().worker_only());
    let mut session = Session::for_dataset(dataset, &cfg);
    for _ in 0..20 {
        assert!(session.step(&mut agent));
    }
    session.checkpoint(&agent).unwrap().to_bytes()
}

/// Loader robustness over a real snapshot: every truncation point and every flipped
/// payload byte (sampled) yields a typed error — never a panic, never a half-load.
#[test]
fn damaged_snapshots_fail_with_typed_errors_never_panics() {
    let dataset = dataset();
    let clean = real_checkpoint_bytes(&dataset);
    assert!(SnapshotFile::from_bytes(clean.clone()).is_ok());

    // Wrong magic.
    assert!(matches!(
        SnapshotFile::from_bytes(ckpt_fixtures::with_magic(&clean, b"PNGJPEG!")),
        Err(CkptError::BadMagic { .. })
    ));
    // Future format version.
    assert!(matches!(
        SnapshotFile::from_bytes(ckpt_fixtures::with_version(&clean, 2)),
        Err(CkptError::UnsupportedVersion {
            found: 2,
            supported: 1
        })
    ));
    // Truncations: every prefix in the header/table region, then sampled points across
    // the payloads.
    for cut in (0..256.min(clean.len())).chain((256..clean.len()).step_by(211)) {
        let err = SnapshotFile::from_bytes(ckpt_fixtures::truncate(&clean, cut))
            .expect_err(&format!("truncation to {cut} bytes must fail"));
        assert!(
            matches!(
                err,
                CkptError::BadMagic { .. }
                    | CkptError::Truncated { .. }
                    | CkptError::CrcMismatch { .. }
                    | CkptError::Corrupt { .. }
            ),
            "unexpected error class at cut {cut}: {err:?}"
        );
    }
    // Bit flips: sampled positions across the whole file.
    for pos in (0..clean.len()).step_by(149) {
        assert!(
            SnapshotFile::from_bytes(ckpt_fixtures::flip_byte(&clean, pos)).is_err(),
            "flipped byte at {pos} was accepted"
        );
    }
}

/// Publish robustness, the write-side twin of the loader checks above: a rewrite that
/// dies before the atomic rename (here: the very first I/O op of the tmp-file write,
/// injected via `Fs::faulty`) is a typed error and the previously published snapshot
/// still loads, byte-identical. `tests/fault_injection.rs` sweeps the same contract at
/// *every* numbered I/O site; this is the cheap always-on sentinel next to the reader
/// robustness it complements.
#[test]
fn failed_rewrite_leaves_the_published_snapshot_intact() {
    use crowd_ckpt::{FaultPlan, Fs};
    let dataset = dataset();
    let clean = real_checkpoint_bytes(&dataset);
    let path = temp_ckpt_path("failed_rewrite.ckpt");
    std::fs::write(&path, &clean).unwrap();

    let mut replacement = Snapshot::new();
    replacement.put_raw("other", vec![0xEE; 64]);
    let (fs, _probe) = Fs::faulty(FaultPlan::fail_op(0));
    replacement
        .write_to_in(&fs, &path)
        .expect_err("a poisoned first op must fail the rewrite");

    assert_eq!(
        std::fs::read(&path).unwrap(),
        clean,
        "failed rewrite must not disturb the published image"
    );
    assert!(SnapshotFile::from_bytes(std::fs::read(&path).unwrap()).is_ok());
    std::fs::remove_file(&path).unwrap();
}

/// Logical-mismatch robustness: resuming into a differently configured session or a
/// snapshot with a missing section is a typed error, and an unsupported policy reports
/// `Unsupported` from `checkpoint` without touching the snapshot.
#[test]
fn mismatched_resume_targets_are_typed_errors() {
    let dataset = dataset();
    let clean = real_checkpoint_bytes(&dataset);
    let file = SnapshotFile::from_bytes(clean).unwrap();

    // Different warm-up configuration.
    let mut agent = agent_for(&dataset, agent_config().worker_only());
    let mut session: Session = Session::for_dataset(
        &dataset,
        &RunnerConfig {
            warmup_months: 0,
            ..RunnerConfig::default()
        },
    );
    assert!(matches!(
        session.resume(&mut agent, &file),
        Err(CkptError::Corrupt { .. })
    ));

    // Missing section.
    let mut incomplete = Snapshot::new();
    incomplete.put_raw("session", vec![]);
    let incomplete = SnapshotFile::from_bytes(incomplete.to_bytes()).unwrap();
    let mut agent = agent_for(&dataset, agent_config().worker_only());
    let mut session: Session = Session::for_dataset(&dataset, &RunnerConfig::default());
    assert!(session.resume(&mut agent, &incomplete).is_err());

    // A policy without checkpoint support: `checkpoint` fails with Unsupported and the
    // snapshot stays empty (nothing half-written). Greedy cosine is the workspace's one
    // genuinely stateless policy (scores are a pure function of the arrival), so it
    // keeps the trait's Unsupported default — every *stateful* policy (DDQN, Random,
    // LinUCB, Taskrec, Greedy NN) now implements checkpointing.
    let mut cosine = crowd_baselines::GreedyCosine::new(
        crowd_baselines::Benefit::Worker,
        crowd_baselines::ListMode::RankAll,
    );
    let mut session: Session = Session::for_dataset(&dataset, &RunnerConfig::default());
    for _ in 0..3 {
        assert!(session.step(&mut cosine));
    }
    let mut snapshot = Snapshot::new();
    match session.checkpoint_into(&cosine, &mut snapshot, "") {
        Err(CkptError::Unsupported { .. }) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
    assert!(snapshot.is_empty(), "failed checkpoint must not half-write");
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/format_v1.ckpt")
}

/// Format stability: the committed version-1 golden snapshot must equal what today's
/// writer emits, byte for byte, and must load under today's reader and re-save to the
/// same bytes. Any change to the wire format fails here until `FORMAT_VERSION` is
/// bumped and a new golden file is committed deliberately (`UPDATE_GOLDEN=1 cargo test
/// -p crowd-experiments --test checkpoint_equivalence format_stability`).
#[test]
fn format_stability_golden_snapshot() {
    let expected = ckpt_fixtures::golden_snapshot().to_bytes();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &expected).unwrap();
        eprintln!("regenerated {}", path.display());
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read the committed golden snapshot at {}: {e}",
            path.display()
        )
    });
    assert_eq!(
        committed, expected,
        "the writer's byte stream changed: bump FORMAT_VERSION and regenerate the golden file deliberately"
    );

    // Save-under-v1 / load-under-v1: the committed file loads into live objects…
    let file = SnapshotFile::from_bytes(committed).unwrap();
    let mut rng = crowd_tensor::Rng::seed_from(0);
    file.load_into("rng", &mut rng).unwrap();
    let mut store = crowd_nn::ParamStore::new();
    file.load_into("params", &mut store).unwrap();
    assert_eq!(store.len(), 2);
    let mut adam = crowd_nn::Adam::new(0.5);
    file.load_into("adam", &mut adam).unwrap();
    assert_eq!(adam.steps(), 1);
    let mut replay: crowd_rl_kit::PrioritizedReplay<u32> =
        crowd_rl_kit::PrioritizedReplay::new(4).with_alpha(1.0);
    file.load_into("replay", &mut replay).unwrap();
    assert_eq!(replay.len(), 4);

    // …and re-saving those objects reproduces the golden payload bytes exactly.
    let mut resaved = Snapshot::new();
    resaved.put("rng", &rng);
    resaved.put("params", &store);
    resaved.put("adam", &adam);
    resaved.put("replay", &replay);
    let roundtrip = SnapshotFile::from_bytes(resaved.to_bytes()).unwrap();
    for section in ["rng", "params", "adam", "replay"] {
        let a = file.reader(section).unwrap();
        let b = roundtrip.reader(section).unwrap();
        assert_eq!(
            a.remaining(),
            b.remaining(),
            "section {section} changed size on re-save"
        );
        let n = a.remaining();
        assert_eq!(
            a.clone().take_bytes(n).unwrap(),
            b.clone().take_bytes(n).unwrap(),
            "section {section} is not byte-stable across load→save"
        );
    }
}
