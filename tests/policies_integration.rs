//! Integration tests running every policy of the paper's comparison through the shared
//! runner on the same dataset, checking the evaluation protocol treats them uniformly.

use crowd_baselines::{Benefit, GreedyCosine, GreedyNn, LinUcb, ListMode, RandomPolicy, Taskrec};
use crowd_experiments::{policies_for_benefit, run_policy, RunnerConfig, Scale};
use crowd_sim::SimConfig;

#[test]
fn every_worker_benefit_policy_completes_a_run() {
    let dataset = SimConfig::tiny().generate();
    let cfg = RunnerConfig::default();
    for mut policy in policies_for_benefit(&dataset, Benefit::Worker, Scale::Tiny) {
        let name = policy.name().to_string();
        let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
        let s = outcome.summary();
        assert!(
            outcome.evaluated_arrivals > 0,
            "{name}: no evaluated arrivals"
        );
        assert!((0.0..=1.0).contains(&s.cr), "{name}: CR out of range");
        assert!(
            s.ndcg_cr >= s.k_cr - 1e-6,
            "{name}: nDCG-CR must dominate kCR"
        );
        assert!(s.ndcg_cr <= 1.0 + 1e-6, "{name}: nDCG-CR above 1");
    }
}

#[test]
fn every_requester_benefit_policy_completes_a_run() {
    let dataset = SimConfig::tiny().generate();
    let cfg = RunnerConfig::default();
    for mut policy in policies_for_benefit(&dataset, Benefit::Requester, Scale::Tiny) {
        let name = policy.name().to_string();
        let outcome = run_policy(&dataset, policy.as_mut(), &cfg);
        let s = outcome.summary();
        assert!(s.qg >= 0.0, "{name}: negative quality gain");
        assert!(
            s.ndcg_qg >= s.k_qg - 1e-6,
            "{name}: nDCG-QG must dominate kQG"
        );
        assert!(
            s.qg <= outcome.final_total_quality + 1e-3,
            "{name}: evaluated QG cannot exceed the platform's total quality"
        );
    }
}

#[test]
fn policies_see_identical_worker_behaviour() {
    // The platform's behaviour seed is part of the runner config, so two runs of the *same*
    // policy are identical, and different policies face the same workers.
    let dataset = SimConfig::tiny().generate();
    let cfg = RunnerConfig::default();
    let mut a = RandomPolicy::new(ListMode::RankAll, 5);
    let mut b = RandomPolicy::new(ListMode::RankAll, 5);
    let out_a = run_policy(&dataset, &mut a, &cfg);
    let out_b = run_policy(&dataset, &mut b, &cfg);
    assert_eq!(out_a.summary(), out_b.summary());
    assert_eq!(out_a.evaluated_arrivals, out_b.evaluated_arrivals);
}

#[test]
fn supervised_baselines_actually_retrain_daily() {
    let dataset = SimConfig::tiny().generate();
    let cfg = RunnerConfig::default();
    let mut nn = GreedyNn::new(Benefit::Worker, ListMode::RankAll, 3);
    run_policy(&dataset, &mut nn, &cfg);
    assert!(nn.is_trained(), "Greedy NN never retrained");
    assert!(nn.n_examples() > 0);

    let mut pmf = Taskrec::new(ListMode::RankAll, 6, 3);
    run_policy(&dataset, &mut pmf, &cfg);
    assert!(pmf.is_trained(), "Taskrec never retrained");
}

#[test]
fn rl_baseline_updates_in_real_time() {
    let dataset = SimConfig::tiny().generate();
    let cfg = RunnerConfig::default();
    let mut bandit = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
    let outcome = run_policy(&dataset, &mut bandit, &cfg);
    // LinUCB performs at least one Sherman–Morrison update per evaluated arrival with a
    // non-empty pool (warm-start history adds more).
    assert!(bandit.updates() as usize >= outcome.evaluated_arrivals);
}

#[test]
fn informed_policies_beat_random_on_list_quality() {
    // On the small dataset (more signal than tiny), any policy that uses the worker's history
    // should rank interesting tasks earlier than random ordering does.
    let dataset = SimConfig::small().generate();
    let cfg = RunnerConfig::default();
    let mut random = RandomPolicy::new(ListMode::RankAll, 1);
    let random_ndcg = run_policy(&dataset, &mut random, &cfg).summary().ndcg_cr;
    let mut cosine = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
    let cosine_ndcg = run_policy(&dataset, &mut cosine, &cfg).summary().ndcg_cr;
    let mut bandit = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
    let bandit_ndcg = run_policy(&dataset, &mut bandit, &cfg).summary().ndcg_cr;
    assert!(
        cosine_ndcg > random_ndcg,
        "cosine {cosine_ndcg} should beat random {random_ndcg}"
    );
    assert!(
        bandit_ndcg > random_ndcg,
        "LinUCB {bandit_ndcg} should beat random {random_ndcg}"
    );
}
