//! Serving ≡ offline replay: the `crowd-serve` micro-batching decision service must
//! give every concurrent client exactly the decisions a sequential offline replay of
//! the same arrival order produces.
//!
//! Two regimes are proved:
//!
//! 1. **Frozen policy, concurrent clients** — with learning and exploration frozen,
//!    `act` is a pure function of the fixed network parameters (and consumes no RNG),
//!    so a decision depends only on its own arrival context, never on what other
//!    clients are doing. `N` client threads hammer the server concurrently and every
//!    single response is bit-compared against the decision a real offline [`Session`]
//!    replay produced for the same context.
//! 2. **Learning policy, committed order** — with online learning ON, the server's
//!    execution order is its decision log's record order (the group-commit contract).
//!    A fresh, identically constructed agent replaying the log sequentially must land
//!    on a bit-identical policy state — checkpoint fingerprints are compared, which
//!    covers every network parameter, optimizer moment, replay-buffer entry and RNG
//!    word.
//!
//! `ServeConfig.pool` is taken from `CROWD_THREADS`, so the whole suite rides the
//! same 1/4-thread CI matrix as the rest of the workspace.

use crowd_experiments::{
    collect_arrival_contexts, ddqn_config_for, ddqn_for, RunnerConfig, Scale, Session,
};
use crowd_rl_core::DdqnAgent;
use crowd_serve::{replay_records, DecisionLog, LogConfig, ServeConfig, ServeDecision, Server};
use crowd_sim::{
    ArrivalContext, ArrivalView, BatchedPolicy, Dataset, Decision, FeedbackView, Policy,
    PolicyFeedback, SimConfig, TaskId,
};
use crowd_tensor::ThreadPool;
use std::path::PathBuf;

fn dataset() -> Dataset {
    SimConfig::tiny().generate()
}

/// A fully frozen agent: `act` is a pure function of the (fixed) initial parameters
/// and consumes no RNG, so decisions are order-independent.
fn frozen_agent(dataset: &Dataset) -> DdqnAgent {
    let mut agent = ddqn_for(dataset, ddqn_config_for(Scale::Tiny));
    agent.freeze_learning();
    agent.freeze_exploration();
    agent
}

/// A live agent: exploration draws RNG per decision, learning updates on feedback.
fn learning_agent(dataset: &Dataset) -> DdqnAgent {
    ddqn_for(dataset, ddqn_config_for(Scale::Tiny))
}

/// Deterministic synthetic outcome for a served decision: the worker completes the
/// top-ranked task.
fn feedback_for(context: &ArrivalContext, decision: &ServeDecision) -> PolicyFeedback {
    PolicyFeedback {
        time: context.time,
        worker_id: context.worker_id,
        worker_quality: context.worker_quality,
        shown: decision.shown.clone(),
        completed: decision.shown.first().map(|&t| (t, 0)),
        quality_gain: 0.125,
        worker_feature_before: context.worker_feature.clone(),
        worker_feature_after: context.worker_feature.clone(),
    }
}

/// The complete *semantic* state of a policy as bytes — bit-equality of fingerprints is
/// bit-equality of parameters, optimizer moments, replay memory and RNG streams. The
/// canonical writer zeroes accumulated wall-clock measurements (learner wall time),
/// which legitimately differ between a live server and a log replay of it.
fn fingerprint(policy: &dyn Policy) -> Vec<u8> {
    let mut w = crowd_ckpt::StateWriter::canonical();
    policy
        .checkpoint_state(&mut w)
        .expect("policy supports checkpointing");
    w.into_bytes()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crowd-serve-eq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Wraps a frozen agent inside a real [`Session`] replay and captures every
/// (context, decision) pair the session produced — the offline reference stream.
/// Warm start is deliberately NOT forwarded: the serving twin must be constructible
/// from configuration alone, and a frozen agent's decisions don't depend on it.
struct Recorder {
    inner: DdqnAgent,
    captured: Vec<(ArrivalContext, Vec<TaskId>, bool)>,
}

impl Policy for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }
    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        self.inner.act(view, decision);
        self.captured.push((
            view.to_context(),
            decision.shown().to_vec(),
            decision.is_assignment(),
        ));
    }
    fn observe(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) {
        self.inner.observe(view, feedback);
    }
}

#[test]
fn concurrent_clients_get_the_offline_session_replay_decisions() {
    let dataset = dataset();

    // Offline reference: a real Session replay through a frozen agent, capturing the
    // arrival stream and the decision made for each arrival.
    let mut recorder = Recorder {
        inner: frozen_agent(&dataset),
        captured: Vec::new(),
    };
    let mut session = Session::for_dataset(&dataset, &RunnerConfig::default());
    while session.step(&mut recorder) {}
    let captured = recorder.captured;
    assert!(
        captured.len() >= 20,
        "tiny session should produce a meaningful stream (got {})",
        captured.len()
    );

    // Serving twin: an identically constructed frozen agent behind the micro-batching
    // server, hammered by N concurrent client threads, each holding a disjoint slice
    // of the captured stream.
    for n_clients in [1usize, 4] {
        let config = ServeConfig {
            pool: ThreadPool::from_env(),
            ..ServeConfig::default()
        };
        let server = Server::start(Box::new(frozen_agent(&dataset)), config).unwrap();
        let total = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in captured.chunks(captured.len().div_ceil(n_clients)) {
                let client = server.client();
                handles.push(scope.spawn(move || {
                    for (context, shown, assignment) in chunk {
                        let served = client.decide(context.clone()).unwrap();
                        assert_eq!(
                            &served.shown, shown,
                            "served ranking diverged from the offline Session replay"
                        );
                        assert_eq!(served.assignment, *assignment);
                    }
                    chunk.len()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        });
        assert_eq!(total, captured.len());
        let (_policy, report) = server.shutdown();
        assert_eq!(report.decisions as usize, captured.len());
        assert!(report.log_error.is_none());
    }
}

#[test]
fn learning_server_state_equals_sequential_replay_of_its_log() {
    let dataset = dataset();
    let contexts = collect_arrival_contexts(&dataset, 9001, 40);
    assert!(contexts.len() >= 20);

    let dir = tmp_dir("learning");
    let config = ServeConfig {
        pool: ThreadPool::from_env(),
        log: Some(LogConfig::new(&dir)),
        ..ServeConfig::default()
    };
    let server = Server::start(Box::new(learning_agent(&dataset)), config).unwrap();

    // Three concurrent clients, each submitting decisions AND the resulting feedback —
    // the server learns online while serving, in whatever commit order the threads
    // race into.
    std::thread::scope(|scope| {
        for chunk in contexts.chunks(contexts.len().div_ceil(3)) {
            let client = server.client();
            scope.spawn(move || {
                for context in chunk {
                    let served = client.decide(context.clone()).unwrap();
                    client
                        .feedback(served.request_id, feedback_for(context, &served))
                        .unwrap();
                }
            });
        }
    });
    let (policy, report) = server.shutdown();
    assert_eq!(report.decisions as usize, contexts.len());
    assert_eq!(report.feedbacks as usize, contexts.len());
    assert!(report.log_error.is_none());

    // The log's record order IS the execution order: a fresh agent replaying it
    // sequentially must reach a bit-identical state — parameters, optimizer moments,
    // replay memory and RNG stream all covered by the checkpoint fingerprint.
    let records = DecisionLog::read(&dir).unwrap();
    assert_eq!(records.len(), 2 * contexts.len());
    let mut twin = learning_agent(&dataset);
    let state = replay_records(&mut twin, &records).unwrap();
    assert_eq!(state.decisions as usize, contexts.len());
    assert_eq!(state.feedbacks as usize, contexts.len());
    assert_eq!(
        fingerprint(&twin),
        fingerprint(policy.as_ref()),
        "sequential log replay must reconstruct the server's exact policy state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn saturated_ingress_rejects_try_decide_but_serves_blocking_submitters() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    // A gated policy: `act` blocks until the test opens the gate, pinning the batch
    // worker so the ingress queue can be filled deterministically.
    struct Gated {
        open: Arc<AtomicBool>,
        acts_started: Arc<AtomicU64>,
    }
    impl Policy for Gated {
        fn name(&self) -> &str {
            "gated"
        }
        fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
            self.acts_started.fetch_add(1, Ordering::SeqCst);
            while !self.open.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            decision.clear();
            if view.n_tasks() > 0 {
                decision.push(view.task_id(0));
            }
        }
        fn observe(&mut self, _: &ArrivalView<'_>, _: &FeedbackView<'_>) {}
    }
    impl BatchedPolicy for Gated {}

    let dataset = dataset();
    let contexts = collect_arrival_contexts(&dataset, 5, 4);
    let open = Arc::new(AtomicBool::new(false));
    let acts_started = Arc::new(AtomicU64::new(0));
    let policy = Gated {
        open: open.clone(),
        acts_started: acts_started.clone(),
    };
    let config = ServeConfig {
        queue_capacity: 1,
        max_batch: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(Box::new(policy), config).unwrap();

    std::thread::scope(|scope| {
        // First blocking submitter: the worker picks it up and stalls inside `act`.
        let c1 = server.client();
        let ctx1 = contexts[0].clone();
        let t1 = scope.spawn(move || c1.decide(ctx1).unwrap());
        while acts_started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Second blocking submitter fills the (capacity-1) queue behind the stalled
        // worker, demonstrating the backpressure path: it waits instead of failing.
        let c2 = server.client();
        let ctx2 = contexts[1].clone();
        let t2 = scope.spawn(move || c2.decide(ctx2).unwrap());
        // Give t2's enqueue a moment to land; it is a single bounded-channel send.
        std::thread::sleep(std::time::Duration::from_millis(100));

        // The queue is now full: fail-fast submission reports saturation.
        let client = server.client();
        assert!(matches!(
            client.try_decide(&contexts[2]),
            Err(crowd_serve::ServeError::Saturated)
        ));

        // Open the gate: both blocked submitters are served, in queue order.
        open.store(true, Ordering::SeqCst);
        assert_eq!(t1.join().unwrap().request_id, 0);
        assert_eq!(t2.join().unwrap().request_id, 1);
        // And the previously saturated client gets through once the queue drains.
        let late = client.decide(contexts[3].clone()).unwrap();
        assert_eq!(late.request_id, 2);
    });
    let (_policy, report) = server.shutdown();
    assert_eq!(report.decisions, 3);
    assert_eq!(report.max_round_decisions, 1, "max_batch=1 respected");
}
