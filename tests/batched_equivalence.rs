//! Equivalence of batched and sequential `SessionBatch` stepping: one shared policy driving
//! `N` independent simulations must produce bit-identical metrics, completions and RNG
//! streams whether every arrival is decided one `act` at a time or all live arrivals are
//! decided in a single `act_batch` call (for the DDQN agent: one packed Q-network forward
//! pass for the whole batch).
//!
//! The contract under test (see `BatchedPolicy`): a batched round evaluates every view
//! against the parameters the policy holds at the start of the round, so it matches
//! sequential stepping exactly when `act` is a pure function of those parameters. The DDQN
//! agent satisfies this with learning frozen — exploration stays ON in the first test, so
//! the per-decision RNG draws and annealing-schedule ticks are exercised and any
//! desynchronisation of the RNG stream would surface as diverging rankings.

use crowd_baselines::{ListMode, RandomPolicy};
use crowd_experiments::{RunOutcome, RunnerConfig, Session, SessionBatch};
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{BatchedPolicy, Dataset, Decision, Env, Platform, Policy, SimConfig};

const N_SESSIONS: usize = 3;

fn dataset() -> Dataset {
    SimConfig::tiny().generate()
}

/// One runner config per session: every replica faces its own behaviour-model seed, so the
/// batch genuinely mixes different pools and pool sizes in one packed forward pass.
fn session_configs() -> Vec<RunnerConfig> {
    (0..N_SESSIONS)
        .map(|i| RunnerConfig {
            platform_seed: 1_000 + i as u64,
            ..RunnerConfig::default()
        })
        .collect()
}

fn build_batch(dataset: &Dataset) -> SessionBatch {
    let mut batch = SessionBatch::new();
    for config in session_configs() {
        batch.push(Session::for_dataset(dataset, &config));
    }
    batch
}

fn ddqn_for(dataset: &Dataset) -> DdqnAgent {
    let features = Platform::default_feature_space(dataset);
    let config = DdqnConfig {
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        learn_every: 4,
        max_tasks: 32,
        buffer_size: 128,
        ..DdqnConfig::default()
    };
    DdqnAgent::new(config, features.task_dim(), features.worker_dim())
}

/// Sequential reference: the same shared policy steps every session in session order, one
/// `act` per arrival — exactly the rounds `step_batched` replaces.
fn run_sequential_rounds(
    dataset: &Dataset,
    policy: &mut (impl Policy + ?Sized),
    name: &str,
) -> Vec<RunOutcome> {
    let mut sessions: Vec<Session> = session_configs()
        .iter()
        .map(|config| Session::for_dataset(dataset, config))
        .collect();
    loop {
        let mut live = 0;
        for session in &mut sessions {
            if session.step(policy) {
                live += 1;
            }
        }
        if live == 0 {
            break;
        }
    }
    sessions
        .into_iter()
        .map(|session| session.finish(name))
        .collect()
}

fn assert_outcomes_bit_identical(sequential: &[RunOutcome], batched: &[RunOutcome]) {
    assert_eq!(sequential.len(), batched.len());
    for (seq, bat) in sequential.iter().zip(batched) {
        // Covers CR, kCR, nDCG-CR, QG, kQG and nDCG-QG — any diverging decision anywhere
        // in the replay would change at least one of these.
        assert_eq!(seq.summary(), bat.summary(), "metrics diverged");
        assert_eq!(seq.evaluated_arrivals, bat.evaluated_arrivals);
        assert_eq!(seq.total_completions, bat.total_completions);
        assert_eq!(
            seq.final_total_quality, bat.final_total_quality,
            "final platform quality diverged"
        );
    }
}

/// Probes the policy's post-run state: both agents act on one more identical arrival; a
/// desynchronised RNG stream or diverged parameters would produce different rankings.
fn assert_same_next_decision(a: &mut impl Policy, b: &mut impl Policy, dataset: &Dataset) {
    let mut platform = Platform::new(
        dataset.clone(),
        Platform::default_feature_space(dataset),
        777,
    );
    let mut decision_a = Decision::new();
    let mut decision_b = Decision::new();
    loop {
        assert!(platform.next_arrival(), "probe dataset exhausted");
        if !platform.arrival().is_empty() {
            break;
        }
    }
    let view = platform.arrival();
    a.act(&view, &mut decision_a);
    b.act(&view, &mut decision_b);
    assert_eq!(
        decision_a, decision_b,
        "post-run decisions diverged: RNG streams or parameters are out of sync"
    );
}

#[test]
fn ddqn_step_batched_is_bit_identical_to_sequential_stepping() {
    let dataset = dataset();

    // Learning frozen so `act` is a pure function of the (fixed) network parameters;
    // exploration stays ON so every decision draws from the agent's RNG.
    let mut sequential_agent = ddqn_for(&dataset);
    sequential_agent.freeze_learning();
    let sequential = run_sequential_rounds(&dataset, &mut sequential_agent, "DDQN");

    let mut batched_agent = ddqn_for(&dataset);
    batched_agent.freeze_learning();
    let mut batch = build_batch(&dataset);
    batch.run_batched(&mut batched_agent);
    let batched = batch.finish_shared("DDQN");

    assert_outcomes_bit_identical(&sequential, &batched);
    assert_same_next_decision(&mut sequential_agent, &mut batched_agent, &dataset);
}

#[test]
fn frozen_ddqn_step_batched_matches_sequential_greedy_path() {
    // Fully frozen agent (no exploration, no learning): the pure-exploitation ranking must
    // also match bit for bit — this is the evaluation-mode configuration batched scenario
    // sweeps run with.
    let dataset = dataset();

    let mut sequential_agent = ddqn_for(&dataset);
    sequential_agent.freeze_learning();
    sequential_agent.freeze_exploration();
    let sequential = run_sequential_rounds(&dataset, &mut sequential_agent, "DDQN");

    let mut batched_agent = ddqn_for(&dataset);
    batched_agent.freeze_learning();
    batched_agent.freeze_exploration();
    let mut batch = build_batch(&dataset);
    batch.run_batched(&mut batched_agent);
    let batched = batch.finish_shared("DDQN");

    assert_outcomes_bit_identical(&sequential, &batched);
}

#[test]
fn default_act_batch_fallback_matches_sequential_stepping() {
    // Policies without a custom batched path fall back to a per-view `act` loop, which must
    // be observationally identical to sequential stepping for a stateful RNG-driven policy.
    let dataset = dataset();

    let mut sequential_policy = RandomPolicy::new(ListMode::RankAll, 5);
    let sequential = run_sequential_rounds(&dataset, &mut sequential_policy, "Random");

    let mut batched_policy = RandomPolicy::new(ListMode::RankAll, 5);
    let mut batch = build_batch(&dataset);
    batch.run_batched(&mut batched_policy);
    let batched = batch.finish_shared("Random");

    assert_outcomes_bit_identical(&sequential, &batched);
    assert_same_next_decision(&mut sequential_policy, &mut batched_policy, &dataset);
}

#[test]
fn step_batched_on_an_empty_batch_is_a_noop() {
    let mut policy = RandomPolicy::new(ListMode::RankAll, 5);
    let mut batch: SessionBatch = SessionBatch::new();
    assert_eq!(batch.step_batched(&mut policy), 0);
    assert!(batch.finish_shared("Random").is_empty());
}

#[test]
fn dyn_batched_policy_objects_are_steppable() {
    // `step_batched` accepts unsized policies, so heterogeneous `Box<dyn BatchedPolicy>`
    // registries (scenario sweeps) work without monomorphisation tricks.
    let dataset = dataset();
    let mut policy: Box<dyn BatchedPolicy> = Box::new(RandomPolicy::new(ListMode::RankAll, 5));
    let mut batch = build_batch(&dataset);
    let live = batch.step_batched(policy.as_mut());
    assert!(live > 0);
}
