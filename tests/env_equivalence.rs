//! Equivalence of the owned (clone-per-arrival, eager-commit) compatibility path and the
//! zero-copy `Env`/`Session` path: one fixed-seed scenario replayed through both must
//! produce bit-identical completions, metrics (CR/kCR/kQG/nDCG), final platform state and
//! RNG-stable behaviour for every kind of policy (stateless, bandit, deep RL).

use crowd_baselines::{Benefit, LinUcb, ListMode, RandomPolicy};
use crowd_experiments::{run_policy, RunnerConfig};
use crowd_metrics::{MetricsAccumulator, MetricsSummary};
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{
    Action, ArrivalContext, Dataset, Decision, Platform, Policy, PolicyFeedback, SimConfig, TaskId,
};
use crowd_tensor::Rng;

/// Re-implementation of the original replay loop over the owned compatibility shims
/// (`next_arrival_owned` / `apply_owned`): every arrival materialises an `ArrivalContext`,
/// every decision an `Action`, and effects are committed eagerly.
fn run_owned_style(
    dataset: &Dataset,
    policy: &mut dyn Policy,
    config: &RunnerConfig,
) -> (MetricsSummary, usize, f32, usize) {
    let features = Platform::default_feature_space(dataset);
    let mut platform = Platform::new(dataset.clone(), features, config.platform_seed);
    let mut warmup_rng = Rng::seed_from(config.warmup_seed);
    let mut metrics = MetricsAccumulator::new(config.top_k);
    let mut warmup_history: Vec<(ArrivalContext, PolicyFeedback)> = Vec::new();
    let mut warm_started = config.warmup_months == 0;
    let mut current_day: Option<usize> = None;
    let mut evaluated = 0usize;
    let mut decision = Decision::new();

    while let Some(arrival) = platform.next_arrival_owned() {
        let ctx = arrival.context;
        let month = Dataset::month_of(ctx.time);
        let day = Dataset::day_of(ctx.time);
        if warm_started {
            if let Some(prev_day) = current_day {
                if day != prev_day {
                    policy.end_of_day(prev_day);
                }
            }
        }
        current_day = Some(day);

        if month < config.warmup_months {
            if ctx.available.is_empty() {
                continue;
            }
            let mut order: Vec<TaskId> = ctx.available.iter().map(|t| t.id).collect();
            warmup_rng.shuffle(&mut order);
            let feedback = platform.apply_owned(&ctx, &Action::Rank(order));
            warmup_history.push((ctx, feedback));
            continue;
        }

        if !warm_started {
            policy.warm_start(&warmup_history);
            warm_started = true;
        }
        if ctx.available.is_empty() {
            continue;
        }
        policy.act(&ctx.view(), &mut decision);
        let action = decision.to_action();
        let feedback = platform.apply_owned(&ctx, &action);
        metrics.record(month - config.warmup_months, &feedback.view());
        evaluated += 1;
        policy.observe(&ctx.view(), &feedback.view());
    }

    (
        metrics.summary(),
        evaluated,
        platform.total_task_quality(),
        platform.total_completions(),
    )
}

fn assert_paths_equivalent(make_policy: impl Fn(&Dataset) -> Box<dyn Policy>) {
    let dataset = SimConfig::tiny().generate();
    let config = RunnerConfig::default();

    let mut owned_policy = make_policy(&dataset);
    let (owned_summary, owned_evaluated, owned_quality, owned_completions) =
        run_owned_style(&dataset, owned_policy.as_mut(), &config);

    let mut session_policy = make_policy(&dataset);
    let outcome = run_policy(&dataset, session_policy.as_mut(), &config);

    // Metrics must match bit-for-bit: same completions at the same list positions with the
    // same quality gains (covers CR, kCR, nDCG-CR, QG, kQG, nDCG-QG).
    assert_eq!(owned_summary, outcome.summary());
    assert_eq!(owned_evaluated, outcome.evaluated_arrivals);
    // The platform's final state must match exactly too (same behaviour-model RNG draws,
    // same committed completions) — RNG-stability of the redesigned loop.
    assert_eq!(owned_completions, outcome.total_completions);
    assert!(
        (owned_quality - outcome.final_total_quality).abs() < 1e-6,
        "total quality diverged: {owned_quality} vs {}",
        outcome.final_total_quality
    );
}

#[test]
fn stateless_policy_paths_are_identical() {
    assert_paths_equivalent(|_| Box::new(RandomPolicy::new(ListMode::RankAll, 5)));
}

#[test]
fn bandit_policy_paths_are_identical() {
    // LinUCB updates per feedback, so any divergence in feedback content or ordering would
    // compound; identical summaries mean identical feature vectors on both paths.
    assert_paths_equivalent(|_| Box::new(LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5)));
}

#[test]
fn ddqn_policy_paths_are_identical() {
    // The deep agent consumes every field of the view (features, qualities, deadlines,
    // arrival times) and draws from its own RNG stream on every decision; bit-identical
    // outcomes require the borrowed views to match the owned snapshots exactly, in
    // particular that staged-commit semantics reproduce the eager-commit path.
    assert_paths_equivalent(|dataset| {
        let features = Platform::default_feature_space(dataset);
        let config = DdqnConfig {
            hidden_dim: 16,
            num_heads: 2,
            batch_size: 8,
            learn_every: 4,
            max_tasks: 32,
            buffer_size: 128,
            ..DdqnConfig::default()
        };
        Box::new(DdqnAgent::new(
            config,
            features.task_dim(),
            features.worker_dim(),
        ))
    });
}
