//! Crash recovery of the `crowd-serve` decision log: a killed server, restarted over
//! its log, must resume **bit-identical** to a server that never crashed — same
//! decisions, same policy parameters, same RNG stream. Torn tail records and torn
//! segment rotations (the two ways a crash can mangle the log's final bytes) must be
//! repaired silently, never replayed as data.
//!
//! The protocol driven here mirrors production use: a client `decide`s, gets an ack
//! (the ack barrier guarantees the decision is durable), submits the outcome as
//! feedback, and moves on. The kill always lands *between* an acked decide and its
//! feedback — acknowledged work is exactly the work recovery reproduces.

use crowd_experiments::{collect_arrival_contexts, ddqn_config_for, ddqn_for, Scale};
use crowd_rl_core::DdqnAgent;
use crowd_serve::{
    replay_records, DecisionLog, LogConfig, ServeConfig, ServeDecision, ServeError, Server,
};
use crowd_sim::{ArrivalContext, Dataset, Policy, PolicyFeedback, SimConfig};
use crowd_tensor::ThreadPool;
use std::path::{Path, PathBuf};

fn dataset() -> Dataset {
    SimConfig::tiny().generate()
}

/// A live agent (learning ON, exploration ON): every decision draws RNG, every
/// feedback runs learner ticks — the hardest state to reproduce bit-exactly.
fn agent(dataset: &Dataset) -> DdqnAgent {
    ddqn_for(dataset, ddqn_config_for(Scale::Tiny))
}

fn feedback_for(context: &ArrivalContext, decision: &ServeDecision) -> PolicyFeedback {
    PolicyFeedback {
        time: context.time,
        worker_id: context.worker_id,
        worker_quality: context.worker_quality,
        shown: decision.shown.clone(),
        completed: decision.shown.first().map(|&t| (t, 0)),
        quality_gain: 0.125,
        worker_feature_before: context.worker_feature.clone(),
        worker_feature_after: context.worker_feature.clone(),
    }
}

/// Canonical (wall-clock-free) encoding of the policy's complete semantic state.
fn fingerprint(policy: &dyn Policy) -> Vec<u8> {
    let mut w = crowd_ckpt::StateWriter::canonical();
    policy
        .checkpoint_state(&mut w)
        .expect("policy supports checkpointing");
    w.into_bytes()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crowd-serve-rec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_config(dir: &Path) -> ServeConfig {
    ServeConfig {
        pool: ThreadPool::from_env(),
        log: Some(LogConfig::new(dir)),
        ..ServeConfig::default()
    }
}

#[test]
fn killed_server_resumes_bit_identical_to_an_uninterrupted_one() {
    let dataset = dataset();
    let contexts = collect_arrival_contexts(&dataset, 31, 24);
    assert!(contexts.len() >= 16);
    let kill_at = contexts.len() / 2;

    // Run A — uninterrupted: decide + feedback for every arrival, graceful shutdown.
    let dir_a = tmp_dir("a");
    let server = Server::start(Box::new(agent(&dataset)), serve_config(&dir_a)).unwrap();
    let client = server.client();
    let mut decisions_a = Vec::new();
    for context in &contexts {
        let served = client.decide(context.clone()).unwrap();
        client
            .feedback(served.request_id, feedback_for(context, &served))
            .unwrap();
        decisions_a.push(served);
    }
    let (policy_a, report_a) = server.shutdown();
    assert_eq!(report_a.decisions as usize, contexts.len());
    assert_eq!(report_a.feedbacks as usize, contexts.len());
    let fingerprint_a = fingerprint(policy_a.as_ref());

    // Run B — killed mid-stream: the kill lands after decide(kill_at-1) was acked but
    // before its feedback was submitted, the exact boundary the ack barrier promises
    // to preserve.
    let dir_b = tmp_dir("b");
    let server = Server::start(Box::new(agent(&dataset)), serve_config(&dir_b)).unwrap();
    let client = server.client();
    let mut decisions_b = Vec::new();
    let mut withheld = None;
    for (i, context) in contexts[..kill_at].iter().enumerate() {
        let served = client.decide(context.clone()).unwrap();
        if i + 1 < kill_at {
            client
                .feedback(served.request_id, feedback_for(context, &served))
                .unwrap();
        } else {
            withheld = Some((served.request_id, feedback_for(context, &served)));
        }
        decisions_b.push(served);
    }
    let (_dead_policy, _report) = server.kill();

    // Recover over the same log with a freshly constructed agent.
    let (server, recovery) =
        Server::recover(Box::new(agent(&dataset)), serve_config(&dir_b)).unwrap();
    assert_eq!(recovery.replayed_decisions as usize, kill_at);
    assert_eq!(recovery.replayed_feedbacks as usize, kill_at - 1);
    assert_eq!(
        recovery.pending_after_replay, 1,
        "one decision awaits feedback"
    );
    assert_eq!(recovery.log.truncated_bytes, 0, "clean kill, no torn tail");

    // Continue exactly where the acks stopped: withheld feedback first, then the rest
    // of the stream.
    let client = server.client();
    let (id, feedback) = withheld.unwrap();
    // The request-id⇄client handshake: recovery hands back the replayed pending
    // request ids with their contexts, so a client that lost its own record of `id`
    // could rediscover it (and the context to rebuild the feedback from) here.
    assert_eq!(
        recovery
            .pending_requests
            .iter()
            .map(|(pending_id, _)| *pending_id)
            .collect::<Vec<_>>(),
        vec![id],
        "recovery must expose the withheld decision's request id"
    );
    client.feedback(id, feedback).unwrap();
    for context in &contexts[kill_at..] {
        let served = client.decide(context.clone()).unwrap();
        client
            .feedback(served.request_id, feedback_for(context, &served))
            .unwrap();
        decisions_b.push(served);
    }
    let (policy_b, report_b) = server.shutdown();
    assert!(report_b.log_error.is_none());

    // The interrupted run's decisions and final policy state match the uninterrupted
    // run bit for bit.
    assert_eq!(decisions_b, decisions_a, "served decisions diverged");
    assert_eq!(
        fingerprint(policy_b.as_ref()),
        fingerprint_a,
        "post-recovery policy state diverged from the uninterrupted run"
    );

    // RNG probe check on concrete agents: both logs replay into agents whose RNG
    // streams sit at the same position.
    let mut replay_a = agent(&dataset);
    replay_records(&mut replay_a, &DecisionLog::read(&dir_a).unwrap()).unwrap();
    let mut replay_b = agent(&dataset);
    replay_records(&mut replay_b, &DecisionLog::read(&dir_b).unwrap()).unwrap();
    assert_eq!(replay_a.rng_probe(), replay_b.rng_probe());
    assert_eq!(fingerprint(&replay_a), fingerprint_a);

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

/// A frozen agent (no learning, no exploration): the torn-log tests recover their logs
/// with a twin of the writer, so replay re-derives the logged decisions exactly.
fn frozen(dataset: &Dataset) -> DdqnAgent {
    let mut frozen = agent(dataset);
    frozen.freeze_learning();
    frozen.freeze_exploration();
    frozen
}

/// Serves `n` decisions (no feedback) against a frozen agent and kills the server,
/// leaving a log of `n` single-decision batches to mutilate.
fn build_log(dataset: &Dataset, dir: &Path, n: usize) -> Vec<ServeDecision> {
    let frozen = frozen(dataset);
    let contexts = collect_arrival_contexts(dataset, 77, n);
    assert_eq!(contexts.len(), n);
    let server = Server::start(Box::new(frozen), serve_config(dir)).unwrap();
    let client = server.client();
    let decisions = contexts
        .iter()
        .map(|c| client.decide(c.clone()).unwrap())
        .collect();
    server.kill();
    decisions
}

/// The last segment file of a log directory, by index.
fn last_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wlog"))
        .collect();
    segments.sort();
    segments.pop().expect("log has at least one segment")
}

#[test]
fn torn_tail_record_is_truncated_and_serving_resumes() {
    let dataset = dataset();
    let dir = tmp_dir("torn");
    let n = 6;
    build_log(&dataset, &dir, n);
    let segment = last_segment(&dir);
    let full = std::fs::read(&segment).unwrap();

    // Cut the final record batch at every byte offset: 1 byte short of complete, down
    // to a single byte of its header. Every cut must recover to exactly n-1 decisions
    // with the torn bytes counted and removed.
    let records = DecisionLog::read(&dir).unwrap();
    assert_eq!(records.len(), n);
    let clean_len = full.len();
    // Find where the last batch starts by replaying the recovery scan on a copy
    // truncated to just before the end: the last batch is whatever recovery drops.
    for cut in 1..=24usize.min(clean_len - 20 - 1) {
        let torn_len = clean_len - cut;
        std::fs::write(&segment, &full[..torn_len]).unwrap();
        let (server, recovery) =
            Server::recover(Box::new(frozen(&dataset)), serve_config(&dir)).unwrap();
        assert_eq!(
            recovery.replayed_decisions as usize,
            n - 1,
            "cut of {cut} bytes must drop exactly the final record batch"
        );
        assert_eq!(
            recovery.log.truncated_bytes as usize,
            torn_len - (clean_len - last_batch_len(&full, n)),
            "torn bytes accounted"
        );
        // The server resumes at the right request id and stays writable.
        let context = collect_arrival_contexts(&dataset, 77, n).pop().unwrap();
        let served = server.client().decide(context).unwrap();
        assert_eq!(served.request_id, (n - 1) as u64);
        server.kill();
        // Restore the pristine segment for the next cut.
        std::fs::write(&segment, &full).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Length in bytes of the final record batch (header + payload) of a segment whose
/// clean content holds `n` single-record batches: scan batch frames from offset 20.
fn last_batch_len(segment_bytes: &[u8], n: usize) -> usize {
    let mut offset = 20usize; // segment header
    let mut last = 0usize;
    for _ in 0..n {
        let len =
            u32::from_le_bytes(segment_bytes[offset..offset + 4].try_into().unwrap()) as usize;
        last = 8 + len;
        offset += last;
    }
    assert_eq!(
        offset,
        segment_bytes.len(),
        "frame walk must cover the file"
    );
    last
}

#[test]
fn torn_rotation_tmp_file_is_swept_and_recovery_proceeds() {
    let dataset = dataset();
    let dir = tmp_dir("rotation");
    let n = 4;
    build_log(&dataset, &dir, n);
    // A crash between tmp-create and rename leaves a half-written next segment.
    std::fs::write(
        dir.join("segment-00000001.wlog.tmp"),
        b"half-written header",
    )
    .unwrap();

    let (server, recovery) =
        Server::recover(Box::new(frozen(&dataset)), serve_config(&dir)).unwrap();
    assert_eq!(recovery.log.removed_tmp, 1, "torn rotation artefact swept");
    assert_eq!(recovery.replayed_decisions as usize, n);
    server.kill();
    assert!(!dir.join("segment-00000001.wlog.tmp").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_with_a_mismatched_policy_is_a_typed_error_not_a_fork() {
    // Replaying a log against a differently seeded/configured policy must fail loudly:
    // silently forking history would be far worse than refusing to start.
    let dataset = dataset();
    let dir = tmp_dir("mismatch");
    build_log(&dataset, &dir, 5);

    // The log was written by a frozen agent; a live (exploring) agent recomputes
    // different rankings and must be rejected.
    let result = Server::recover(Box::new(agent(&dataset)), serve_config(&dir));
    match result {
        Err(ServeError::Recovery { detail }) => {
            assert!(detail.contains("diverged"), "unexpected detail: {detail}");
        }
        Ok(_) => panic!("divergent replay must not recover"),
        Err(e) => panic!("unexpected error: {e}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
