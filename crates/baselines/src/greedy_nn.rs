//! Greedy + Neural Network baseline (paper Sec. VII-A3).
//!
//! A two-hidden-layer MLP maps `[worker feature | task feature (| qualities)]` to a predicted
//! completion probability (worker benefit) or quality gain (requester benefit). Training
//! examples accumulate from feedback and the model is retrained at the end of each simulated
//! day — the supervised update regime the paper contrasts with the RL methods' real-time
//! updates.

use crate::common::{pair_feature, Benefit, ListMode, ScoreRanker};
use crowd_nn::Mlp;
use crowd_sim::{ArrivalContext, ArrivalView, Decision, FeedbackView, Policy, PolicyFeedback};
use crowd_tensor::{Matrix, Rng};

/// Upper bound on retained training examples (oldest are dropped), keeping daily retraining
/// bounded like a sliding window over recent history.
const MAX_EXAMPLES: usize = 20_000;

/// The daily-retrained MLP baseline.
#[derive(Debug)]
pub struct GreedyNn {
    benefit: Benefit,
    mode: ListMode,
    model: Option<Mlp>,
    feature_dim: Option<usize>,
    hidden: Vec<usize>,
    examples: Vec<(Vec<f32>, f32)>,
    epochs: usize,
    rng: Rng,
    name: &'static str,
    ranker: ScoreRanker,
}

impl GreedyNn {
    /// Creates the baseline with the paper's two hidden layers.
    pub fn new(benefit: Benefit, mode: ListMode, seed: u64) -> Self {
        GreedyNn {
            benefit,
            mode,
            model: None,
            feature_dim: None,
            hidden: vec![32, 32],
            examples: Vec::new(),
            epochs: 3,
            rng: Rng::seed_from(seed),
            name: match benefit {
                Benefit::Worker => "Greedy NN",
                Benefit::Requester => "Greedy NN (r)",
            },
            ranker: ScoreRanker::new(),
        }
    }

    /// Number of stored training examples.
    pub fn n_examples(&self) -> usize {
        self.examples.len()
    }

    /// Whether the model has been trained at least once.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    fn ensure_model(&mut self, dim: usize) {
        if self.feature_dim != Some(dim) {
            self.feature_dim = Some(dim);
            self.model = None;
        }
    }

    fn retrain(&mut self) {
        let Some(dim) = self.feature_dim else { return };
        if self.examples.is_empty() {
            return;
        }
        let rows: Vec<Vec<f32>> = self.examples.iter().map(|(f, _)| f.clone()).collect();
        let targets: Vec<f32> = self.examples.iter().map(|(_, y)| *y).collect();
        let x = Matrix::from_rows(&rows).expect("rectangular training matrix");
        let mut model = Mlp::new(dim, &self.hidden, 0.005, &mut self.rng);
        model
            .fit(&x, &targets, self.epochs, 64, &mut self.rng)
            .expect("MLP training failed");
        self.model = Some(model);
    }
}

impl Policy for GreedyNn {
    fn name(&self) -> &str {
        self.name
    }

    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        decision.clear();
        if view.is_empty() {
            return;
        }
        let rows: Vec<Vec<f32>> = view
            .tasks()
            .map(|t| pair_feature(view, &t, self.benefit))
            .collect();
        self.ensure_model(rows[0].len());
        let scores = match &self.model {
            Some(model) => {
                let x = Matrix::from_rows(&rows).expect("rectangular inference matrix");
                model.predict(&x).expect("MLP prediction failed")
            }
            // Untrained model: fall back to a neutral score (ties break by pool order).
            None => vec![0.0; rows.len()],
        };
        self.ranker.decide(view, &scores, self.mode, decision);
    }

    fn observe(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) {
        // Positive example for the completed task, negatives for the tasks the worker scanned
        // and skipped (the ones ranked above the completed position).
        let negatives_end = match feedback.completed {
            Some((_, pos)) => pos,
            None => feedback.shown.len().min(8),
        };
        fn push(
            this: &mut GreedyNn,
            view: &ArrivalView<'_>,
            task_id: crowd_sim::TaskId,
            label: f32,
        ) {
            if let Some(pos) = view.position_of(task_id) {
                let f = pair_feature(view, &view.task(pos), this.benefit);
                this.ensure_model(f.len());
                if this.examples.len() >= MAX_EXAMPLES {
                    this.examples.remove(0);
                }
                this.examples.push((f, label));
            }
        }
        if let Some((task, _)) = feedback.completed {
            let label = match self.benefit {
                Benefit::Worker => 1.0,
                Benefit::Requester => feedback.quality_gain,
            };
            push(self, view, task, label);
        }
        for &task in feedback.shown.iter().take(negatives_end) {
            push(self, view, task, 0.0);
        }
    }

    fn end_of_day(&mut self, _day: usize) {
        self.retrain();
    }

    fn warm_start(&mut self, history: &[(ArrivalContext, PolicyFeedback)]) {
        for (ctx, feedback) in history {
            self.observe(&ctx.view(), &feedback.view());
        }
        self.retrain();
    }

    /// Greedy NN's dynamic state is the RNG stream (model init and epoch shuffles),
    /// the discovered feature dimension, the trained MLP (parameters + Adam moments,
    /// when one exists) and the retained example window. The hyperparameters (benefit,
    /// mode, hidden widths, epochs) are configuration and are *not* saved — restore
    /// into a policy built with the same configuration, like the other baselines.
    fn checkpoint_state(&self, w: &mut crowd_ckpt::StateWriter) -> crowd_ckpt::Result<()> {
        crowd_ckpt::SaveState::save_state(&self.rng, w);
        match self.feature_dim {
            Some(dim) => {
                w.put_bool(true);
                w.put_usize(dim);
            }
            None => w.put_bool(false),
        }
        match &self.model {
            Some(model) => {
                w.put_bool(true);
                crowd_ckpt::SaveState::save_state(model, w);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.examples.len());
        for (feature, label) in &self.examples {
            w.put_f32_slice(feature);
            w.put_f32(*label);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        crowd_ckpt::LoadState::load_state(&mut self.rng, r)?;
        let feature_dim = if r.take_bool()? {
            Some(r.take_usize()?)
        } else {
            None
        };
        let model = if r.take_bool()? {
            let Some(dim) = feature_dim else {
                return Err(crowd_ckpt::CkptError::Corrupt {
                    what: "Greedy NN state",
                    detail: "a trained model without a feature dimension".to_string(),
                });
            };
            // The scaffold's RNG is throwaway on purpose: its init weights are fully
            // overwritten by the (shape-validated) load, and drawing from `self.rng`
            // here would advance the just-restored stream past the saved position.
            let mut scaffold_rng = Rng::seed_from(0);
            let mut model = Mlp::new(dim, &self.hidden, 0.005, &mut scaffold_rng);
            crowd_ckpt::LoadState::load_state(&mut model, r)?;
            Some(model)
        } else {
            None
        };
        let n_examples = r.take_len("greedy-nn examples", 12)?;
        let mut examples = Vec::with_capacity(n_examples);
        for _ in 0..n_examples {
            let feature = r.take_f32_vec()?;
            if let Some(dim) = feature_dim {
                if feature.len() != dim {
                    return Err(crowd_ckpt::CkptError::Corrupt {
                        what: "Greedy NN state",
                        detail: format!(
                            "an example has {} features, expected {dim}",
                            feature.len()
                        ),
                    });
                }
            }
            let label = r.take_f32()?;
            examples.push((feature, label));
        }
        self.feature_dim = feature_dim;
        self.model = model;
        self.examples = examples;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{TaskId, TaskSnapshot, WorkerId};

    fn snapshot(id: u32, feature: Vec<f32>) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature,
            quality: 0.0,
            award: 1.0,
            category: 0,
            domain: 0,
            deadline: 100,
            completions: 0,
        }
    }

    /// Worker likes "category 0" tasks (feature [1,0]); builds a context with one liked and
    /// one disliked task.
    fn context() -> ArrivalContext {
        ArrivalContext {
            time: 0,
            worker_id: WorkerId(0),
            worker_feature: vec![1.0, 0.0],
            worker_quality: 0.5,
            is_new_worker: false,
            available: vec![snapshot(0, vec![1.0, 0.0]), snapshot(1, vec![0.0, 1.0])],
        }
    }

    fn feedback(ctx: &ArrivalContext, completed: Option<(u32, usize)>) -> PolicyFeedback {
        PolicyFeedback {
            time: 0,
            worker_id: ctx.worker_id,
            worker_quality: ctx.worker_quality,
            shown: ctx.available.iter().map(|t| t.id).collect(),
            completed: completed.map(|(id, pos)| (TaskId(id), pos)),
            quality_gain: if completed.is_some() { 0.5 } else { 0.0 },
            worker_feature_before: ctx.worker_feature.clone(),
            worker_feature_after: ctx.worker_feature.clone(),
        }
    }

    #[test]
    fn untrained_model_still_acts() {
        let mut p = GreedyNn::new(Benefit::Worker, ListMode::RankAll, 0);
        assert!(!p.is_trained());
        let mut decision = Decision::new();
        p.act(&context().view(), &mut decision);
        assert_eq!(decision.len(), 2);
    }

    #[test]
    fn learns_worker_preference_after_daily_retrain() {
        let mut p = GreedyNn::new(Benefit::Worker, ListMode::AssignOne, 1);
        let ctx = context();
        // The worker repeatedly completes the liked task (shown at position 1 sometimes so
        // negatives for the disliked task are generated too).
        for _ in 0..60 {
            p.observe(&ctx.view(), &feedback(&ctx, Some((0, 0))).view());
            let mut swapped = ctx.clone();
            swapped.available.reverse();
            let swapped_fb = feedback(&swapped, Some((0, 1)));
            p.observe(&swapped.view(), &swapped_fb.view());
        }
        assert!(p.n_examples() > 100);
        p.end_of_day(0);
        assert!(p.is_trained());
        let mut decision = Decision::new();
        p.act(&ctx.view(), &mut decision);
        assert!(decision.is_assignment());
        assert_eq!(decision.shown(), &[TaskId(0)]);
    }

    #[test]
    fn warm_start_trains_immediately() {
        let ctx = context();
        let history: Vec<_> = (0..40)
            .map(|_| (ctx.clone(), feedback(&ctx, Some((0, 0)))))
            .collect();
        let mut p = GreedyNn::new(Benefit::Worker, ListMode::AssignOne, 2);
        p.warm_start(&history);
        assert!(p.is_trained());
    }

    #[test]
    fn checkpoint_roundtrip_continues_bit_identically() {
        let mut trained = GreedyNn::new(Benefit::Worker, ListMode::AssignOne, 4);
        let ctx = context();
        for _ in 0..30 {
            trained.observe(&ctx.view(), &feedback(&ctx, Some((0, 0))).view());
            let mut swapped = ctx.clone();
            swapped.available.reverse();
            let swapped_fb = feedback(&swapped, Some((0, 1)));
            trained.observe(&swapped.view(), &swapped_fb.view());
        }
        trained.end_of_day(0);
        assert!(trained.is_trained());

        let mut w = crowd_ckpt::StateWriter::new();
        trained.checkpoint_state(&mut w).unwrap();
        let bytes = w.into_bytes();

        // Different seed on purpose: every RNG word must come from the snapshot.
        let mut restored = GreedyNn::new(Benefit::Worker, ListMode::AssignOne, 8_888);
        let mut r = crowd_ckpt::StateReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish("Greedy NN state").unwrap();
        assert!(restored.is_trained());
        assert_eq!(restored.n_examples(), trained.n_examples());

        // Continue both through identical feedback and another daily retrain (which
        // builds a fresh MLP from the restored RNG stream): still bit-identical.
        for policy in [&mut trained, &mut restored] {
            for _ in 0..10 {
                let fb = feedback(&ctx, Some((0, 0)));
                policy.observe(&ctx.view(), &fb.view());
            }
            policy.end_of_day(1);
        }
        let (mut d1, mut d2) = (Decision::new(), Decision::new());
        trained.act(&ctx.view(), &mut d1);
        restored.act(&ctx.view(), &mut d2);
        assert_eq!(d1.shown(), d2.shown());
        let (mut wa, mut wb) = (
            crowd_ckpt::StateWriter::new(),
            crowd_ckpt::StateWriter::new(),
        );
        trained.checkpoint_state(&mut wa).unwrap();
        restored.checkpoint_state(&mut wb).unwrap();
        assert_eq!(
            wa.into_bytes(),
            wb.into_bytes(),
            "resumed Greedy NN diverged from the uninterrupted one"
        );
    }

    #[test]
    fn checkpoint_of_untrained_policy_roundtrips() {
        let fresh = GreedyNn::new(Benefit::Requester, ListMode::RankAll, 5);
        let mut w = crowd_ckpt::StateWriter::new();
        fresh.checkpoint_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = GreedyNn::new(Benefit::Requester, ListMode::RankAll, 5);
        let mut r = crowd_ckpt::StateReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish("Greedy NN state").unwrap();
        assert!(!restored.is_trained());
        assert_eq!(restored.n_examples(), 0);
    }

    #[test]
    fn restore_rejects_an_example_width_mismatch() {
        let mut w = crowd_ckpt::StateWriter::new();
        crowd_ckpt::SaveState::save_state(&Rng::seed_from(0), &mut w);
        w.put_bool(true);
        w.put_usize(4); // feature_dim = 4
        w.put_bool(false); // no model
        w.put_usize(1);
        w.put_f32_slice(&[0.0; 3]); // example width 3 != 4
        w.put_f32(1.0);
        let bytes = w.into_bytes();
        let mut p = GreedyNn::new(Benefit::Worker, ListMode::RankAll, 0);
        assert!(matches!(
            p.restore_state(&mut crowd_ckpt::StateReader::new(&bytes)),
            Err(crowd_ckpt::CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn example_buffer_is_bounded() {
        let mut p = GreedyNn::new(Benefit::Requester, ListMode::RankAll, 3);
        let ctx = context();
        let fb = feedback(&ctx, Some((0, 1)));
        for _ in 0..(MAX_EXAMPLES / 2 + 10) {
            p.observe(&ctx.view(), &fb.view());
        }
        assert!(p.n_examples() <= MAX_EXAMPLES);
    }
}
