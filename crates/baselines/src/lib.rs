//! Baseline task-arrangement policies from the paper's evaluation (Sec. VII-A3).
//!
//! | Paper name | Type | Update regime |
//! |---|---|---|
//! | Random | no model | — |
//! | Taskrec (PMF) | probabilistic matrix factorization over worker/task/category | retrained daily |
//! | Greedy + Cosine Similarity | similarity scoring | feature updates only |
//! | Greedy + Neural Network | two-hidden-layer MLP | retrained daily |
//! | SpatialUCB / LinUCB | contextual linear bandit with UCB exploration | updated per feedback |
//!
//! Every baseline implements [`crowd_sim::Policy`] and supports both the single-assignment
//! and ranked-list settings, plus the worker-benefit and requester-benefit objectives (the
//! latter by scoring expected quality gain instead of completion probability, exactly as the
//! paper adapts each baseline).
//!
//! Every *stateful* baseline also implements `Policy::checkpoint_state` /
//! `restore_state` (Random: its RNG; LinUCB: the per-arm tables; Taskrec: factor
//! tables + interaction window; Greedy NN: its [`Mlp`](crowd_nn::Mlp) + example
//! window), so long sweeps resume bit-identically — see
//! `docs/CHECKPOINT_FORMAT.md`, "Baselines". [`GreedyCosine`] is the one genuinely
//! stateless policy and keeps the `Unsupported` default.

pub mod common;
pub mod greedy_cosine;
pub mod greedy_nn;
pub mod linucb;
pub mod random_policy;
pub mod taskrec;

// Every baseline scores arrivals independently, so the default per-view loop of
// `act_batch` already satisfies the batched contract; only the DDQN agent (in
// `crowd-rl-core`) overrides it with a shared forward pass.
impl crowd_sim::BatchedPolicy for GreedyCosine {}
impl crowd_sim::BatchedPolicy for GreedyNn {}
impl crowd_sim::BatchedPolicy for LinUcb {}
impl crowd_sim::BatchedPolicy for RandomPolicy {}
impl crowd_sim::BatchedPolicy for Taskrec {}

pub use common::{Benefit, ListMode, ScoreRanker};
pub use greedy_cosine::GreedyCosine;
pub use greedy_nn::GreedyNn;
pub use linucb::LinUcb;
pub use random_policy::RandomPolicy;
pub use taskrec::Taskrec;
