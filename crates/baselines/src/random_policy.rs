//! The Random baseline: picks a task (or orders the pool) uniformly at random.

use crate::common::{ListMode, ScoreRanker};
use crowd_sim::{ArrivalView, Decision, FeedbackView, Policy};
use crowd_tensor::Rng;

/// Uniformly random task arrangement — the paper's weakest baseline.
#[derive(Debug)]
pub struct RandomPolicy {
    mode: ListMode,
    rng: Rng,
    scores: Vec<f32>,
    ranker: ScoreRanker,
}

impl RandomPolicy {
    /// Creates the policy with its own RNG stream.
    pub fn new(mode: ListMode, seed: u64) -> Self {
        RandomPolicy {
            mode,
            rng: Rng::seed_from(seed),
            scores: Vec::new(),
            ranker: ScoreRanker::new(),
        }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &str {
        "Random"
    }

    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        self.scores.clear();
        self.scores
            .extend((0..view.n_tasks()).map(|_| self.rng.unit()));
        self.ranker.decide(view, &self.scores, self.mode, decision);
    }

    fn observe(&mut self, _view: &ArrivalView<'_>, _feedback: &FeedbackView<'_>) {}

    /// The only dynamic state is the scoring RNG stream (the score/ranker buffers are
    /// per-arrival scratch), so Random is trivially checkpointable.
    fn checkpoint_state(&self, w: &mut crowd_ckpt::StateWriter) -> crowd_ckpt::Result<()> {
        crowd_ckpt::SaveState::save_state(&self.rng, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        crowd_ckpt::LoadState::load_state(&mut self.rng, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{ArrivalContext, TaskId, TaskSnapshot, WorkerId};

    fn context(n: u32) -> ArrivalContext {
        ArrivalContext {
            time: 0,
            worker_id: WorkerId(0),
            worker_feature: vec![0.0],
            worker_quality: 0.5,
            is_new_worker: false,
            available: (0..n)
                .map(|i| TaskSnapshot {
                    id: TaskId(i),
                    feature: vec![0.0],
                    quality: 0.0,
                    award: 1.0,
                    category: 0,
                    domain: 0,
                    deadline: 10,
                    completions: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn rank_mode_produces_permutations_that_vary() {
        let mut p = RandomPolicy::new(ListMode::RankAll, 1);
        let ctx = context(6);
        let mut decision = Decision::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            p.act(&ctx.view(), &mut decision);
            let list = decision.shown().to_vec();
            assert_eq!(list.len(), 6);
            let mut sorted = list.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 6);
            seen.insert(list);
        }
        assert!(seen.len() > 5, "random rankings should vary");
    }

    #[test]
    fn assign_mode_covers_all_tasks_eventually() {
        let mut p = RandomPolicy::new(ListMode::AssignOne, 2);
        let ctx = context(4);
        let mut decision = Decision::new();
        let mut hit = [false; 4];
        for _ in 0..200 {
            p.act(&ctx.view(), &mut decision);
            assert!(decision.is_assignment());
            hit[decision.shown()[0].0 as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn empty_pool_is_handled() {
        let mut p = RandomPolicy::new(ListMode::RankAll, 3);
        let mut decision = Decision::new();
        p.act(&context(0).view(), &mut decision);
        assert!(decision.is_empty());
        assert_eq!(p.name(), "Random");
    }
}
