//! Greedy + Cosine Similarity baseline (paper Sec. VII-A3).
//!
//! The cosine similarity between the worker's feature (distribution of recently completed
//! tasks) and a task's feature is treated as the completion probability; for the requester
//! benefit it is multiplied by the expected Dixit–Stiglitz quality gain.

use crate::common::{expected_quality_gain, Benefit, ListMode, ScoreRanker};
use crowd_sim::{ArrivalView, Decision, FeedbackView, Policy};
use crowd_tensor::ops::cosine_slices;

/// The similarity-scoring greedy baseline. It has no trainable model — only the features
/// themselves evolve (maintained by the platform), so `observe` is a no-op.
#[derive(Debug, Clone)]
pub struct GreedyCosine {
    benefit: Benefit,
    mode: ListMode,
    name: &'static str,
    scores: Vec<f32>,
    ranker: ScoreRanker,
}

impl GreedyCosine {
    /// Creates the baseline for the given benefit and list mode.
    pub fn new(benefit: Benefit, mode: ListMode) -> Self {
        GreedyCosine {
            benefit,
            mode,
            name: match benefit {
                Benefit::Worker => "Greedy CS",
                Benefit::Requester => "Greedy CS (r)",
            },
            scores: Vec::new(),
            ranker: ScoreRanker::new(),
        }
    }

    /// Score of one task for the arriving worker. Reads features straight from the
    /// borrowed view — no copies.
    pub fn score(&self, view: &ArrivalView<'_>, task_index: usize) -> f32 {
        let task = view.task(task_index);
        let similarity = cosine_slices(view.worker_feature, task.feature);
        match self.benefit {
            Benefit::Worker => similarity,
            Benefit::Requester => similarity.max(0.0) * expected_quality_gain(view, &task),
        }
    }
}

impl Policy for GreedyCosine {
    fn name(&self) -> &str {
        self.name
    }

    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        self.scores.clear();
        for i in 0..view.n_tasks() {
            self.scores.push(self.score(view, i));
        }
        self.ranker.decide(view, &self.scores, self.mode, decision);
    }

    fn observe(&mut self, _view: &ArrivalView<'_>, _feedback: &FeedbackView<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{ArrivalContext, TaskId, TaskSnapshot, WorkerId};

    fn snapshot(id: u32, feature: Vec<f32>, quality: f32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature,
            quality,
            award: 1.0,
            category: 0,
            domain: 0,
            deadline: 10,
            completions: 0,
        }
    }

    fn context() -> ArrivalContext {
        ArrivalContext {
            time: 0,
            worker_id: WorkerId(0),
            worker_feature: vec![1.0, 0.0, 0.0],
            worker_quality: 0.8,
            is_new_worker: false,
            available: vec![
                snapshot(0, vec![1.0, 0.0, 0.0], 0.0), // identical to worker history
                snapshot(1, vec![0.0, 1.0, 0.0], 0.0), // orthogonal
                snapshot(2, vec![0.7, 0.7, 0.0], 0.0), // in between
            ],
        }
    }

    #[test]
    fn worker_benefit_ranks_by_similarity() {
        let mut p = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let ctx = context();
        let mut decision = Decision::new();
        p.act(&ctx.view(), &mut decision);
        assert_eq!(decision.shown(), &[TaskId(0), TaskId(2), TaskId(1)]);
        assert_eq!(p.name(), "Greedy CS");
    }

    #[test]
    fn requester_benefit_prefers_low_quality_tasks_for_equal_similarity() {
        // Two identical-similarity tasks, one already high quality: the fresh task promises
        // a larger marginal gain and must rank first.
        let mut ctx = context();
        ctx.available = vec![
            snapshot(0, vec![1.0, 0.0, 0.0], 2.0),
            snapshot(1, vec![1.0, 0.0, 0.0], 0.0),
        ];
        let mut p = GreedyCosine::new(Benefit::Requester, ListMode::AssignOne);
        let mut decision = Decision::new();
        p.act(&ctx.view(), &mut decision);
        assert!(decision.is_assignment());
        assert_eq!(decision.shown(), &[TaskId(1)]);
    }

    #[test]
    fn cold_start_worker_scores_zero_everywhere() {
        let mut ctx = context();
        ctx.worker_feature = vec![0.0, 0.0, 0.0];
        let p = GreedyCosine::new(Benefit::Worker, ListMode::RankAll);
        let view = ctx.view();
        for i in 0..view.n_tasks() {
            assert_eq!(p.score(&view, i), 0.0);
        }
    }
}
