//! SpatialUCB / LinUCB baseline (paper Sec. VII-A3, adapting Hassan & Curry's multi-armed
//! bandit spatial assignment and Li et al.'s LinUCB).
//!
//! A single ridge-regression model over the joint worker–task feature `x` estimates the
//! expected reward; the score of a task is the upper confidence bound
//! `θᵀx + α·sqrt(xᵀ A⁻¹ x)` where `A = λI + Σ x xᵀ`. The model is updated after every
//! feedback (real-time regime), with `A⁻¹` maintained incrementally via Sherman–Morrison.

use crate::common::{pair_feature, Benefit, ListMode, ScoreRanker};
use crowd_sim::{ArrivalContext, ArrivalView, Decision, FeedbackView, Policy, PolicyFeedback};
use crowd_tensor::ops::dot_slices;
use crowd_tensor::Matrix;

/// The LinUCB contextual-bandit baseline.
#[derive(Debug, Clone)]
pub struct LinUcb {
    benefit: Benefit,
    mode: ListMode,
    /// Exploration strength α.
    alpha: f32,
    /// Inverse design matrix A⁻¹ (lazily sized on the first context).
    a_inv: Option<Matrix>,
    /// Reward-weighted feature sum b.
    b: Vec<f32>,
    /// Cached θ = A⁻¹ b, refreshed after every update.
    theta: Vec<f32>,
    updates: u64,
    name: &'static str,
    ranker: ScoreRanker,
}

impl LinUcb {
    /// Creates the baseline with exploration strength `alpha` (0.5 is a reasonable default).
    pub fn new(benefit: Benefit, mode: ListMode, alpha: f32) -> Self {
        LinUcb {
            benefit,
            mode,
            alpha,
            a_inv: None,
            b: Vec::new(),
            theta: Vec::new(),
            updates: 0,
            name: match benefit {
                Benefit::Worker => "LinUCB",
                Benefit::Requester => "LinUCB (r)",
            },
            ranker: ScoreRanker::new(),
        }
    }

    /// Number of feedback updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn ensure_dim(&mut self, dim: usize) {
        let needs_reset = match &self.a_inv {
            Some(a) => a.rows() != dim,
            None => true,
        };
        if needs_reset {
            // Ridge prior λ = 1 ⇒ A = I ⇒ A⁻¹ = I.
            self.a_inv = Some(Matrix::identity(dim));
            self.b = vec![0.0; dim];
            self.theta = vec![0.0; dim];
        }
    }

    /// UCB score for a feature vector.
    fn ucb(&self, x: &[f32]) -> f32 {
        let Some(a_inv) = &self.a_inv else { return 0.0 };
        let mean = dot_slices(&self.theta, x);
        // variance = xᵀ A⁻¹ x.
        let mut ax = vec![0.0f32; x.len()];
        for (i, ax_i) in ax.iter_mut().enumerate() {
            *ax_i = dot_slices(a_inv.row(i), x);
        }
        let variance = dot_slices(&ax, x).max(0.0);
        mean + self.alpha * variance.sqrt()
    }

    /// Sherman–Morrison update of A⁻¹ and b with one observation `(x, reward)`, then refresh
    /// θ.
    fn update(&mut self, x: &[f32], reward: f32) {
        self.ensure_dim(x.len());
        let a_inv = self.a_inv.as_mut().expect("initialised above");
        // u = A⁻¹ x
        let dim = x.len();
        let mut u = vec![0.0f32; dim];
        for (i, u_i) in u.iter_mut().enumerate() {
            *u_i = dot_slices(a_inv.row(i), x);
        }
        let denom = 1.0 + dot_slices(x, &u);
        // A⁻¹ ← A⁻¹ − (u uᵀ) / denom   (A⁻¹ is symmetric, so A⁻¹x = xᵀA⁻¹).
        for i in 0..dim {
            for j in 0..dim {
                let v = a_inv.get(i, j) - u[i] * u[j] / denom;
                a_inv.set(i, j, v);
            }
        }
        for (b_i, &x_i) in self.b.iter_mut().zip(x) {
            *b_i += reward * x_i;
        }
        // θ = A⁻¹ b.
        let a_inv = self.a_inv.as_ref().expect("initialised above");
        self.theta = (0..dim)
            .map(|i| dot_slices(a_inv.row(i), &self.b))
            .collect();
        self.updates += 1;
    }
}

impl Policy for LinUcb {
    fn name(&self) -> &str {
        self.name
    }

    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        decision.clear();
        if view.is_empty() {
            return;
        }
        let features: Vec<Vec<f32>> = view
            .tasks()
            .map(|t| pair_feature(view, &t, self.benefit))
            .collect();
        self.ensure_dim(features[0].len());
        let scores: Vec<f32> = features.iter().map(|x| self.ucb(x)).collect();
        self.ranker.decide(view, &scores, self.mode, decision);
    }

    fn observe(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) {
        let negatives_end = match feedback.completed {
            Some((_, pos)) => pos,
            None => feedback.shown.len().min(8),
        };
        let mut updates: Vec<(Vec<f32>, f32)> = Vec::new();
        if let Some((task, _)) = feedback.completed {
            if let Some(pos) = view.position_of(task) {
                let reward = match self.benefit {
                    Benefit::Worker => 1.0,
                    Benefit::Requester => feedback.quality_gain,
                };
                updates.push((pair_feature(view, &view.task(pos), self.benefit), reward));
            }
        }
        for &task in feedback.shown.iter().take(negatives_end) {
            if let Some(pos) = view.position_of(task) {
                updates.push((pair_feature(view, &view.task(pos), self.benefit), 0.0));
            }
        }
        for (x, reward) in updates {
            self.update(&x, reward);
        }
    }

    fn warm_start(&mut self, history: &[(ArrivalContext, PolicyFeedback)]) {
        for (ctx, feedback) in history {
            self.observe(&ctx.view(), &feedback.view());
        }
    }

    /// LinUCB's dynamic state is the design-matrix inverse `A⁻¹`, the reward-weighted
    /// feature sum `b`, the cached `θ` and the update counter — the policy draws no
    /// random numbers (the UCB bonus *is* its exploration), so there is no RNG stream
    /// to capture. Floats roundtrip as raw bits, so a restored model scores every
    /// future context bit-identically.
    fn checkpoint_state(&self, w: &mut crowd_ckpt::StateWriter) -> crowd_ckpt::Result<()> {
        match &self.a_inv {
            Some(a_inv) => {
                w.put_bool(true);
                crowd_ckpt::SaveState::save_state(a_inv, w);
            }
            None => w.put_bool(false),
        }
        w.put_f32_slice(&self.b);
        w.put_f32_slice(&self.theta);
        w.put_u64(self.updates);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let a_inv: Option<Matrix> = if r.take_bool()? {
            Some(r.decode()?)
        } else {
            None
        };
        let b = r.take_f32_vec()?;
        let theta = r.take_f32_vec()?;
        let updates = r.take_u64()?;
        let dim = a_inv.as_ref().map(|a| a.rows()).unwrap_or(0);
        if b.len() != dim || theta.len() != dim {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "LinUCB state",
                detail: format!(
                    "A⁻¹ is {dim}×{dim} but b has {} and θ has {} entries",
                    b.len(),
                    theta.len()
                ),
            });
        }
        self.a_inv = a_inv;
        self.b = b;
        self.theta = theta;
        self.updates = updates;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{TaskId, TaskSnapshot, WorkerId};

    fn snapshot(id: u32, feature: Vec<f32>) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature,
            quality: 0.0,
            award: 1.0,
            category: 0,
            domain: 0,
            deadline: 100,
            completions: 0,
        }
    }

    fn context() -> ArrivalContext {
        ArrivalContext {
            time: 0,
            worker_id: WorkerId(0),
            worker_feature: vec![1.0, 0.0],
            worker_quality: 0.7,
            is_new_worker: false,
            available: vec![snapshot(0, vec![1.0, 0.0]), snapshot(1, vec![0.0, 1.0])],
        }
    }

    fn feedback(
        ctx: &ArrivalContext,
        completed: Option<(u32, usize)>,
        gain: f32,
    ) -> PolicyFeedback {
        PolicyFeedback {
            time: 0,
            worker_id: ctx.worker_id,
            worker_quality: ctx.worker_quality,
            shown: ctx.available.iter().map(|t| t.id).collect(),
            completed: completed.map(|(id, pos)| (TaskId(id), pos)),
            quality_gain: gain,
            worker_feature_before: ctx.worker_feature.clone(),
            worker_feature_after: ctx.worker_feature.clone(),
        }
    }

    #[test]
    fn untrained_scores_are_purely_exploratory() {
        let mut p = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
        let mut decision = Decision::new();
        p.act(&context().view(), &mut decision);
        assert_eq!(decision.len(), 2);
        assert_eq!(p.updates(), 0);
    }

    #[test]
    fn learns_rewarded_context_in_real_time() {
        let mut p = LinUcb::new(Benefit::Worker, ListMode::AssignOne, 0.1);
        let ctx = context();
        // Task 0 (matching the worker) is always completed, task 1 never.
        for _ in 0..50 {
            p.observe(&ctx.view(), &feedback(&ctx, Some((0, 0)), 0.0).view());
            p.observe(&ctx.view(), &feedback(&ctx, None, 0.0).view());
        }
        assert!(p.updates() > 50);
        let mut decision = Decision::new();
        p.act(&ctx.view(), &mut decision);
        assert!(decision.is_assignment());
        assert_eq!(decision.shown(), &[TaskId(0)]);
    }

    #[test]
    fn requester_variant_uses_quality_gain_as_reward() {
        let mut p = LinUcb::new(Benefit::Requester, ListMode::AssignOne, 0.1);
        let mut ctx = context();
        // Make features identical so only the learned reward distinguishes the tasks; then
        // reward completion of task 1 with a big quality gain.
        ctx.available = vec![snapshot(0, vec![1.0, 0.0]), snapshot(1, vec![0.0, 1.0])];
        for _ in 0..60 {
            p.observe(&ctx.view(), &feedback(&ctx, Some((1, 0)), 0.9).view());
            p.observe(&ctx.view(), &feedback(&ctx, Some((0, 0)), 0.05).view());
        }
        let mut decision = Decision::new();
        p.act(&ctx.view(), &mut decision);
        assert!(decision.is_assignment());
        assert_eq!(decision.shown(), &[TaskId(1)]);
        assert_eq!(p.name(), "LinUCB (r)");
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical() {
        let mut trained = LinUcb::new(Benefit::Worker, ListMode::AssignOne, 0.3);
        let ctx = context();
        for _ in 0..25 {
            trained.observe(&ctx.view(), &feedback(&ctx, Some((0, 0)), 0.0).view());
            trained.observe(&ctx.view(), &feedback(&ctx, None, 0.0).view());
        }

        let mut w = crowd_ckpt::StateWriter::new();
        trained.checkpoint_state(&mut w).unwrap();
        let bytes = w.into_bytes();

        let mut restored = LinUcb::new(Benefit::Worker, ListMode::AssignOne, 0.3);
        let mut r = crowd_ckpt::StateReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish("LinUCB state").unwrap();

        assert_eq!(restored.updates(), trained.updates());
        assert_eq!(restored.b, trained.b);
        assert_eq!(restored.theta, trained.theta);
        // Same dynamic state ⇒ bit-identical future behaviour: scores, decisions and
        // the state after further (identical) feedback all agree.
        let mut d1 = Decision::new();
        let mut d2 = Decision::new();
        trained.act(&ctx.view(), &mut d1);
        restored.act(&ctx.view(), &mut d2);
        assert_eq!(d1.shown(), d2.shown());
        trained.observe(&ctx.view(), &feedback(&ctx, Some((1, 1)), 0.4).view());
        restored.observe(&ctx.view(), &feedback(&ctx, Some((1, 1)), 0.4).view());
        let (mut wa, mut wb) = (
            crowd_ckpt::StateWriter::new(),
            crowd_ckpt::StateWriter::new(),
        );
        trained.checkpoint_state(&mut wa).unwrap();
        restored.checkpoint_state(&mut wb).unwrap();
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn checkpoint_of_untrained_model_roundtrips() {
        let fresh = LinUcb::new(Benefit::Requester, ListMode::RankAll, 0.5);
        let mut w = crowd_ckpt::StateWriter::new();
        fresh.checkpoint_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = LinUcb::new(Benefit::Requester, ListMode::RankAll, 0.5);
        restored
            .restore_state(&mut crowd_ckpt::StateReader::new(&bytes))
            .unwrap();
        assert!(restored.a_inv.is_none());
        assert_eq!(restored.updates(), 0);
    }

    #[test]
    fn restore_rejects_mismatched_dimensions() {
        let mut w = crowd_ckpt::StateWriter::new();
        w.put_bool(true);
        crowd_ckpt::SaveState::save_state(&crowd_tensor::Matrix::identity(3), &mut w);
        w.put_f32_slice(&[0.0; 2]); // b: wrong length
        w.put_f32_slice(&[0.0; 3]);
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut p = LinUcb::new(Benefit::Worker, ListMode::AssignOne, 0.5);
        assert!(matches!(
            p.restore_state(&mut crowd_ckpt::StateReader::new(&bytes)),
            Err(crowd_ckpt::CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn ucb_bonus_shrinks_with_observations() {
        let mut p = LinUcb::new(Benefit::Worker, ListMode::AssignOne, 1.0);
        let x = vec![1.0, 0.0, 0.0, 0.0];
        p.ensure_dim(4);
        let before = p.ucb(&x);
        for _ in 0..30 {
            p.update(&x, 0.0);
        }
        let after = p.ucb(&x);
        assert!(
            after < before,
            "UCB bonus should shrink: {before} -> {after}"
        );
    }
}
