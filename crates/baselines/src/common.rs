//! Shared plumbing for the baseline policies: objective selection, decision construction
//! from per-task scores, feature assembly and expected quality gain — all over the borrowed
//! view interface.

use crowd_sim::{ArrivalView, Decision, TaskRef};

/// Which benefit a baseline optimises (the paper evaluates each baseline once per benefit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benefit {
    /// Maximise the worker completion rate (Fig. 7).
    Worker,
    /// Maximise the requesters' task quality gain (Fig. 8).
    Requester,
}

/// Whether the policy assigns one task or shows the full ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListMode {
    /// Assign exactly one task per arrival.
    AssignOne,
    /// Rank every available task.
    RankAll,
}

/// Reusable index scratch for score-based ranking: sorting indices by score needs a
/// working buffer, and keeping it in the policy makes the per-arrival decision path
/// allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct ScoreRanker {
    order: Vec<usize>,
}

impl ScoreRanker {
    /// A ranker with an empty scratch buffer.
    pub fn new() -> Self {
        ScoreRanker::default()
    }

    /// Writes a decision from per-task scores (higher = better, aligned with pool order)
    /// into the reusable buffer, respecting the list mode. Ties are broken by the original
    /// pool order, which keeps results deterministic.
    pub fn decide(
        &mut self,
        view: &ArrivalView<'_>,
        scores: &[f32],
        mode: ListMode,
        decision: &mut Decision,
    ) {
        debug_assert_eq!(scores.len(), view.n_tasks());
        decision.clear();
        self.order.clear();
        self.order.extend(0..scores.len());
        self.order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        match mode {
            ListMode::AssignOne => {
                if let Some(&best) = self.order.first() {
                    decision.assign(view.task_id(best));
                }
            }
            ListMode::RankAll => decision.extend(self.order.iter().map(|&i| view.task_id(i))),
        }
    }
}

/// One-shot convenience wrapper over [`ScoreRanker::decide`] (allocates a scratch; prefer
/// a policy-owned [`ScoreRanker`] in decision loops).
pub fn decide_from_scores(
    view: &ArrivalView<'_>,
    scores: &[f32],
    mode: ListMode,
    decision: &mut Decision,
) {
    ScoreRanker::new().decide(view, scores, mode, decision);
}

/// Concatenates the worker feature with a task feature (and, for the requester benefit, the
/// worker quality and current task quality) — the same observable information the DQN state
/// rows carry.
pub fn pair_feature(view: &ArrivalView<'_>, task: &TaskRef<'_>, benefit: Benefit) -> Vec<f32> {
    let mut f = Vec::with_capacity(view.worker_feature.len() + task.feature.len() + 2);
    f.extend_from_slice(view.worker_feature);
    f.extend_from_slice(task.feature);
    if benefit == Benefit::Requester {
        f.push(view.worker_quality);
        f.push(task.quality);
    }
    f
}

/// Expected Dixit–Stiglitz quality gain (p = 2) if this worker completed this task now:
/// `sqrt(q_t² + q_w²) − q_t`. Used by the greedy baselines to convert a completion score
/// into an expected requester benefit.
pub fn expected_quality_gain(view: &ArrivalView<'_>, task: &TaskRef<'_>) -> f32 {
    let q_t = task.quality.max(0.0);
    let q_w = view.worker_quality.max(0.0);
    (q_t * q_t + q_w * q_w).sqrt() - q_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{ArrivalContext, TaskId, TaskSnapshot, WorkerId};

    pub(crate) fn snapshot(id: u32, quality: f32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![id as f32, 1.0],
            quality,
            award: 5.0,
            category: 0,
            domain: 0,
            deadline: 100,
            completions: 0,
        }
    }

    pub(crate) fn context(n: u32) -> ArrivalContext {
        ArrivalContext {
            time: 10,
            worker_id: WorkerId(3),
            worker_feature: vec![0.2, 0.8],
            worker_quality: 0.6,
            is_new_worker: false,
            available: (0..n).map(|i| snapshot(i, 0.1 * i as f32)).collect(),
        }
    }

    #[test]
    fn decide_from_scores_orders_descending() {
        let ctx = context(3);
        let mut decision = Decision::new();
        decide_from_scores(
            &ctx.view(),
            &[0.1, 0.9, 0.5],
            ListMode::RankAll,
            &mut decision,
        );
        assert_eq!(decision.shown(), &[TaskId(1), TaskId(2), TaskId(0)]);
        assert!(!decision.is_assignment());
        decide_from_scores(
            &ctx.view(),
            &[0.1, 0.9, 0.5],
            ListMode::AssignOne,
            &mut decision,
        );
        assert_eq!(decision.shown(), &[TaskId(1)]);
        assert!(decision.is_assignment());
    }

    #[test]
    fn ties_break_by_pool_order() {
        let ctx = context(3);
        let mut decision = Decision::new();
        decide_from_scores(
            &ctx.view(),
            &[0.5, 0.5, 0.5],
            ListMode::RankAll,
            &mut decision,
        );
        assert_eq!(decision.shown(), &[TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn empty_pool_gives_empty_decision() {
        let ctx = context(0);
        let mut decision = Decision::new();
        decision.push(TaskId(9)); // stale content must be cleared
        decide_from_scores(&ctx.view(), &[], ListMode::AssignOne, &mut decision);
        assert!(decision.is_empty());
    }

    #[test]
    fn pair_feature_layout() {
        let ctx = context(1);
        let view = ctx.view();
        let worker_only = pair_feature(&view, &view.task(0), Benefit::Worker);
        assert_eq!(worker_only, vec![0.2, 0.8, 0.0, 1.0]);
        let requester = pair_feature(&view, &view.task(0), Benefit::Requester);
        assert_eq!(requester, vec![0.2, 0.8, 0.0, 1.0, 0.6, 0.0]);
    }

    #[test]
    fn expected_gain_diminishes_with_task_quality() {
        let ctx = context(2);
        let view = ctx.view();
        let fresh_snap = snapshot(0, 0.0);
        let mature_snap = snapshot(1, 2.0);
        let fresh = expected_quality_gain(&view, &fresh_snap.as_ref());
        let mature = expected_quality_gain(&view, &mature_snap.as_ref());
        assert!((fresh - 0.6).abs() < 1e-6);
        assert!(mature < fresh);
        assert!(mature > 0.0);
    }
}
