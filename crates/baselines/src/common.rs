//! Shared plumbing for the baseline policies: objective selection, action construction from
//! per-task scores, feature assembly and expected quality gain.

use crowd_sim::{Action, ArrivalContext, TaskSnapshot};

/// Which benefit a baseline optimises (the paper evaluates each baseline once per benefit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benefit {
    /// Maximise the worker completion rate (Fig. 7).
    Worker,
    /// Maximise the requesters' task quality gain (Fig. 8).
    Requester,
}

/// Whether the policy assigns one task or shows the full ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListMode {
    /// Assign exactly one task per arrival.
    AssignOne,
    /// Rank every available task.
    RankAll,
}

/// Builds an [`Action`] from per-task scores (higher = better), respecting the list mode.
/// Ties are broken by the original pool order, which keeps results deterministic.
pub fn action_from_scores(ctx: &ArrivalContext, scores: &[f32], mode: ListMode) -> Action {
    debug_assert_eq!(scores.len(), ctx.available.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    match mode {
        ListMode::AssignOne => match order.first() {
            Some(&best) => Action::Assign(ctx.available[best].id),
            None => Action::Rank(Vec::new()),
        },
        ListMode::RankAll => Action::Rank(order.iter().map(|&i| ctx.available[i].id).collect()),
    }
}

/// Concatenates the worker feature with a task feature (and, for the requester benefit, the
/// worker quality and current task quality) — the same observable information the DQN state
/// rows carry.
pub fn pair_feature(ctx: &ArrivalContext, task: &TaskSnapshot, benefit: Benefit) -> Vec<f32> {
    let mut f = Vec::with_capacity(ctx.worker_feature.len() + task.feature.len() + 2);
    f.extend_from_slice(&ctx.worker_feature);
    f.extend_from_slice(&task.feature);
    if benefit == Benefit::Requester {
        f.push(ctx.worker_quality);
        f.push(task.quality);
    }
    f
}

/// Expected Dixit–Stiglitz quality gain (p = 2) if this worker completed this task now:
/// `sqrt(q_t² + q_w²) − q_t`. Used by the greedy baselines to convert a completion score
/// into an expected requester benefit.
pub fn expected_quality_gain(ctx: &ArrivalContext, task: &TaskSnapshot) -> f32 {
    let q_t = task.quality.max(0.0);
    let q_w = ctx.worker_quality.max(0.0);
    (q_t * q_t + q_w * q_w).sqrt() - q_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{TaskId, WorkerId};

    pub(crate) fn snapshot(id: u32, quality: f32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![id as f32, 1.0],
            quality,
            award: 5.0,
            category: 0,
            domain: 0,
            deadline: 100,
            completions: 0,
        }
    }

    pub(crate) fn context(n: u32) -> ArrivalContext {
        ArrivalContext {
            time: 10,
            worker_id: WorkerId(3),
            worker_feature: vec![0.2, 0.8],
            worker_quality: 0.6,
            is_new_worker: false,
            available: (0..n).map(|i| snapshot(i, 0.1 * i as f32)).collect(),
        }
    }

    #[test]
    fn action_from_scores_orders_descending() {
        let ctx = context(3);
        let action = action_from_scores(&ctx, &[0.1, 0.9, 0.5], ListMode::RankAll);
        assert_eq!(
            action,
            Action::Rank(vec![TaskId(1), TaskId(2), TaskId(0)])
        );
        let single = action_from_scores(&ctx, &[0.1, 0.9, 0.5], ListMode::AssignOne);
        assert_eq!(single, Action::Assign(TaskId(1)));
    }

    #[test]
    fn ties_break_by_pool_order() {
        let ctx = context(3);
        let action = action_from_scores(&ctx, &[0.5, 0.5, 0.5], ListMode::RankAll);
        assert_eq!(
            action,
            Action::Rank(vec![TaskId(0), TaskId(1), TaskId(2)])
        );
    }

    #[test]
    fn empty_pool_gives_empty_action() {
        let ctx = context(0);
        assert_eq!(
            action_from_scores(&ctx, &[], ListMode::AssignOne),
            Action::Rank(Vec::new())
        );
    }

    #[test]
    fn pair_feature_layout() {
        let ctx = context(1);
        let worker_only = pair_feature(&ctx, &ctx.available[0], Benefit::Worker);
        assert_eq!(worker_only, vec![0.2, 0.8, 0.0, 1.0]);
        let requester = pair_feature(&ctx, &ctx.available[0], Benefit::Requester);
        assert_eq!(requester, vec![0.2, 0.8, 0.0, 1.0, 0.6, 0.0]);
    }

    #[test]
    fn expected_gain_diminishes_with_task_quality() {
        let ctx = context(2);
        let fresh = expected_quality_gain(&ctx, &snapshot(0, 0.0));
        let mature = expected_quality_gain(&ctx, &snapshot(1, 2.0));
        assert!((fresh - 0.6).abs() < 1e-6);
        assert!(mature < fresh);
        assert!(mature > 0.0);
    }
}
