//! Taskrec baseline (Yuen, King & Leung 2015 — the paper's \[33\]): a unified probabilistic
//! matrix factorization over the worker–task, worker–category and task–category relations.
//!
//! Latent factors `U_w`, `V_t`, `C_c` are fit by SGD on the observed completions (implicit
//! positive feedback), the skipped-but-shown tasks (implicit negatives), the worker–category
//! completion counts and the task–category memberships. Prediction of the completion
//! probability of task `t` for worker `w` is `U_w · V_t`, falling back to `U_w · C_{cat(t)}`
//! for tasks with no interaction history (the usual cold-start path, important here because
//! tasks churn constantly). Taskrec only models the worker benefit, exactly as in the paper
//! (it is absent from the requester-benefit comparison).

use crate::common::{ListMode, ScoreRanker};
use crowd_sim::{
    ArrivalContext, ArrivalView, Decision, FeedbackView, Policy, PolicyFeedback, TaskId, WorkerId,
};
use crowd_tensor::ops::dot_slices;
use crowd_tensor::Rng;
use std::collections::HashMap;

/// Maximum retained interaction triples (oldest dropped) so daily retraining stays bounded.
const MAX_INTERACTIONS: usize = 40_000;

/// The PMF-based task recommendation baseline.
#[derive(Debug)]
pub struct Taskrec {
    mode: ListMode,
    factors: usize,
    learning_rate: f32,
    regularization: f32,
    epochs: usize,
    rng: Rng,
    worker_index: HashMap<WorkerId, usize>,
    task_index: HashMap<TaskId, usize>,
    task_category: Vec<u16>,
    worker_factors: Vec<Vec<f32>>,
    task_factors: Vec<Vec<f32>>,
    category_factors: HashMap<u16, Vec<f32>>,
    /// (worker, task, category, label) interactions observed so far.
    interactions: Vec<(usize, usize, u16, f32)>,
    trained: bool,
    ranker: ScoreRanker,
}

impl Taskrec {
    /// Creates the baseline with the given latent dimensionality.
    pub fn new(mode: ListMode, factors: usize, seed: u64) -> Self {
        Taskrec {
            mode,
            factors: factors.max(2),
            learning_rate: 0.05,
            regularization: 0.02,
            epochs: 4,
            rng: Rng::seed_from(seed),
            worker_index: HashMap::new(),
            task_index: HashMap::new(),
            task_category: Vec::new(),
            worker_factors: Vec::new(),
            task_factors: Vec::new(),
            category_factors: HashMap::new(),
            interactions: Vec::new(),
            trained: false,
            ranker: ScoreRanker::new(),
        }
    }

    /// Number of stored interactions.
    pub fn n_interactions(&self) -> usize {
        self.interactions.len()
    }

    /// Whether at least one retraining pass has run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    fn random_factors(factors: usize, rng: &mut Rng) -> Vec<f32> {
        (0..factors).map(|_| rng.normal(0.0, 0.1)).collect()
    }

    fn worker_slot(&mut self, worker: WorkerId) -> usize {
        if let Some(&idx) = self.worker_index.get(&worker) {
            return idx;
        }
        let idx = self.worker_factors.len();
        self.worker_factors
            .push(Self::random_factors(self.factors, &mut self.rng));
        self.worker_index.insert(worker, idx);
        idx
    }

    fn task_slot(&mut self, task: TaskId, category: u16) -> usize {
        if let Some(&idx) = self.task_index.get(&task) {
            return idx;
        }
        let idx = self.task_factors.len();
        self.task_factors
            .push(Self::random_factors(self.factors, &mut self.rng));
        self.task_category.push(category);
        self.task_index.insert(task, idx);
        idx
    }

    fn sgd_pair(u: &mut [f32], v: &mut [f32], label: f32, lr: f32, reg: f32) {
        let pred = dot_slices(u, v);
        let err = label - pred;
        for i in 0..u.len() {
            let (ui, vi) = (u[i], v[i]);
            u[i] += lr * (err * vi - reg * ui);
            v[i] += lr * (err * ui - reg * vi);
        }
    }

    fn retrain(&mut self) {
        if self.interactions.is_empty() {
            return;
        }
        let lr = self.learning_rate;
        let reg = self.regularization;
        let mut order: Vec<usize> = (0..self.interactions.len()).collect();
        for _ in 0..self.epochs {
            self.rng.shuffle(&mut order);
            for &i in &order {
                let (w, t, category, label) = self.interactions[i];
                // Worker–task relation.
                {
                    let (workers, tasks) = (&mut self.worker_factors, &mut self.task_factors);
                    Self::sgd_pair(&mut workers[w], &mut tasks[t], label, lr, reg);
                }
                // Worker–category relation (a completion links the worker to the category).
                {
                    let factors = self.factors;
                    let rngref = &mut self.rng;
                    let cat = self
                        .category_factors
                        .entry(category)
                        .or_insert_with(|| Self::random_factors(factors, rngref));
                    Self::sgd_pair(&mut self.worker_factors[w], cat, label, lr, reg);
                }
                // Task–category membership is always a positive relation.
                {
                    let factors = self.factors;
                    let rngref = &mut self.rng;
                    let cat = self
                        .category_factors
                        .entry(category)
                        .or_insert_with(|| Self::random_factors(factors, rngref));
                    Self::sgd_pair(&mut self.task_factors[t], cat, 1.0, lr, reg);
                }
            }
        }
        self.trained = true;
    }

    /// Predicted completion propensity of a task for a worker.
    fn score(&self, worker: WorkerId, task: TaskId, category: u16) -> f32 {
        let Some(&w) = self.worker_index.get(&worker) else {
            return 0.0;
        };
        let worker_factors = &self.worker_factors[w];
        if let Some(&t) = self.task_index.get(&task) {
            return dot_slices(worker_factors, &self.task_factors[t]);
        }
        // Cold-start task: fall back to the worker–category affinity.
        match self.category_factors.get(&category) {
            Some(cat) => dot_slices(worker_factors, cat),
            None => 0.0,
        }
    }
}

impl Policy for Taskrec {
    fn name(&self) -> &str {
        "Taskrec"
    }

    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        let scores: Vec<f32> = view
            .tasks()
            .map(|t| self.score(view.worker_id, t.id, t.category))
            .collect();
        self.ranker.decide(view, &scores, self.mode, decision);
    }

    fn observe(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) {
        let negatives_end = match feedback.completed {
            Some((_, pos)) => pos,
            None => feedback.shown.len().min(8),
        };
        let w = self.worker_slot(view.worker_id);
        let record = |this: &mut Self, task_id: TaskId, label: f32| {
            if let Some(pos) = view.position_of(task_id) {
                let category = view.task(pos).category;
                let t = this.task_slot(task_id, category);
                if this.interactions.len() >= MAX_INTERACTIONS {
                    this.interactions.remove(0);
                }
                this.interactions.push((w, t, category, label));
            }
        };
        if let Some((task, _)) = feedback.completed {
            record(self, task, 1.0);
        }
        for &task in feedback.shown.iter().take(negatives_end) {
            record(self, task, 0.0);
        }
    }

    fn end_of_day(&mut self, _day: usize) {
        self.retrain();
    }

    fn warm_start(&mut self, history: &[(ArrivalContext, PolicyFeedback)]) {
        for (ctx, feedback) in history {
            self.observe(&ctx.view(), &feedback.view());
        }
        self.retrain();
    }

    /// Taskrec's dynamic state is everything `retrain` and `score` read: the RNG stream
    /// (factor init and epoch shuffles), the id→slot index maps, the latent factor
    /// tables and the retained interaction window. Hash maps are serialised **sorted by
    /// key** so the byte stream is canonical (runtime determinism never iterates them;
    /// retraining walks the `interactions` vec). The hyperparameters (mode, factor
    /// count, learning rate, regularisation, epochs) are configuration and are *not*
    /// saved — restore into a policy built with the same configuration, like the other
    /// baselines.
    fn checkpoint_state(&self, w: &mut crowd_ckpt::StateWriter) -> crowd_ckpt::Result<()> {
        crowd_ckpt::SaveState::save_state(&self.rng, w);
        let mut workers: Vec<(u32, usize)> =
            self.worker_index.iter().map(|(k, &v)| (k.0, v)).collect();
        workers.sort_unstable();
        w.put_usize(workers.len());
        for (id, slot) in workers {
            w.put_u32(id);
            w.put_usize(slot);
        }
        let mut tasks: Vec<(u32, usize)> = self.task_index.iter().map(|(k, &v)| (k.0, v)).collect();
        tasks.sort_unstable();
        w.put_usize(tasks.len());
        for (id, slot) in tasks {
            w.put_u32(id);
            w.put_usize(slot);
        }
        w.put_usize(self.task_category.len());
        for &category in &self.task_category {
            w.put_u16(category);
        }
        w.put_usize(self.worker_factors.len());
        for factors in &self.worker_factors {
            w.put_f32_slice(factors);
        }
        w.put_usize(self.task_factors.len());
        for factors in &self.task_factors {
            w.put_f32_slice(factors);
        }
        let mut categories: Vec<(u16, &Vec<f32>)> =
            self.category_factors.iter().map(|(&c, f)| (c, f)).collect();
        categories.sort_unstable_by_key(|&(c, _)| c);
        w.put_usize(categories.len());
        for (category, factors) in categories {
            w.put_u16(category);
            w.put_f32_slice(factors);
        }
        w.put_usize(self.interactions.len());
        for &(worker, task, category, label) in &self.interactions {
            w.put_usize(worker);
            w.put_usize(task);
            w.put_u16(category);
            w.put_f32(label);
        }
        w.put_bool(self.trained);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let corrupt = |detail: String| crowd_ckpt::CkptError::Corrupt {
            what: "Taskrec state",
            detail,
        };
        crowd_ckpt::LoadState::load_state(&mut self.rng, r)?;
        let n_workers = r.take_len("taskrec worker index", 12)?;
        let mut worker_index = HashMap::with_capacity(n_workers);
        for _ in 0..n_workers {
            let id = WorkerId(r.take_u32()?);
            worker_index.insert(id, r.take_usize()?);
        }
        let n_tasks = r.take_len("taskrec task index", 12)?;
        let mut task_index = HashMap::with_capacity(n_tasks);
        for _ in 0..n_tasks {
            let id = TaskId(r.take_u32()?);
            task_index.insert(id, r.take_usize()?);
        }
        let n_categories = r.take_len("taskrec task categories", 2)?;
        let mut task_category = Vec::with_capacity(n_categories);
        for _ in 0..n_categories {
            task_category.push(r.take_u16()?);
        }
        let take_factor_table = |r: &mut crowd_ckpt::StateReader<'_>,
                                 what: &'static str,
                                 dim: usize|
         -> crowd_ckpt::Result<Vec<Vec<f32>>> {
            let n = r.take_len(what, 8)?;
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                let factors = r.take_f32_vec()?;
                if factors.len() != dim {
                    return Err(corrupt(format!(
                        "{what}: a factor row has {} entries, expected {dim}",
                        factors.len()
                    )));
                }
                table.push(factors);
            }
            Ok(table)
        };
        let worker_factors = take_factor_table(r, "taskrec worker factors", self.factors)?;
        let task_factors = take_factor_table(r, "taskrec task factors", self.factors)?;
        let n_cat_factors = r.take_len("taskrec category factors", 6)?;
        let mut category_factors = HashMap::with_capacity(n_cat_factors);
        for _ in 0..n_cat_factors {
            let category = r.take_u16()?;
            let factors = r.take_f32_vec()?;
            if factors.len() != self.factors {
                return Err(corrupt(format!(
                    "category {category} has {} factor entries, expected {}",
                    factors.len(),
                    self.factors
                )));
            }
            category_factors.insert(category, factors);
        }
        if worker_index.len() != worker_factors.len()
            || task_index.len() != task_factors.len()
            || task_category.len() != task_factors.len()
        {
            return Err(corrupt(format!(
                "index/table sizes disagree: {} workers vs {} factor rows, {} tasks vs {} factor rows vs {} categories",
                worker_index.len(),
                worker_factors.len(),
                task_index.len(),
                task_factors.len(),
                task_category.len()
            )));
        }
        let n_interactions = r.take_len("taskrec interactions", 22)?;
        let mut interactions = Vec::with_capacity(n_interactions);
        for _ in 0..n_interactions {
            let worker = r.take_usize()?;
            let task = r.take_usize()?;
            let category = r.take_u16()?;
            let label = r.take_f32()?;
            if worker >= worker_factors.len() || task >= task_factors.len() {
                return Err(corrupt(format!(
                    "interaction refers to worker {worker}/task {task} outside the factor tables"
                )));
            }
            interactions.push((worker, task, category, label));
        }
        self.trained = r.take_bool()?;
        self.worker_index = worker_index;
        self.task_index = task_index;
        self.task_category = task_category;
        self.worker_factors = worker_factors;
        self.task_factors = task_factors;
        self.category_factors = category_factors;
        self.interactions = interactions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::TaskSnapshot;

    fn snapshot(id: u32, category: u16) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![0.0],
            quality: 0.0,
            award: 1.0,
            category,
            domain: 0,
            deadline: 100,
            completions: 0,
        }
    }

    fn context(worker: u32, tasks: &[(u32, u16)]) -> ArrivalContext {
        ArrivalContext {
            time: 0,
            worker_id: WorkerId(worker),
            worker_feature: vec![0.0],
            worker_quality: 0.5,
            is_new_worker: false,
            available: tasks.iter().map(|&(id, c)| snapshot(id, c)).collect(),
        }
    }

    fn feedback(ctx: &ArrivalContext, completed: Option<(u32, usize)>) -> PolicyFeedback {
        PolicyFeedback {
            time: 0,
            worker_id: ctx.worker_id,
            worker_quality: 0.5,
            shown: ctx.available.iter().map(|t| t.id).collect(),
            completed: completed.map(|(id, pos)| (TaskId(id), pos)),
            quality_gain: 0.0,
            worker_feature_before: vec![],
            worker_feature_after: vec![],
        }
    }

    #[test]
    fn unknown_worker_scores_zero() {
        let mut p = Taskrec::new(ListMode::RankAll, 4, 0);
        let ctx = context(9, &[(0, 0), (1, 1)]);
        let mut decision = Decision::new();
        p.act(&ctx.view(), &mut decision);
        assert_eq!(decision.len(), 2);
        assert!(!p.is_trained());
    }

    #[test]
    fn learns_worker_category_preference_and_generalises_to_new_tasks() {
        let mut p = Taskrec::new(ListMode::AssignOne, 6, 1);
        // Worker 0 always completes category-0 tasks shown together with category-1 tasks.
        for i in 0..80u32 {
            let ctx = context(0, &[(2 * i, 0), (2 * i + 1, 1)]);
            let completed_first = i % 2 == 0;
            let fb = if completed_first {
                feedback(&ctx, Some((2 * i, 0)))
            } else {
                // Sometimes the liked task is ranked second so the disliked one becomes an
                // explicit negative.
                feedback(&ctx, Some((2 * i, 1)))
            };
            p.observe(&ctx.view(), &fb.view());
        }
        p.end_of_day(0);
        assert!(p.is_trained());
        assert!(p.n_interactions() > 80);
        // Brand-new tasks (never seen ids) from the two categories: category 0 must win via
        // the category factors.
        let ctx = context(0, &[(9_000, 1), (9_001, 0)]);
        let mut decision = Decision::new();
        p.act(&ctx.view(), &mut decision);
        assert!(decision.is_assignment());
        assert_eq!(decision.shown(), &[TaskId(9_001)]);
    }

    #[test]
    fn interaction_buffer_is_bounded() {
        let mut p = Taskrec::new(ListMode::RankAll, 2, 2);
        let ctx = context(0, &[(0, 0), (1, 1)]);
        let fb = feedback(&ctx, Some((0, 1)));
        for _ in 0..(MAX_INTERACTIONS / 2 + 5) {
            p.observe(&ctx.view(), &fb.view());
        }
        assert!(p.n_interactions() <= MAX_INTERACTIONS);
    }

    #[test]
    fn checkpoint_roundtrip_continues_bit_identically() {
        let mut trained = Taskrec::new(ListMode::AssignOne, 4, 5);
        for i in 0..40u32 {
            let ctx = context(i % 3, &[(2 * i, 0), (2 * i + 1, 1)]);
            trained.observe(&ctx.view(), &feedback(&ctx, Some((2 * i, 1))).view());
        }
        trained.end_of_day(0);

        let mut w = crowd_ckpt::StateWriter::new();
        trained.checkpoint_state(&mut w).unwrap();
        let bytes = w.into_bytes();

        let mut restored = Taskrec::new(ListMode::AssignOne, 4, 9_999);
        let mut r = crowd_ckpt::StateReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish("Taskrec state").unwrap();
        assert!(restored.is_trained());
        assert_eq!(restored.n_interactions(), trained.n_interactions());

        // Both copies now continue through identical feedback and a retrain (which
        // draws from the restored RNG stream for shuffles and any new factor rows) and
        // must stay bit-identical — proven by comparing their re-saved byte streams.
        for policy in [&mut trained, &mut restored] {
            for i in 100..120u32 {
                let ctx = context(i % 4, &[(2 * i, 0), (2 * i + 1, 1)]);
                policy.observe(&ctx.view(), &feedback(&ctx, Some((2 * i + 1, 0))).view());
            }
            policy.end_of_day(1);
        }
        let ctx = context(0, &[(7_000, 0), (7_001, 1)]);
        let (mut d1, mut d2) = (Decision::new(), Decision::new());
        trained.act(&ctx.view(), &mut d1);
        restored.act(&ctx.view(), &mut d2);
        assert_eq!(d1.shown(), d2.shown());
        let (mut wa, mut wb) = (
            crowd_ckpt::StateWriter::new(),
            crowd_ckpt::StateWriter::new(),
        );
        trained.checkpoint_state(&mut wa).unwrap();
        restored.checkpoint_state(&mut wb).unwrap();
        assert_eq!(
            wa.into_bytes(),
            wb.into_bytes(),
            "resumed Taskrec diverged from the uninterrupted one"
        );
    }

    #[test]
    fn checkpoint_of_fresh_policy_roundtrips() {
        let fresh = Taskrec::new(ListMode::RankAll, 4, 6);
        let mut w = crowd_ckpt::StateWriter::new();
        fresh.checkpoint_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = Taskrec::new(ListMode::RankAll, 4, 6);
        let mut r = crowd_ckpt::StateReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        r.finish("Taskrec state").unwrap();
        assert!(!restored.is_trained());
        assert_eq!(restored.n_interactions(), 0);
    }

    #[test]
    fn restore_rejects_a_mismatched_factor_dimension() {
        // Saved with 6 latent factors, restored into a 4-factor policy: typed error.
        let mut trained = Taskrec::new(ListMode::RankAll, 6, 7);
        let ctx = context(0, &[(0, 0), (1, 1)]);
        trained.observe(&ctx.view(), &feedback(&ctx, Some((0, 1))).view());
        trained.end_of_day(0);
        let mut w = crowd_ckpt::StateWriter::new();
        trained.checkpoint_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut narrow = Taskrec::new(ListMode::RankAll, 4, 7);
        assert!(matches!(
            narrow.restore_state(&mut crowd_ckpt::StateReader::new(&bytes)),
            Err(crowd_ckpt::CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn warm_start_produces_trained_model() {
        let ctx = context(0, &[(0, 0), (1, 1)]);
        let history: Vec<_> = (0..30)
            .map(|_| (ctx.clone(), feedback(&ctx, Some((0, 0)))))
            .collect();
        let mut p = Taskrec::new(ListMode::RankAll, 4, 3);
        p.warm_start(&history);
        assert!(p.is_trained());
    }
}
