//! Online worker-arrival statistics (paper Sec. IV-D and V-D).
//!
//! Maintains, from the observed arrival stream only:
//!
//! * `φ(g)` — histogram of the gap between two consecutive arrivals of the *same* worker,
//!   supported on `[1, 10080]` minutes (one week), used by the MDP(w) future-state predictor;
//! * `ϕ(g)` — histogram of the gap between two consecutive arrivals of *any* workers,
//!   supported on `[0, 60]` minutes, used by the MDP(r) future-state predictor;
//! * the rate of new (never seen) workers `p_new` and the mean feature of known workers,
//!   which together define the next-worker distribution of Sec. V-D.
//!
//! Histograms are seeded from the initialisation month and updated after every arrival, as
//! the paper requires for real-time adaptation.
//!
//! Per-worker state lives in `BTreeMap`s keyed by [`WorkerId`] — **deliberately not**
//! `HashMap`s: the mean-feature and next-worker-mixture computations sum `f32`s over
//! these maps, and `HashMap`'s per-instance randomised iteration order would make those
//! sums differ between two otherwise identical runs at the last-ulp level. Ordered
//! iteration makes every statistic a pure function of the arrival sequence, which the
//! workspace's replay-equivalence suites (and the `threads=1 ≡ threads=k` contract of
//! `tests/parallel_equivalence.rs`) depend on.

use std::collections::BTreeMap;

use crowd_sim::WorkerId;

/// Bucketed histogram over minute gaps with a fixed support.
#[derive(Debug, Clone)]
struct GapHistogram {
    bin_minutes: u64,
    max_minutes: u64,
    counts: Vec<f64>,
    total: f64,
}

impl GapHistogram {
    fn new(bin_minutes: u64, max_minutes: u64) -> Self {
        let bins = (max_minutes / bin_minutes.max(1)) as usize + 1;
        GapHistogram {
            bin_minutes: bin_minutes.max(1),
            max_minutes,
            counts: vec![0.0; bins],
            total: 0.0,
        }
    }

    fn record(&mut self, gap: u64) {
        if gap > self.max_minutes {
            return;
        }
        let bin = (gap / self.bin_minutes) as usize;
        self.counts[bin] += 1.0;
        self.total += 1.0;
    }

    /// Probability mass of gaps in `[from, to)` minutes (normalised over recorded gaps).
    fn mass_between(&self, from: u64, to: u64) -> f64 {
        if self.total <= 0.0 || from >= to {
            return 0.0;
        }
        let from_bin = (from.min(self.max_minutes) / self.bin_minutes) as usize;
        let to_bin = ((to.min(self.max_minutes + 1)).saturating_sub(1) / self.bin_minutes) as usize;
        let sum: f64 = self.counts[from_bin..=to_bin.min(self.counts.len() - 1)]
            .iter()
            .sum();
        sum / self.total
    }

    fn mean(&self) -> f64 {
        if self.total <= 0.0 {
            return (self.max_minutes / 2) as f64;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c * (i as f64 * self.bin_minutes as f64 + self.bin_minutes as f64 / 2.0))
            .sum();
        weighted / self.total
    }
}

/// Online arrival statistics for both future-state predictors.
#[derive(Debug, Clone)]
pub struct ArrivalStats {
    /// φ(g): same-worker revisit gaps.
    same_worker: GapHistogram,
    /// ϕ(g): consecutive arrival gaps across all workers.
    consecutive: GapHistogram,
    last_arrival_per_worker: BTreeMap<WorkerId, u64>,
    last_known_feature: BTreeMap<WorkerId, Vec<f32>>,
    last_global_arrival: Option<u64>,
    arrivals_seen: u64,
    new_workers_seen: u64,
    feature_dim: usize,
    mean_feature: Vec<f32>,
}

impl ArrivalStats {
    /// Creates empty statistics. `same_worker_horizon` / `consecutive_horizon` are the φ/ϕ
    /// supports in minutes (paper: 10080 and 60).
    pub fn new(feature_dim: usize, same_worker_horizon: u64, consecutive_horizon: u64) -> Self {
        ArrivalStats {
            same_worker: GapHistogram::new(30, same_worker_horizon),
            consecutive: GapHistogram::new(1, consecutive_horizon),
            last_arrival_per_worker: BTreeMap::new(),
            last_known_feature: BTreeMap::new(),
            last_global_arrival: None,
            arrivals_seen: 0,
            new_workers_seen: 0,
            feature_dim,
            mean_feature: vec![0.0; feature_dim],
        }
    }

    /// Number of arrivals recorded.
    pub fn arrivals_seen(&self) -> u64 {
        self.arrivals_seen
    }

    /// Estimated probability that the next arrival is a brand-new worker (Sec. V-D's
    /// `p_new`).
    pub fn new_worker_rate(&self) -> f32 {
        if self.arrivals_seen == 0 {
            return 0.5;
        }
        (self.new_workers_seen as f32 / self.arrivals_seen as f32).clamp(0.0, 1.0)
    }

    /// Mean observable feature of known workers (the stand-in feature of a new worker).
    pub fn mean_worker_feature(&self) -> &[f32] {
        &self.mean_feature
    }

    /// Number of distinct workers observed.
    pub fn known_workers(&self) -> usize {
        self.last_arrival_per_worker.len()
    }

    /// Records one arrival with the worker's current observable feature.
    pub fn record_arrival(&mut self, worker: WorkerId, time: u64, feature: &[f32]) {
        self.arrivals_seen += 1;
        if let Some(prev) = self.last_global_arrival {
            self.consecutive.record(time.saturating_sub(prev));
        }
        self.last_global_arrival = Some(time);

        match self.last_arrival_per_worker.insert(worker, time) {
            Some(prev) => {
                self.same_worker.record(time.saturating_sub(prev).max(1));
            }
            None => {
                self.new_workers_seen += 1;
            }
        }
        self.last_known_feature.insert(worker, feature.to_vec());
        self.recompute_mean_feature();
    }

    fn recompute_mean_feature(&mut self) {
        if self.last_known_feature.is_empty() {
            return;
        }
        let mut mean = vec![0.0f32; self.feature_dim];
        for f in self.last_known_feature.values() {
            for (m, &v) in mean.iter_mut().zip(f.iter()) {
                *m += v;
            }
        }
        let n = self.last_known_feature.len() as f32;
        for m in &mut mean {
            *m /= n;
        }
        self.mean_feature = mean;
    }

    /// Probability mass of the same worker returning within `[from, to)` minutes of their
    /// last arrival — i.e. `Σ_{g ∈ [from, to)} φ(g)`.
    pub fn same_worker_mass_between(&self, from: u64, to: u64) -> f64 {
        if self.same_worker.total <= 0.0 {
            // No data yet: fall back to a uniform prior over the support.
            let span = self.same_worker.max_minutes.max(1) as f64;
            return ((to.min(self.same_worker.max_minutes) as f64
                - from.min(self.same_worker.max_minutes) as f64)
                / span)
                .max(0.0);
        }
        self.same_worker.mass_between(from, to)
    }

    /// Probability mass of the next (any-worker) arrival happening within `[from, to)`
    /// minutes — i.e. `Σ_{g ∈ [from, to)} ϕ(g)`.
    pub fn consecutive_mass_between(&self, from: u64, to: u64) -> f64 {
        if self.consecutive.total <= 0.0 {
            let span = self.consecutive.max_minutes.max(1) as f64;
            return ((to.min(self.consecutive.max_minutes) as f64
                - from.min(self.consecutive.max_minutes) as f64)
                / span)
                .max(0.0);
        }
        self.consecutive.mass_between(from, to)
    }

    /// Mean same-worker revisit gap in minutes.
    pub fn mean_same_worker_gap(&self) -> f64 {
        self.same_worker.mean()
    }

    /// Mean consecutive-arrival gap in minutes.
    pub fn mean_consecutive_gap(&self) -> f64 {
        self.consecutive.mean()
    }

    /// Expected feature of the next arriving worker at time `next_time` (Sec. V-D):
    /// a `p_new`-weighted blend of the mean old-worker feature and the φ-weighted mixture of
    /// known workers' features, where each known worker `w` is weighted by
    /// `φ(next_time − last_arrival_w)`.
    pub fn expected_next_worker_feature(&self, next_time: u64) -> Vec<f32> {
        if self.last_known_feature.is_empty() {
            return vec![0.0; self.feature_dim];
        }
        let mut weights = Vec::with_capacity(self.last_known_feature.len());
        let mut features = Vec::with_capacity(self.last_known_feature.len());
        for (worker, feature) in &self.last_known_feature {
            let last = self
                .last_arrival_per_worker
                .get(worker)
                .copied()
                .unwrap_or(0);
            let gap = next_time.saturating_sub(last).max(1);
            // φ(g) for this worker's gap bucket; workers overdue beyond the support get a
            // tiny weight instead of zero so the mixture stays well-defined.
            let w = self
                .same_worker_mass_between(gap, gap + self.same_worker.bin_minutes)
                .max(1e-6);
            weights.push(w as f32);
            features.push(feature);
        }
        let total: f32 = weights.iter().sum();
        let mut mixture = vec![0.0f32; self.feature_dim];
        for (w, f) in weights.iter().zip(features.iter()) {
            for (m, &v) in mixture.iter_mut().zip(f.iter()) {
                *m += (w / total) * v;
            }
        }
        let p_new = self.new_worker_rate();
        mixture
            .iter()
            .zip(self.mean_feature.iter())
            .map(|(&old, &mean)| (1.0 - p_new) * old + p_new * mean)
            .collect()
    }
}

impl GapHistogram {
    fn save_ckpt(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_u64(self.bin_minutes);
        w.put_u64(self.max_minutes);
        w.put_f64_slice(&self.counts);
        w.put_f64(self.total);
    }

    fn load_ckpt(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let bin_minutes = r.take_u64()?;
        let max_minutes = r.take_u64()?;
        let counts = r.take_f64_vec()?;
        if bin_minutes != self.bin_minutes
            || max_minutes != self.max_minutes
            || counts.len() != self.counts.len()
        {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "gap histogram",
                detail: format!(
                    "snapshot support {bin_minutes}x{max_minutes} ({} bins) does not match the configured {}x{} ({} bins)",
                    counts.len(),
                    self.bin_minutes,
                    self.max_minutes,
                    self.counts.len()
                ),
            });
        }
        self.counts = counts;
        self.total = r.take_f64()?;
        Ok(())
    }
}

/// Checkpoint format: the φ and ϕ histograms (bin width, support, counts, total — all
/// counts as f64 raw bits), the per-worker last-arrival and last-feature `BTreeMap`s
/// (entry count + `(worker id, value)` pairs in ascending key order — the canonical
/// order the maps themselves iterate in, so a save→load→save is byte-stable), the last
/// global arrival, the arrival/new-worker counters, and the running mean feature.
///
/// The mean feature is saved rather than recomputed: it is an f32 sum over map
/// iteration order, and storing the exact bits sidesteps any recomputation concern.
impl crowd_ckpt::SaveState for ArrivalStats {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        self.same_worker.save_ckpt(w);
        self.consecutive.save_ckpt(w);
        w.put_usize(self.last_arrival_per_worker.len());
        for (worker, &time) in &self.last_arrival_per_worker {
            w.save(worker);
            w.put_u64(time);
        }
        w.put_usize(self.last_known_feature.len());
        for (worker, feature) in &self.last_known_feature {
            w.save(worker);
            w.put_f32_slice(feature);
        }
        w.save(&self.last_global_arrival);
        w.put_u64(self.arrivals_seen);
        w.put_u64(self.new_workers_seen);
        w.put_usize(self.feature_dim);
        w.put_f32_slice(&self.mean_feature);
    }
}

impl crowd_ckpt::LoadState for ArrivalStats {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        self.same_worker.load_ckpt(r)?;
        self.consecutive.load_ckpt(r)?;
        let n = r.take_len("arrival map", 1)?;
        self.last_arrival_per_worker = BTreeMap::new();
        for _ in 0..n {
            let worker: WorkerId = r.decode()?;
            let time = r.take_u64()?;
            self.last_arrival_per_worker.insert(worker, time);
        }
        let n = r.take_len("feature map", 1)?;
        self.last_known_feature = BTreeMap::new();
        for _ in 0..n {
            let worker: WorkerId = r.decode()?;
            let feature = r.take_f32_vec()?;
            self.last_known_feature.insert(worker, feature);
        }
        self.last_global_arrival = r.decode()?;
        self.arrivals_seen = r.take_u64()?;
        self.new_workers_seen = r.take_u64()?;
        let feature_dim = r.take_usize()?;
        if feature_dim != self.feature_dim {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "arrival stats",
                detail: format!(
                    "snapshot feature dim {feature_dim} does not match configured {}",
                    self.feature_dim
                ),
            });
        }
        self.mean_feature = r.take_f32_vec()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ArrivalStats {
        ArrivalStats::new(2, 10_080, 60)
    }

    #[test]
    fn checkpointed_stats_predict_identically() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        let mut s = stats();
        for i in 0..50u64 {
            s.record_arrival(
                WorkerId((i % 7) as u32),
                i * 37,
                &[0.1 * (i % 5) as f32, 1.0 - 0.05 * (i % 9) as f32],
            );
        }
        let mut snap = Snapshot::new();
        snap.put("stats", &s);
        let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();
        let mut restored = stats();
        file.load_into("stats", &mut restored).unwrap();
        assert_eq!(restored.arrivals_seen(), s.arrivals_seen());
        assert_eq!(restored.known_workers(), s.known_workers());
        assert_eq!(
            restored.new_worker_rate().to_bits(),
            s.new_worker_rate().to_bits()
        );
        for (a, b) in s
            .mean_worker_feature()
            .iter()
            .zip(restored.mean_worker_feature())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The predictors' inputs must agree bit for bit.
        for (a, b) in s
            .expected_next_worker_feature(2000)
            .iter()
            .zip(restored.expected_next_worker_feature(2000))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            s.same_worker_mass_between(0, 500).to_bits(),
            restored.same_worker_mass_between(0, 500).to_bits()
        );
        // A differently configured target rejects the snapshot.
        let mut wrong_dim = ArrivalStats::new(3, 10_080, 60);
        assert!(file.load_into("stats", &mut wrong_dim).is_err());
        let mut wrong_support = ArrivalStats::new(2, 5_000, 60);
        assert!(file.load_into("stats", &mut wrong_support).is_err());
    }

    #[test]
    fn new_worker_rate_tracks_first_visits() {
        let mut s = stats();
        assert_eq!(s.new_worker_rate(), 0.5); // prior before any data
        s.record_arrival(WorkerId(0), 10, &[1.0, 0.0]);
        s.record_arrival(WorkerId(1), 20, &[0.0, 1.0]);
        s.record_arrival(WorkerId(0), 30, &[1.0, 0.0]);
        s.record_arrival(WorkerId(0), 40, &[1.0, 0.0]);
        assert_eq!(s.arrivals_seen(), 4);
        assert_eq!(s.known_workers(), 2);
        assert!((s.new_worker_rate() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn same_worker_histogram_collects_gaps() {
        let mut s = stats();
        s.record_arrival(WorkerId(0), 0, &[0.0; 2]);
        s.record_arrival(WorkerId(0), 100, &[0.0; 2]);
        s.record_arrival(WorkerId(0), 1540, &[0.0; 2]); // gap 1440 = 1 day
                                                        // Gap of 100 falls in [90, 120); gap of 1440 in [1440, 1470).
        assert!(s.same_worker_mass_between(90, 121) > 0.4);
        assert!(s.same_worker_mass_between(1400, 1500) > 0.4);
        assert!(s.same_worker_mass_between(5000, 6000) < 1e-9);
    }

    #[test]
    fn consecutive_histogram_uses_short_horizon() {
        let mut s = stats();
        s.record_arrival(WorkerId(0), 0, &[0.0; 2]);
        s.record_arrival(WorkerId(1), 5, &[0.0; 2]);
        s.record_arrival(WorkerId(2), 12, &[0.0; 2]);
        s.record_arrival(WorkerId(3), 500, &[0.0; 2]); // beyond the 60-minute support: ignored
        assert!(s.consecutive_mass_between(0, 10) > 0.4);
        assert!((s.consecutive_mass_between(0, 61) - 1.0).abs() < 1e-9);
        assert!(s.mean_consecutive_gap() < 30.0);
    }

    #[test]
    fn uniform_prior_before_any_gap_data() {
        let s = stats();
        let half = s.same_worker_mass_between(0, 5040);
        assert!((half - 0.5).abs() < 0.01);
        let all = s.consecutive_mass_between(0, 60);
        assert!((all - 1.0).abs() < 0.01);
    }

    #[test]
    fn mean_feature_and_expected_next_worker() {
        let mut s = stats();
        s.record_arrival(WorkerId(0), 0, &[1.0, 0.0]);
        s.record_arrival(WorkerId(1), 10, &[0.0, 1.0]);
        let mean = s.mean_worker_feature();
        assert!((mean[0] - 0.5).abs() < 1e-6 && (mean[1] - 0.5).abs() < 1e-6);
        let expected = s.expected_next_worker_feature(20);
        assert_eq!(expected.len(), 2);
        // A convex combination of observed features stays inside [0, 1].
        assert!(expected.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn expected_feature_prefers_workers_with_matching_revisit_gap() {
        let mut s = ArrivalStats::new(1, 10_080, 60);
        // Worker 0 historically revisits after ~60 minutes; worker 1 after ~3 days.
        for i in 0..20u64 {
            s.record_arrival(WorkerId(0), i * 5000, &[1.0]);
            s.record_arrival(WorkerId(0), i * 5000 + 60, &[1.0]);
        }
        for i in 0..20u64 {
            s.record_arrival(WorkerId(1), i * 9000 + 2, &[0.0]);
            s.record_arrival(WorkerId(1), i * 9000 + 2 + 4320, &[0.0]);
        }
        // Immediately (~60 min) after worker 0's last arrival, the expected next worker looks
        // much more like worker 0 than worker 1.
        let last0 = 19 * 5000;
        let expected_soon = s.expected_next_worker_feature(last0 + 60);
        assert!(expected_soon[0] > 0.4, "expected {expected_soon:?}");
    }

    #[test]
    fn empty_stats_expected_feature_is_zero() {
        let s = stats();
        assert_eq!(s.expected_next_worker_feature(100), vec![0.0, 0.0]);
    }
}
