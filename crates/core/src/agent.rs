//! The end-to-end DDQN task-arrangement agent (the "DDQN" method of the paper's
//! experiments): two Q-networks for the two benefits, the state transformer, online arrival
//! statistics, the future-state predictors, the feedback transformers, the aggregator and
//! the explorer — wired together behind the [`crowd_sim::Policy`] interface.

use crate::aggregator;
use crate::arrival_stats::ArrivalStats;
use crate::config::{DdqnConfig, RecommendationMode};
use crate::explorer::Explorer;
use crate::learner::DqnLearner;
use crate::memory::{FutureBranch, Transition};
use crate::predictor::{requester_future_branches, worker_future_branches};
use crate::state::{StateKind, StateTensor, StateTransformer};
use crowd_sim::{
    ArrivalContext, ArrivalView, BatchedPolicy, Decision, FeedbackView, LearnerBranchTiming,
    LearnerTiming, Policy, PolicyFeedback, TaskId,
};
use crowd_tensor::{Rng, ThreadPool};
use std::sync::Arc;

/// Upper bound on the number of failed (reward-0) transitions stored per feedback. Under the
/// cascade model only the tasks ranked above the completed one are certain negatives; when
/// nothing was completed we cap the negatives at a typical attention budget.
const MAX_NEGATIVE_TRANSITIONS: usize = 8;

/// The dual-DQN task arrangement agent.
#[derive(Debug)]
pub struct DdqnAgent {
    config: DdqnConfig,
    transformer_worker: StateTransformer,
    transformer_requester: StateTransformer,
    learner_worker: DqnLearner,
    learner_requester: DqnLearner,
    stats: ArrivalStats,
    explorer: Explorer,
    rng: Rng,
    observations: u64,
    mean_worker_quality: f32,
    quality_samples: u64,
    name: String,
    /// Generation-stamped membership scratch (indexed by task id) used by the ranked-list
    /// tail fill in `act`; reused across arrivals so the hot path stays allocation-free.
    ranked_stamps: Vec<u64>,
    ranked_stamp_gen: u64,
    /// When true, `observe` skips the gradient updates (evaluation mode). Statistics and
    /// replay memory keep accumulating so learning can resume seamlessly.
    learning_frozen: bool,
    /// Worker pool for the agent's internal parallelism: parallel state packing in
    /// `act_batch` and the concurrent two-learner dispatch in `observe`. Serial by
    /// default; set via [`DdqnAgent::set_thread_pool`] (also reachable through
    /// [`Policy::set_thread_pool`]). Results are bit-identical at any thread count.
    pool: ThreadPool,
}

impl DdqnAgent {
    /// Creates an agent for a platform whose task and worker features have the given
    /// dimensions (see [`crowd_sim::FeatureSpace`]).
    pub fn new(config: DdqnConfig, task_dim: usize, worker_dim: usize) -> Self {
        config.validate();
        let mut rng = Rng::seed_from(config.seed);
        let transformer_worker =
            StateTransformer::new(StateKind::Worker, config.max_tasks, task_dim, worker_dim);
        let transformer_requester =
            StateTransformer::new(StateKind::Requester, config.max_tasks, task_dim, worker_dim);
        let learner_worker = DqnLearner::new(
            &config,
            transformer_worker.row_dim(),
            config.gamma_worker,
            &mut rng,
        );
        let learner_requester = DqnLearner::new(
            &config,
            transformer_requester.row_dim(),
            config.gamma_requester,
            &mut rng,
        );
        let stats = ArrivalStats::new(
            worker_dim,
            config.same_worker_horizon,
            config.consecutive_horizon,
        );
        let explorer = Explorer::new(&config);
        let name = match (config.balance_weight, config.mode) {
            (w, _) if w >= 1.0 => "DDQN(w)".to_string(),
            (w, _) if w <= 0.0 => "DDQN(r)".to_string(),
            (w, _) => format!("DDQN(w={w:.2})"),
        };
        DdqnAgent {
            config,
            transformer_worker,
            transformer_requester,
            learner_worker,
            learner_requester,
            stats,
            explorer,
            rng,
            observations: 0,
            mean_worker_quality: 0.5,
            quality_samples: 0,
            name,
            ranked_stamps: Vec::new(),
            ranked_stamp_gen: 0,
            learning_frozen: false,
            pool: ThreadPool::serial(),
        }
    }

    /// Hands the agent (and both of its learners) a worker pool. With more than one
    /// thread:
    ///
    /// * `act_batch` builds the per-view state tensors in parallel shards and runs its
    ///   packed forward passes on row-sharded kernels;
    /// * `observe` runs the worker- and requester-branch `DqnLearner::learn` calls on two
    ///   pool workers via `par_join` (each learner owns its replay memory, parameters and
    ///   sampling RNG, so the branches share nothing);
    /// * each learner's packed training graph shards its stacked matmuls.
    ///
    /// All of it is deterministic: results are **bit-identical** to the serial agent at
    /// any thread count (`tests/parallel_equivalence.rs`).
    pub fn set_thread_pool(&mut self, pool: ThreadPool) {
        self.pool = pool;
        self.learner_worker.set_thread_pool(pool);
        self.learner_requester.set_thread_pool(pool);
    }

    /// The agent configuration.
    pub fn config(&self) -> &DdqnConfig {
        &self.config
    }

    /// Number of feedbacks observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Total learning steps performed by the two learners.
    pub fn total_updates(&self) -> u64 {
        self.learner_worker.updates() + self.learner_requester.updates()
    }

    /// Online arrival statistics (exposed for diagnostics and experiments).
    pub fn arrival_stats(&self) -> &ArrivalStats {
        &self.stats
    }

    /// The worker-benefit learner (read-only; diagnostics and the equivalence suites).
    pub fn worker_learner(&self) -> &DqnLearner {
        &self.learner_worker
    }

    /// The requester-benefit learner (read-only; diagnostics and the equivalence suites).
    pub fn requester_learner(&self) -> &DqnLearner {
        &self.learner_requester
    }

    /// Non-destructive probe of the agent's exploration/decision RNG: the next `u64` the
    /// stream *would* produce, without advancing it. Two agents that consumed their RNGs
    /// identically probe identically — the post-run check of the equivalence suites.
    pub fn rng_probe(&self) -> u64 {
        self.rng.clone().next_u64()
    }

    /// Disables exploration (used once the evaluation phase starts measuring a frozen
    /// policy, and by the efficiency benchmarks).
    pub fn freeze_exploration(&mut self) {
        self.explorer.freeze();
    }

    /// Pauses gradient updates: `observe` keeps recording statistics and transitions but
    /// runs no learner step, so the Q-networks stay fixed. This makes `act` a pure function
    /// of the entry parameters — the precondition under which a batched round
    /// ([`BatchedPolicy::act_batch`]) is bit-identical to sequential stepping.
    pub fn freeze_learning(&mut self) {
        self.learning_frozen = true;
    }

    /// Resumes gradient updates after [`DdqnAgent::freeze_learning`].
    pub fn unfreeze_learning(&mut self) {
        self.learning_frozen = false;
    }

    fn uses_worker_network(&self) -> bool {
        self.config.balance_weight > 0.0
    }

    fn uses_requester_network(&self) -> bool {
        self.config.balance_weight < 1.0
    }

    /// Combined Q values (aggregator output) for the tasks of an arrival view, in the
    /// order of the state tensor rows, plus one of the state tensors used (both
    /// transformers order tasks identically, so its `task_ids` align with the Q values).
    /// Only the tensors of active networks are built — a single-objective agent packs one
    /// state per decision, not two.
    fn combined_q(&self, view: &ArrivalView<'_>) -> (Vec<f32>, StateTensor) {
        let state_w = self
            .uses_worker_network()
            .then(|| self.transformer_worker.from_view(view));
        let state_r = self
            .uses_requester_network()
            .then(|| self.transformer_requester.from_view(view));
        let q_w = state_w.as_ref().map(|state| {
            self.learner_worker
                .q_values(state)
                .expect("worker Q inference failed")
        });
        let q_r = state_r.as_ref().map(|state| {
            self.learner_requester
                .q_values(state)
                .expect("requester Q inference failed")
        });
        let combined =
            aggregator::combine(q_w.as_deref(), q_r.as_deref(), self.config.balance_weight);
        let state = state_w
            .or(state_r)
            .expect("balance weight always enables at least one network");
        (combined, state)
    }

    /// Exposes the combined Q values for benchmarking / inspection (one per available task,
    /// aligned with the state-tensor row order).
    pub fn q_values(&self, view: &ArrivalView<'_>) -> Vec<f32> {
        self.combined_q(view).0
    }

    /// Turns combined Q values into a decision: exploration, mode dispatch and — in ranked
    /// mode — the tail fill for tasks truncated out of the state. Shared verbatim by the
    /// sequential [`Policy::act`] and the batched [`BatchedPolicy::act_batch`] so both
    /// consume the exploration RNG identically.
    fn decide_from_q(
        &mut self,
        combined: &[f32],
        task_ids: &[TaskId],
        view: &ArrivalView<'_>,
        decision: &mut Decision,
    ) {
        let order = self.explorer.decide(combined, &mut self.rng);
        match self.config.mode {
            RecommendationMode::AssignOne => {
                if let Some(&idx) = order.first() {
                    decision.assign(task_ids[idx]);
                }
            }
            RecommendationMode::RankList => {
                decision.extend(order.iter().map(|&i| task_ids[i]));
                // Tasks beyond max_tasks (truncated out of the state) go to the bottom of the
                // list in their original order so the decision still covers the whole pool.
                // Membership is tracked with a generation-stamped scratch table so the fill
                // stays O(pool) instead of O(pool²) on deep pools.
                self.ranked_stamp_gen += 1;
                let generation = self.ranked_stamp_gen;
                for &id in decision.shown() {
                    let slot = id.index();
                    if slot >= self.ranked_stamps.len() {
                        self.ranked_stamps.resize(slot + 1, 0);
                    }
                    self.ranked_stamps[slot] = generation;
                }
                for i in 0..view.n_tasks() {
                    let id = view.task_id(i);
                    let in_ranking = self.ranked_stamps.get(id.index()) == Some(&generation);
                    if !in_ranking {
                        decision.push(id);
                    }
                }
            }
        }
    }

    fn store_transitions_for(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) {
        // Which shown tasks become transitions: the completed one (positive) plus the tasks
        // ranked above it (certain negatives under the cascade assumption).
        let negatives_end = match feedback.completed {
            Some((_, position)) => position,
            None => feedback.shown.len().min(MAX_NEGATIVE_TRANSITIONS),
        };

        if self.uses_worker_network() {
            let state = self.transformer_worker.from_view(view);
            let branches = Arc::new(worker_future_branches(
                &self.transformer_worker,
                &self.stats,
                view,
                feedback,
                self.config.same_worker_horizon,
                self.config.max_future_breakpoints,
            ));
            self.push_transitions(&state, &branches, feedback, negatives_end, true);
        }
        if self.uses_requester_network() {
            let state = self.transformer_requester.from_view(view);
            let branches = Arc::new(requester_future_branches(
                &self.transformer_requester,
                &self.stats,
                view,
                feedback,
                self.mean_worker_quality,
                self.config.consecutive_horizon,
                self.config.max_future_breakpoints,
            ));
            self.push_transitions(&state, &branches, feedback, negatives_end, false);
        }
    }

    fn push_transitions(
        &mut self,
        state: &StateTensor,
        branches: &Arc<Vec<FutureBranch>>,
        feedback: &FeedbackView<'_>,
        negatives_end: usize,
        worker_side: bool,
    ) {
        let mut push = |task: TaskId, reward: f32| {
            if let Some(row) = state.task_ids.iter().position(|&t| t == task) {
                let transition = Transition {
                    state: state.clone(),
                    action_row: row,
                    reward,
                    branches: Arc::clone(branches),
                };
                if worker_side {
                    self.learner_worker.store_transition(transition);
                } else {
                    self.learner_requester.store_transition(transition);
                }
            }
        };
        if let Some((task, _)) = feedback.completed {
            let reward = if worker_side {
                feedback.completion_reward()
            } else {
                feedback.quality_reward()
            };
            push(task, reward);
        }
        for &task in feedback.shown.iter().take(negatives_end) {
            push(task, 0.0);
        }
    }
}

/// Checkpoint format: both learners (worker first), the arrival statistics, the
/// explorer, the exploration/decision RNG, the observation counter, the running mean
/// worker quality with its sample count, and the learning-frozen flag.
///
/// Not stored (derived or scratch): the config and the transformers (reconstructed at
/// construction), the display name, the thread pool (an execution resource, set via
/// [`DdqnAgent::set_thread_pool`] after resume), and the generation-stamped ranked-list
/// scratch — every `act` bumps the generation before stamping, so a reset scratch
/// produces bit-identical decisions.
impl crowd_ckpt::SaveState for DdqnAgent {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.learner_worker);
        w.save(&self.learner_requester);
        w.save(&self.stats);
        w.save(&self.explorer);
        w.save(&self.rng);
        w.put_u64(self.observations);
        w.put_f32(self.mean_worker_quality);
        w.put_u64(self.quality_samples);
        w.put_bool(self.learning_frozen);
    }
}

impl crowd_ckpt::LoadState for DdqnAgent {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        r.load(&mut self.learner_worker)?;
        r.load(&mut self.learner_requester)?;
        r.load(&mut self.stats)?;
        r.load(&mut self.explorer)?;
        r.load(&mut self.rng)?;
        self.observations = r.take_u64()?;
        self.mean_worker_quality = r.take_f32()?;
        self.quality_samples = r.take_u64()?;
        self.learning_frozen = r.take_bool()?;
        Ok(())
    }
}

impl Policy for DdqnAgent {
    fn name(&self) -> &str {
        &self.name
    }

    fn act(&mut self, view: &ArrivalView<'_>, decision: &mut Decision) {
        decision.clear();
        if view.is_empty() {
            return;
        }
        let (combined, state) = self.combined_q(view);
        self.decide_from_q(&combined, &state.task_ids, view, decision);
    }

    fn observe(&mut self, view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) {
        // 1. Online statistics (φ, ϕ, p_new, mean features) update first so the predictors
        //    see the newest arrival.
        self.stats
            .record_arrival(view.worker_id, view.time, view.worker_feature);
        self.quality_samples += 1;
        let n = self.quality_samples as f32;
        self.mean_worker_quality += (view.worker_quality - self.mean_worker_quality) / n;

        // 2. Feedback transformers + future-state predictors → transitions into the memories.
        if !view.is_empty() && !feedback.shown.is_empty() {
            self.store_transitions_for(view, feedback);
        }

        // 3. Learners run after every `learn_every` feedbacks (the paper updates after every
        //    feedback; `learn_every` > 1 trades fidelity for CPU time), unless learning is
        //    frozen (evaluation / batched-equivalence mode). The two branches are fully
        //    independent — separate replay memories, parameter stores and sampling RNG
        //    streams — so when both are active and the pool has more than one thread they
        //    update concurrently on two pool workers; each learner's `sample_refs` borrow
        //    of its own replay memory stays on its own worker. Results are bit-identical
        //    to the sequential worker-then-requester order.
        self.observations += 1;
        if !self.learning_frozen
            && self
                .observations
                .is_multiple_of(self.config.learn_every as u64)
        {
            match (self.uses_worker_network(), self.uses_requester_network()) {
                (true, true) => {
                    let worker = &mut self.learner_worker;
                    let requester = &mut self.learner_requester;
                    let (w, r) = self
                        .pool
                        .par_join(move || worker.learn(), move || requester.learn());
                    w.expect("worker learner failed");
                    r.expect("requester learner failed");
                }
                (true, false) => {
                    self.learner_worker.learn().expect("worker learner failed");
                }
                (false, true) => {
                    self.learner_requester
                        .learn()
                        .expect("requester learner failed");
                }
                (false, false) => unreachable!("balance weight always enables a network"),
            }
        }
    }

    fn warm_start(&mut self, history: &[(ArrivalContext, PolicyFeedback)]) {
        for (ctx, feedback) in history {
            self.observe(&ctx.view(), &feedback.view());
        }
    }

    /// Learner wall time, **per branch**: every `DqnLearner::learn` call is timed inside
    /// its own learner, so the report stays correct when the two branches run
    /// concurrently — the efficiency binaries take latency from
    /// [`LearnerTiming::critical_path`] (the slower branch, which is what `observe`
    /// actually waited for) instead of a double-counting sum, and can still show each
    /// branch's own wall time.
    fn learner_timing(&self) -> Option<LearnerTiming> {
        let mut branches = Vec::with_capacity(2);
        if self.uses_worker_network() {
            let (updates, total) = self.learner_worker.learn_timing();
            branches.push(LearnerBranchTiming {
                name: "worker",
                updates,
                total,
            });
        }
        if self.uses_requester_network() {
            let (updates, total) = self.learner_requester.learn_timing();
            branches.push(LearnerBranchTiming {
                name: "requester",
                updates,
                total,
            });
        }
        Some(LearnerTiming { branches })
    }

    fn set_thread_pool(&mut self, pool: ThreadPool) {
        DdqnAgent::set_thread_pool(self, pool);
    }

    /// The DDQN agent is fully checkpointable: delegates to its
    /// [`crowd_ckpt::SaveState`] impl.
    fn checkpoint_state(&self, w: &mut crowd_ckpt::StateWriter) -> crowd_ckpt::Result<()> {
        crowd_ckpt::SaveState::save_state(self, w);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        crowd_ckpt::LoadState::load_state(self, r)
    }
}

impl BatchedPolicy for DdqnAgent {
    /// Decides on `N` arrivals with **one Q-network forward pass per active network**: all
    /// views' state rows are packed into a single `[Σ max_tasks, row_dim]` buffer (built
    /// straight from the borrowed views, no cloning of feature vectors beyond the state
    /// tensors the sequential path builds too) and evaluated through
    /// [`DqnLearner::q_values_batch`](crate::DqnLearner::q_values_batch). Exploration then
    /// runs per view in view order, so the RNG stream matches sequential `act` calls
    /// exactly.
    ///
    /// With a multi-thread pool ([`DdqnAgent::set_thread_pool`]) the per-view state
    /// tensors are built in parallel shards (each state is a pure function of its own
    /// view and the shared transformer) and the packed forward pass runs on row-sharded
    /// kernels — the "parallel pack" stage around the single shared forward. Exploration
    /// and decision assembly stay sequential in view order, so the decisions and the RNG
    /// stream are bit-identical at any thread count.
    fn act_batch(&mut self, views: &[ArrivalView<'_>], decisions: &mut [Decision]) {
        assert_eq!(
            views.len(),
            decisions.len(),
            "one decision buffer per view required"
        );
        // Empty pools skip state construction just like the sequential `act` short-circuit;
        // a zero-row placeholder keeps the index alignment with `views` and contributes no
        // rows to the packed buffer. Parallel packing only pays once there are enough
        // views to amortise the pool dispatch (a per-view state build is microseconds;
        // the persistent pool's warm dispatch is cheaper than a thread spawn but not
        // free); small batches shard to nothing — bit-identical either way, so this gate
        // is pure wall clock.
        let pool = if views.len() >= self.pool.threads() * 4 {
            self.pool
        } else {
            ThreadPool::serial()
        };
        let build_states = |transformer: &StateTransformer| {
            let mut states: Vec<StateTensor> = views
                .iter()
                .map(|_| StateTensor {
                    features: crowd_tensor::Matrix::zeros(0, transformer.row_dim()),
                    row_mask: crowd_tensor::Matrix::zeros(0, 1),
                    task_ids: Vec::new(),
                    real_tasks: 0,
                })
                .collect();
            pool.par_chunks(&mut states, 1, |offset, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    let view = &views[offset + k];
                    if !view.is_empty() {
                        *slot = transformer.from_view(view);
                    }
                }
            });
            states
        };
        let states_w = self
            .uses_worker_network()
            .then(|| build_states(&self.transformer_worker));
        let states_r = self
            .uses_requester_network()
            .then(|| build_states(&self.transformer_requester));
        let q_w = states_w.as_ref().map(|states| {
            let refs: Vec<&StateTensor> = states.iter().collect();
            self.learner_worker
                .q_values_batch(&refs)
                .expect("worker Q batch inference failed")
        });
        let q_r = states_r.as_ref().map(|states| {
            let refs: Vec<&StateTensor> = states.iter().collect();
            self.learner_requester
                .q_values_batch(&refs)
                .expect("requester Q batch inference failed")
        });
        let states = states_w
            .as_ref()
            .or(states_r.as_ref())
            .expect("balance weight always enables at least one network");
        for (i, (view, decision)) in views.iter().zip(decisions.iter_mut()).enumerate() {
            decision.clear();
            if view.is_empty() {
                continue;
            }
            let combined = aggregator::combine(
                q_w.as_ref().map(|q| q[i].as_slice()),
                q_r.as_ref().map(|q| q[i].as_slice()),
                self.config.balance_weight,
            );
            self.decide_from_q(&combined, &states[i].task_ids, view, decision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{Env, Platform, SimConfig};

    fn agent_for(platform: &Platform, config: DdqnConfig) -> DdqnAgent {
        let fs = platform.feature_space();
        DdqnAgent::new(config, fs.task_dim(), fs.worker_dim())
    }

    fn small_config() -> DdqnConfig {
        DdqnConfig {
            max_tasks: 32,
            hidden_dim: 16,
            num_heads: 2,
            batch_size: 8,
            buffer_size: 128,
            learn_every: 4,
            exploration_anneal_steps: 200,
            ..DdqnConfig::default()
        }
    }

    #[test]
    fn checkpointed_agent_continues_bit_identically() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        // Train an agent (both MDPs, exploration + learning active) for a while, save,
        // restore into a FRESH agent built from the same config, and drive both over
        // the same remaining arrivals: decisions, loss streams, RNG probes and every
        // parameter must stay bit-identical.
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds.clone(), fs.clone(), 11);
        let config = small_config().with_balance(0.5);
        let mut agent = agent_for(&platform, config.clone());
        let mut decision = Decision::new();
        let mut steps = 0;
        while platform.next_arrival() {
            if platform.arrival().is_empty() {
                continue;
            }
            agent.act(&platform.arrival(), &mut decision);
            platform.apply(&decision);
            agent.observe(&platform.arrival(), &platform.feedback());
            steps += 1;
            if steps >= 80 {
                break;
            }
        }
        assert!(agent.total_updates() > 0, "no learning before the snapshot");

        let mut snap = Snapshot::new();
        snap.put("agent", &agent);
        let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();
        let mut resumed = agent_for(&platform, config);
        file.load_into("agent", &mut resumed).unwrap();

        // Both platforms continue from an identical committed state.
        let mut platform_b = platform.clone();
        let mut decision_b = Decision::new();
        for _ in 0..60 {
            if !platform.next_arrival() {
                break;
            }
            assert!(platform_b.next_arrival());
            if platform.arrival().is_empty() {
                continue;
            }
            agent.act(&platform.arrival(), &mut decision);
            resumed.act(&platform_b.arrival(), &mut decision_b);
            assert_eq!(decision, decision_b, "decisions diverged after resume");
            platform.apply(&decision);
            platform_b.apply(&decision_b);
            agent.observe(&platform.arrival(), &platform.feedback());
            resumed.observe(&platform_b.arrival(), &platform_b.feedback());
        }
        assert_eq!(agent.total_updates(), resumed.total_updates());
        assert_eq!(agent.rng_probe(), resumed.rng_probe());
        assert_eq!(
            agent.worker_learner().loss_history(),
            resumed.worker_learner().loss_history()
        );
        assert_eq!(
            agent.requester_learner().rng_probe(),
            resumed.requester_learner().rng_probe()
        );
        for (learner_a, learner_b) in [
            (agent.worker_learner(), resumed.worker_learner()),
            (agent.requester_learner(), resumed.requester_learner()),
        ] {
            for ((_, name, a), (_, _, b)) in
                learner_a.params().iter().zip(learner_b.params().iter())
            {
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "param {name} diverged");
                }
            }
        }
    }

    #[test]
    fn names_reflect_configuration() {
        let ds = SimConfig::tiny().generate();
        let platform = Platform::new(ds.clone(), Platform::default_feature_space(&ds), 0);
        assert_eq!(
            agent_for(&platform, small_config().worker_only()).name(),
            "DDQN(w)"
        );
        assert_eq!(
            agent_for(&platform, small_config().requester_only()).name(),
            "DDQN(r)"
        );
        assert_eq!(
            agent_for(&platform, small_config().with_balance(0.25)).name(),
            "DDQN(w=0.25)"
        );
    }

    #[test]
    fn act_produces_valid_decisions_in_both_modes() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds, fs, 1);
        let mut ranker = agent_for(&platform, small_config());
        let mut assigner = agent_for(
            &platform,
            small_config().with_mode(RecommendationMode::AssignOne),
        );
        let mut decision = Decision::new();
        let mut checked = 0;
        while platform.next_arrival() {
            let view = platform.arrival();
            if view.is_empty() {
                continue;
            }
            ranker.act(&view, &mut decision);
            // Complete permutation of the pool, no duplicates.
            assert_eq!(decision.len(), view.n_tasks());
            assert!(!decision.is_assignment());
            let mut dedup = decision.shown().to_vec();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), decision.len());

            assigner.act(&view, &mut decision);
            assert!(decision.is_assignment());
            assert_eq!(decision.len(), 1);
            assert!(view.position_of(decision.shown()[0]).is_some());
            checked += 1;
            if checked > 30 {
                break;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn observe_accumulates_transitions_and_learns() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds, fs, 2);
        let mut agent = agent_for(&platform, small_config());
        let mut decision = Decision::new();
        let mut steps = 0;
        while platform.next_arrival() {
            if platform.arrival().is_empty() {
                continue;
            }
            agent.act(&platform.arrival(), &mut decision);
            platform.apply(&decision);
            agent.observe(&platform.arrival(), &platform.feedback());
            steps += 1;
            if steps >= 120 {
                break;
            }
        }
        assert!(agent.observations() >= 100);
        assert!(agent.arrival_stats().arrivals_seen() >= 100);
        assert!(agent.total_updates() > 0, "learners never ran");
        let timing = agent
            .learner_timing()
            .expect("the DDQN agent tracks timing");
        assert_eq!(timing.updates(), agent.total_updates());
        assert!(timing.total_cpu() > std::time::Duration::ZERO);
        assert!(timing.critical_path() <= timing.total_cpu());
        assert!(timing.mean_seconds() > 0.0);
    }

    #[test]
    fn agent_and_learner_are_send() {
        // The parallel split moves `&mut DqnLearner` (par_join) and boxed policies
        // (step_all_parallel) across pool worker threads; this is the compile-time fence.
        fn assert_send<T: Send>() {}
        assert_send::<DdqnAgent>();
        assert_send::<crate::DqnLearner>();
    }

    #[test]
    fn pooled_agent_replays_bit_identically_to_serial_agent() {
        // A *training* agent (both exploration and learning active) driven over the same
        // arrivals must end in a bit-identical state whether its internal pool has 1 or
        // 8 threads: par_join learner dispatch, parallel act_batch packing and pooled
        // kernels may only change wall clock.
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let run = |threads: usize| {
            let mut platform = Platform::new(ds.clone(), fs.clone(), 7);
            // Balanced config so BOTH learners are active and the par_join path runs.
            let mut agent = agent_for(&platform, small_config().with_balance(0.5));
            agent.set_thread_pool(ThreadPool::new(threads));
            let mut decision = Decision::new();
            let mut steps = 0;
            while platform.next_arrival() {
                if platform.arrival().is_empty() {
                    continue;
                }
                agent.act(&platform.arrival(), &mut decision);
                platform.apply(&decision);
                agent.observe(&platform.arrival(), &platform.feedback());
                steps += 1;
                if steps >= 100 {
                    break;
                }
            }
            agent
        };
        let serial = run(1);
        let pooled = run(8);
        assert!(serial.total_updates() > 0, "learners never ran");
        assert_eq!(serial.total_updates(), pooled.total_updates());
        assert_eq!(
            serial.learner_worker.loss_history(),
            pooled.learner_worker.loss_history()
        );
        assert_eq!(
            serial.learner_requester.loss_history(),
            pooled.learner_requester.loss_history()
        );
        assert_eq!(
            serial.learner_worker.rng_probe(),
            pooled.learner_worker.rng_probe()
        );
        for ((_, name, a), (_, _, b)) in serial
            .learner_worker
            .params()
            .iter()
            .zip(pooled.learner_worker.params().iter())
        {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "worker param {name} diverged");
            }
        }
    }

    #[test]
    fn worker_only_agent_never_touches_requester_learner() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds, fs, 3);
        let mut agent = agent_for(&platform, small_config().worker_only());
        let mut decision = Decision::new();
        let mut steps = 0;
        while platform.next_arrival() {
            if platform.arrival().is_empty() {
                continue;
            }
            agent.act(&platform.arrival(), &mut decision);
            platform.apply(&decision);
            agent.observe(&platform.arrival(), &platform.feedback());
            steps += 1;
            if steps >= 60 {
                break;
            }
        }
        assert_eq!(agent.learner_requester.updates(), 0);
        assert_eq!(agent.learner_requester.memory_len(), 0);
        assert!(agent.learner_worker.memory_len() > 0);
    }

    #[test]
    fn act_batch_matches_sequential_act_and_skips_empty_views() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds, fs, 5);
        let mut batch_agent = agent_for(&platform, small_config());
        let mut seq_agent = agent_for(&platform, small_config());
        let mut contexts = Vec::new();
        while contexts.len() < 4 && platform.next_arrival() {
            if !platform.arrival().is_empty() {
                contexts.push(platform.arrival().to_context());
            }
        }
        assert_eq!(contexts.len(), 4, "tiny dataset should yield 4 pools");
        // An empty pool in the middle of the batch must be skipped exactly like the
        // sequential path skips it (no state build, no RNG draw, cleared decision).
        let mut empty = contexts[0].clone();
        empty.available.clear();
        contexts.insert(2, empty);
        let views: Vec<ArrivalView<'_>> = contexts.iter().map(|ctx| ctx.view()).collect();
        let mut batched: Vec<Decision> = (0..views.len()).map(|_| Decision::new()).collect();
        batch_agent.act_batch(&views, &mut batched);
        for (view, batch_decision) in views.iter().zip(&batched) {
            let mut expected = Decision::new();
            seq_agent.act(view, &mut expected);
            assert_eq!(&expected, batch_decision, "batched decision diverged");
        }
        assert!(batched[2].is_empty());
    }

    #[test]
    fn frozen_agent_is_deterministic_given_view() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let mut platform = Platform::new(ds, fs, 4);
        let mut agent = agent_for(&platform, small_config());
        agent.freeze_exploration();
        loop {
            assert!(platform.next_arrival());
            if !platform.arrival().is_empty() {
                break;
            }
        }
        let view = platform.arrival();
        let mut first = Decision::new();
        let mut second = Decision::new();
        agent.act(&view, &mut first);
        agent.act(&view, &mut second);
        assert_eq!(first, second);
    }
}
