//! The aggregator / balancer (paper Sec. VI-A): combines the worker-benefit and
//! requester-benefit Q values with a weighted sum `Q = w·Q_w + (1−w)·Q_r`.

/// Combines the two Q-value vectors with balance weight `w ∈ [0, 1]`.
///
/// When one side is absent (the agent was configured worker-only or requester-only and never
/// evaluated the other network) the other side is returned as-is. When both are present they
/// must have the same length.
pub fn combine(q_worker: Option<&[f32]>, q_requester: Option<&[f32]>, w: f32) -> Vec<f32> {
    let w = w.clamp(0.0, 1.0);
    match (q_worker, q_requester) {
        (Some(qw), Some(qr)) => {
            debug_assert_eq!(qw.len(), qr.len(), "mismatched Q vector lengths");
            qw.iter()
                .zip(qr.iter())
                .map(|(&a, &b)| w * a + (1.0 - w) * b)
                .collect()
        }
        (Some(qw), None) => qw.to_vec(),
        (None, Some(qr)) => qr.to_vec(),
        (None, None) => Vec::new(),
    }
}

/// Normalises a Q vector to zero mean and unit standard deviation. Used before combining so
/// that the balance weight trades off *rankings* rather than raw magnitudes (completion
/// rewards are in `[0, 1]` while quality gains can be much larger); the paper combines raw
/// values, so this is exposed as an option and benchmarked in the ablation suite.
pub fn standardize(q: &[f32]) -> Vec<f32> {
    if q.is_empty() {
        return Vec::new();
    }
    let mean = q.iter().sum::<f32>() / q.len() as f32;
    let var = q.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / q.len() as f32;
    let std = var.sqrt();
    if std <= f32::EPSILON {
        return vec![0.0; q.len()];
    }
    q.iter().map(|v| (v - mean) / std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_sum_blends() {
        let qw = [1.0, 0.0];
        let qr = [0.0, 1.0];
        assert_eq!(combine(Some(&qw), Some(&qr), 1.0), vec![1.0, 0.0]);
        assert_eq!(combine(Some(&qw), Some(&qr), 0.0), vec![0.0, 1.0]);
        assert_eq!(combine(Some(&qw), Some(&qr), 0.25), vec![0.25, 0.75]);
    }

    #[test]
    fn missing_sides_pass_through() {
        let q = [0.3, 0.7];
        assert_eq!(combine(Some(&q), None, 0.25), q.to_vec());
        assert_eq!(combine(None, Some(&q), 0.25), q.to_vec());
        assert!(combine(None, None, 0.5).is_empty());
    }

    #[test]
    fn weight_is_clamped() {
        let qw = [1.0];
        let qr = [0.0];
        assert_eq!(combine(Some(&qw), Some(&qr), 7.0), vec![1.0]);
        assert_eq!(combine(Some(&qw), Some(&qr), -3.0), vec![0.0]);
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let z = standardize(&[1.0, 2.0, 3.0, 4.0]);
        let mean: f32 = z.iter().sum::<f32>() / 4.0;
        let var: f32 = z.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
        assert_eq!(standardize(&[2.0, 2.0]), vec![0.0, 0.0]);
        assert!(standardize(&[]).is_empty());
    }
}
