//! Hyper-parameters of the DDQN task-arrangement framework.
//!
//! Defaults follow Sec. VII-B1 of the paper where a value is given (γ_w = 0.3, γ_r = 0.5,
//! learning rate 0.001, buffer size 1000, target copy every 100 iterations, batch size 64,
//! ε growing 0.9 → 0.98, noise decay 1.0 → 0.1); dimensions are scaled down from the paper's
//! GPU setting (128-wide layers) to a CPU-friendly width, configurable per experiment.

/// Whether the agent assigns a single task or shows a ranked list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecommendationMode {
    /// Recommend exactly one task (the paper's CR / QG setting).
    AssignOne,
    /// Recommend a ranked list of all available tasks (kCR / nDCG settings).
    RankList,
}

/// Hyper-parameters shared by both Q-networks and the agent.
#[derive(Debug, Clone, PartialEq)]
pub struct DdqnConfig {
    /// Maximum number of available tasks represented in a state (`maxT`); larger pools are
    /// truncated to the `max_tasks` tasks closest to their deadline.
    pub max_tasks: usize,
    /// Hidden width of every Q-network layer (the paper uses 128 on GPU).
    pub hidden_dim: usize,
    /// Number of self-attention heads.
    pub num_heads: usize,
    /// Discount factor for the worker-benefit MDP (paper: 0.3).
    pub gamma_worker: f32,
    /// Discount factor for the requester-benefit MDP (paper: 0.5).
    pub gamma_requester: f32,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// Replay buffer capacity (paper: 1000).
    pub buffer_size: usize,
    /// Minibatch size per learning step (paper: 64).
    pub batch_size: usize,
    /// Hard-copy the target network every this many learning steps (paper: 100).
    pub target_sync_every: u64,
    /// Run one learning step every this many observed feedbacks (1 = after every feedback,
    /// exactly as the paper; larger values trade fidelity for speed on CPU).
    pub learn_every: usize,
    /// Balance weight `w` between the two benefits: `Q = w·Q_w + (1−w)·Q_r` (Sec. VI-A).
    pub balance_weight: f32,
    /// Whether to assign a single task or rank the whole pool.
    pub mode: RecommendationMode,
    /// Number of decisions over which the exploration schedules anneal.
    pub exploration_anneal_steps: u64,
    /// Maximum number of future-state breakpoints kept when enumerating task expirations in
    /// the revised target (Eq. 3/6). The paper enumerates every expiry (up to `maxT`);
    /// merging low-probability intervals keeps CPU training tractable without changing the
    /// expectation materially.
    pub max_future_breakpoints: usize,
    /// Same-worker revisit horizon in minutes for φ(g) (paper: 10080 = one week).
    pub same_worker_horizon: u64,
    /// Consecutive-arrival horizon in minutes for ϕ(g) (paper: 60).
    pub consecutive_horizon: u64,
    /// Gradient-norm clip applied per parameter.
    pub grad_clip: f32,
    /// RNG seed for the agent's own stochastic choices (exploration, replay sampling).
    pub seed: u64,
}

impl Default for DdqnConfig {
    fn default() -> Self {
        DdqnConfig {
            max_tasks: 64,
            hidden_dim: 32,
            num_heads: 4,
            gamma_worker: 0.3,
            gamma_requester: 0.5,
            learning_rate: 0.001,
            buffer_size: 1000,
            batch_size: 16,
            target_sync_every: 100,
            learn_every: 2,
            balance_weight: 0.25,
            mode: RecommendationMode::RankList,
            exploration_anneal_steps: 2000,
            max_future_breakpoints: 4,
            same_worker_horizon: 10_080,
            consecutive_horizon: 60,
            grad_clip: 5.0,
            seed: 17,
        }
    }
}

impl DdqnConfig {
    /// The paper's full configuration (128-wide layers, batch 64, update after every
    /// feedback). Significantly slower on CPU; the shape of all results is preserved with
    /// [`DdqnConfig::default`].
    pub fn paper_scale() -> Self {
        DdqnConfig {
            hidden_dim: 128,
            batch_size: 64,
            learn_every: 1,
            max_future_breakpoints: 64,
            ..DdqnConfig::default()
        }
    }

    /// Configuration that only optimises the worker benefit (`w = 1`), used by the Fig. 7
    /// comparison.
    pub fn worker_only(mut self) -> Self {
        self.balance_weight = 1.0;
        self
    }

    /// Configuration that only optimises the requester benefit (`w = 0`), used by the Fig. 8
    /// comparison.
    pub fn requester_only(mut self) -> Self {
        self.balance_weight = 0.0;
        self
    }

    /// Overrides the balance weight (Fig. 9 sweep).
    pub fn with_balance(mut self, w: f32) -> Self {
        self.balance_weight = w.clamp(0.0, 1.0);
        self
    }

    /// Overrides the recommendation mode.
    pub fn with_mode(mut self, mode: RecommendationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the agent seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates internal consistency (panics early instead of failing deep inside training).
    ///
    /// # Panics
    ///
    /// Panics when dimensions are zero or the hidden width is not divisible by the head
    /// count.
    pub fn validate(&self) {
        assert!(self.max_tasks > 0, "max_tasks must be positive");
        assert!(self.hidden_dim > 0, "hidden_dim must be positive");
        assert!(
            self.hidden_dim.is_multiple_of(self.num_heads),
            "hidden_dim must be divisible by num_heads"
        );
        assert!(self.buffer_size > 0 && self.batch_size > 0);
        assert!((0.0..=1.0).contains(&self.balance_weight));
        assert!((0.0..=1.0).contains(&self.gamma_worker));
        assert!((0.0..=1.0).contains(&self.gamma_requester));
        assert!(self.max_future_breakpoints > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_constants() {
        let cfg = DdqnConfig::default();
        cfg.validate();
        assert_eq!(cfg.gamma_worker, 0.3);
        assert_eq!(cfg.gamma_requester, 0.5);
        assert_eq!(cfg.learning_rate, 0.001);
        assert_eq!(cfg.buffer_size, 1000);
        assert_eq!(cfg.target_sync_every, 100);
        assert_eq!(cfg.same_worker_horizon, 10_080);
        assert_eq!(cfg.consecutive_horizon, 60);
    }

    #[test]
    fn paper_scale_is_valid() {
        let cfg = DdqnConfig::paper_scale();
        cfg.validate();
        assert_eq!(cfg.hidden_dim, 128);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.learn_every, 1);
    }

    #[test]
    fn builders_set_fields() {
        let cfg = DdqnConfig::default()
            .worker_only()
            .with_mode(RecommendationMode::AssignOne)
            .with_seed(99);
        assert_eq!(cfg.balance_weight, 1.0);
        assert_eq!(cfg.mode, RecommendationMode::AssignOne);
        assert_eq!(cfg.seed, 99);
        assert_eq!(DdqnConfig::default().requester_only().balance_weight, 0.0);
        assert_eq!(DdqnConfig::default().with_balance(2.0).balance_weight, 1.0);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn invalid_head_split_panics() {
        let cfg = DdqnConfig {
            hidden_dim: 30,
            num_heads: 4,
            ..DdqnConfig::default()
        };
        cfg.validate();
    }
}
