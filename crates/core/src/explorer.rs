//! Exploration wrapper (paper Sec. VI-B): ε-greedy for single-task assignment, Gaussian Q
//! noise with a decaying scale for list recommendation.

use crate::config::{DdqnConfig, RecommendationMode};
use crowd_rl_kit::{greedy_rank, EpsilonGreedy, GaussianQNoise};
use crowd_tensor::Rng;

/// The agent's explorer: dispatches to the strategy matching the recommendation mode.
#[derive(Debug, Clone)]
pub struct Explorer {
    mode: RecommendationMode,
    epsilon: EpsilonGreedy,
    noise: GaussianQNoise,
    /// When true, no exploration is performed (evaluation / frozen-policy mode).
    frozen: bool,
}

impl Explorer {
    /// Creates the explorer from the agent configuration.
    pub fn new(config: &DdqnConfig) -> Self {
        Explorer {
            mode: config.mode,
            epsilon: EpsilonGreedy::paper_default(config.exploration_anneal_steps),
            noise: GaussianQNoise::paper_default(config.exploration_anneal_steps),
            frozen: false,
        }
    }

    /// Disables exploration entirely (pure exploitation).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Re-enables exploration.
    pub fn unfreeze(&mut self) {
        self.frozen = false;
    }

    /// Whether exploration is currently disabled.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Picks a single task index from the Q values (ε-greedy). `None` on an empty pool.
    pub fn select_single(&mut self, q_values: &[f32], rng: &mut Rng) -> Option<usize> {
        if self.frozen {
            return greedy_rank(q_values).first().copied();
        }
        self.epsilon.select(q_values, rng)
    }

    /// Produces a full ranking of task indices from the Q values (noise-perturbed unless
    /// frozen).
    pub fn rank(&mut self, q_values: &[f32], rng: &mut Rng) -> Vec<usize> {
        if self.frozen {
            greedy_rank(q_values)
        } else {
            self.noise.rank(q_values, rng)
        }
    }

    /// Decides according to the configured mode: a single index (wrapped in a one-element
    /// vector) for [`RecommendationMode::AssignOne`], a full ranking otherwise.
    pub fn decide(&mut self, q_values: &[f32], rng: &mut Rng) -> Vec<usize> {
        match self.mode {
            RecommendationMode::AssignOne => {
                self.select_single(q_values, rng).into_iter().collect()
            }
            RecommendationMode::RankList => self.rank(q_values, rng),
        }
    }
}

/// Checkpoint format: the ε-greedy explorer (schedule + step), the Gaussian-noise
/// explorer (probability + schedule + step), then the frozen flag. The mode is
/// configuration and is not stored.
impl crowd_ckpt::SaveState for Explorer {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.epsilon);
        w.save(&self.noise);
        w.put_bool(self.frozen);
    }
}

impl crowd_ckpt::LoadState for Explorer {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        r.load(&mut self.epsilon)?;
        r.load(&mut self.noise)?;
        self.frozen = r.take_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mode: RecommendationMode) -> DdqnConfig {
        DdqnConfig {
            mode,
            exploration_anneal_steps: 100,
            ..DdqnConfig::default()
        }
    }

    #[test]
    fn assign_mode_returns_single_index() {
        let mut e = Explorer::new(&config(RecommendationMode::AssignOne));
        let mut rng = Rng::seed_from(0);
        let decision = e.decide(&[0.1, 0.9, 0.2], &mut rng);
        assert_eq!(decision.len(), 1);
        assert!(decision[0] < 3);
        assert!(e.decide(&[], &mut rng).is_empty());
    }

    #[test]
    fn rank_mode_returns_full_permutation() {
        let mut e = Explorer::new(&config(RecommendationMode::RankList));
        let mut rng = Rng::seed_from(1);
        let decision = e.decide(&[0.1, 0.9, 0.2, 0.4], &mut rng);
        let mut sorted = decision.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn frozen_explorer_is_greedy() {
        let mut e = Explorer::new(&config(RecommendationMode::RankList));
        e.freeze();
        assert!(e.is_frozen());
        let mut rng = Rng::seed_from(2);
        for _ in 0..20 {
            assert_eq!(e.decide(&[0.1, 0.9, 0.2], &mut rng), vec![1, 2, 0]);
        }
        e.unfreeze();
        assert!(!e.is_frozen());
    }

    #[test]
    fn frozen_single_selection_is_argmax() {
        let mut e = Explorer::new(&config(RecommendationMode::AssignOne));
        e.freeze();
        let mut rng = Rng::seed_from(3);
        assert_eq!(e.select_single(&[0.5, 2.0, 1.0], &mut rng), Some(1));
        assert_eq!(e.select_single(&[], &mut rng), None);
    }
}
