//! The double-DQN learner with the revised expected-future-state target (paper Eq. 3/4 for
//! MDP(w) and Eq. 6/7 for MDP(r)).
//!
//! For every sampled transition the target is
//!
//! ```text
//! y_i = r_i + γ · Σ_b Pr(branch b) · Q̃(s_b, argmax_a Q(s_b, a; θ); θ̃)
//! ```
//!
//! i.e. the action in each predicted future branch is *selected* by the online network θ and
//! *evaluated* by the target network θ̃ (double Q-learning, van Hasselt et al.), and the
//! expectation runs over the explicit future-state branches produced by the predictors
//! instead of a single observed next state. Sampling uses prioritized experience replay with
//! importance-sampling weights.
//!
//! # One autograd graph per update
//!
//! [`DqnLearner::learn`] is *packed*: the whole minibatch is one graph. The sampled
//! transitions' states go through [`SetQNetwork::forward_batch`] (one `[Σ pool sizes, 1]`
//! Q column on the tape), the loss is one in-graph importance-weighted masked MSE
//! (`crowd_autograd::Graph::weighted_masked_mse`), and all double-DQN targets come from
//! **two** packed passes — one [`SetQNetwork::infer_batch`] over every live future branch
//! of every sampled transition for the online argmax, one over the same branches for the
//! target-network evaluation. One `backward` then yields every parameter's minibatch
//! gradient.
//!
//! [`DqnLearner::learn_sequential`] retains the original per-transition loop (B separate
//! graphs, per-branch single-state inference) as the frozen reference path — like the
//! owned-compat `apply_owned` stepping path, it exists only for the equivalence suite
//! (`tests/packed_learning_equivalence.rs`) and the training benchmark
//! (`crates/bench/benches/batched_training.rs`). The equivalence contract: from identical
//! learner state, both paths report bit-identical loss / TD errors and write bit-identical
//! replay priorities (packed forward values equal per-state forward values bit for bit, and
//! the loss is accumulated in the same f32 order); post-update *parameters* agree only to
//! documented f32 tolerance, because the packed backward legitimately sums gradient
//! contributions across the minibatch in a different association order than the
//! per-transition accumulation loop.

use crate::config::DdqnConfig;
use crate::memory::Transition;
use crate::qnetwork::{argmax_of, SetQNetwork};
use crate::state::StateTensor;
use crowd_autograd::Graph;
use crowd_nn::{Adam, GraphBinding, Optimizer, ParamStore};
use crowd_rl_kit::PrioritizedReplay;
use crowd_tensor::{Matrix, Rng, ThreadPool};
use std::time::{Duration, Instant};

/// Result alias from the numeric substrate.
pub type Result<T> = crowd_tensor::Result<T>;

/// Summary of one learning step.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnReport {
    /// Mean squared TD error over the minibatch (importance-weighted).
    pub loss: f32,
    /// Mean absolute TD error.
    pub mean_td_error: f32,
    /// Number of transitions in the minibatch.
    pub batch: usize,
}

/// A self-contained double-DQN learner for one of the two MDPs.
///
/// The learner **owns everything a gradient update touches**: networks, optimizer
/// moments, replay memory with priorities, *and its own minibatch-sampling RNG stream*
/// (seeded from the constructor RNG). That self-containment is what makes the dual
/// agent's two learners safe to run on two pool workers concurrently
/// (`DdqnAgent::observe` dispatches them via `crowd_parallel::ThreadPool::par_join`): no
/// state is shared, each learner's `sample_refs` borrow of its replay memory stays on its
/// own worker, and the update is deterministic at any thread count.
///
/// `Clone` duplicates the complete learner state — including the sampling RNG — which is
/// how the equivalence suite runs the packed and the sequential path from bit-identical
/// starting points.
#[derive(Debug, Clone)]
pub struct DqnLearner {
    net: SetQNetwork,
    store: ParamStore,
    target_store: ParamStore,
    optimizer: Adam,
    memory: PrioritizedReplay<Transition>,
    /// Minibatch-sampling RNG — owned so two learners never contend for one stream.
    rng: Rng,
    /// Pool for the packed forward/backward kernels inside `learn` (serial by default).
    pool: ThreadPool,
    gamma: f32,
    batch_size: usize,
    target_sync_every: u64,
    updates: u64,
    max_tasks: usize,
    learn_time: Duration,
    /// Every update's reported loss, in update order — the "loss stream" the parallel
    /// equivalence suite compares bit for bit across thread counts (4 bytes per update).
    losses: Vec<f32>,
}

impl DqnLearner {
    /// Creates a learner whose Q-network takes `input_dim`-wide state rows. `rng` seeds
    /// the network initialisation and the learner's own minibatch-sampling stream.
    pub fn new(config: &DdqnConfig, input_dim: usize, gamma: f32, rng: &mut Rng) -> Self {
        let mut store = ParamStore::new();
        let net = SetQNetwork::new(
            &mut store,
            "qnet",
            input_dim,
            config.hidden_dim,
            config.num_heads,
            rng,
        );
        let sample_rng = Rng::seed_from(rng.next_u64());
        let target_store = store.clone();
        DqnLearner {
            net,
            store,
            target_store,
            optimizer: Adam::new(config.learning_rate).with_grad_clip(config.grad_clip),
            memory: PrioritizedReplay::new(config.buffer_size),
            rng: sample_rng,
            pool: ThreadPool::serial(),
            gamma,
            batch_size: config.batch_size,
            target_sync_every: config.target_sync_every,
            updates: 0,
            max_tasks: config.max_tasks,
            learn_time: Duration::ZERO,
            losses: Vec::new(),
        }
    }

    /// Hands the learner a pool for the packed kernels inside [`DqnLearner::learn`] (the
    /// two target `infer_batch` passes and the training graph). Results stay
    /// bit-identical at any thread count; only wall clock changes.
    pub fn set_thread_pool(&mut self, pool: ThreadPool) {
        self.pool = pool;
    }

    /// The underlying Q-network (read-only access for diagnostics and benches).
    pub fn network(&self) -> &SetQNetwork {
        &self.net
    }

    /// Online parameters θ.
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Number of learning steps performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Wall time spent inside [`DqnLearner::learn`] / [`DqnLearner::learn_sequential`] so
    /// far (the gradient-update slice of the agent's `observe`), paired with the update
    /// count. Surfaced per policy through `crowd_sim::Policy::learner_timing` so the
    /// efficiency binaries can report per-update learner latency alongside decision time.
    pub fn learn_timing(&self) -> (u64, Duration) {
        (self.updates, self.learn_time)
    }

    /// Current sampling priority of replay `slot` (see
    /// `crowd_rl_kit::PrioritizedReplay::priority`); exposed so the packed-vs-sequential
    /// equivalence suite can compare two learners' replay state bit for bit.
    pub fn replay_priority(&self, slot: usize) -> f64 {
        self.memory.priority(slot)
    }

    /// Every update's reported loss so far, in update order — the loss stream the
    /// parallel equivalence suite (`tests/parallel_equivalence.rs`) asserts bit-identical
    /// across thread counts.
    pub fn loss_history(&self) -> &[f32] {
        &self.losses
    }

    /// Non-destructive probe of the minibatch-sampling RNG: the next `u64` the stream
    /// *would* produce, without advancing it. Two learners that consumed their RNGs
    /// identically probe identically — the post-run check of the equivalence suites.
    pub fn rng_probe(&self) -> u64 {
        self.rng.clone().next_u64()
    }

    /// Number of transitions currently stored.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Q values of the online network for a state (one per real task row).
    pub fn q_values(&self, state: &crate::state::StateTensor) -> Result<Vec<f32>> {
        self.net.infer(&self.store, state)
    }

    /// Q values of the online network for `N` states in one packed forward pass
    /// ([`SetQNetwork::infer_batch_par`] on the learner's pool); each entry is
    /// bit-identical to [`DqnLearner::q_values`] on that state alone, at any thread
    /// count.
    pub fn q_values_batch(&self, states: &[&crate::state::StateTensor]) -> Result<Vec<Vec<f32>>> {
        self.net.infer_batch_par(&self.store, states, self.pool)
    }

    /// Stores a transition with maximal priority.
    pub fn store_transition(&mut self, transition: Transition) {
        self.memory.push(transition);
    }

    /// Double-DQN target for one transition, branch by branch (the sequential reference;
    /// the packed path batches this across the whole minibatch).
    fn target_for(&self, transition: &Transition) -> Result<f32> {
        let mut future = 0.0f32;
        for branch in transition.branches.iter() {
            if branch.state.real_tasks == 0 || branch.probability <= 0.0 {
                continue;
            }
            // Action selection by the online network, evaluation by the target network.
            if let Some(best_row) = self.net.argmax_q(&self.store, &branch.state)? {
                let target_q = self.net.infer(&self.target_store, &branch.state)?;
                future += branch.probability * target_q[best_row];
            }
        }
        Ok(transition.reward + self.gamma * future)
    }

    /// Runs one prioritized minibatch update as **one** autograd graph; returns `None` when
    /// the memory holds fewer transitions than the batch size.
    ///
    /// One `learn` call performs exactly three network passes regardless of the batch size
    /// or the number of future branches:
    ///
    /// 1. one [`SetQNetwork::infer_batch`] over every live future branch of every sampled
    ///    transition with the online parameters θ — the double-DQN action *selection*;
    /// 2. one `infer_batch` over the same branches with the target parameters θ̃ — the
    ///    action *evaluation*; the targets
    ///    `y_i = r_i + γ · Σ_b Pr(b) · Q̃(s_b, argmax_a Q(s_b, a))` are then assembled
    ///    branch-by-branch in the sequential path's exact accumulation order;
    /// 3. one [`SetQNetwork::forward_batch`] packing all sampled states' real task rows
    ///    into a single `[Σ pool sizes, 1]` Q column on the tape, followed by one in-graph
    ///    importance-weighted masked MSE and one backward sweep.
    ///
    /// The sampled transitions are *borrowed* from the replay memory
    /// (`PrioritizedReplay::sample_refs`) — no per-update clones of state tensors or
    /// branch distributions; the minibatch is drawn from the learner's **own** sampling
    /// RNG, so two learners can update concurrently without sharing a stream. The packed
    /// kernels run on the learner's pool ([`DqnLearner::set_thread_pool`]) and are
    /// bit-identical at any thread count. Reported loss / TD errors and the written
    /// replay priorities are bit-identical to [`DqnLearner::learn_sequential`] from the
    /// same learner state; updated parameters match to f32 tolerance (see the module docs
    /// for why).
    pub fn learn(&mut self) -> Result<Option<LearnReport>> {
        if self.memory.len() < self.batch_size {
            return Ok(None);
        }
        let start = Instant::now();
        let (grads, priorities, report) = {
            let sampled = self.memory.sample_refs(self.batch_size, &mut self.rng);
            let batch = sampled.len();

            // Double-DQN targets: flatten every live branch of every sampled transition
            // into one state list, score it once per network, then fold the expectation
            // per transition in branch order (the sequential path's order).
            let mut branch_states: Vec<&StateTensor> = Vec::new();
            let mut branch_spans: Vec<(usize, usize)> = Vec::with_capacity(batch);
            let mut branch_probs: Vec<f32> = Vec::new();
            for (_, transition) in &sampled {
                let span_start = branch_states.len();
                for branch in transition.branches.iter() {
                    if branch.state.real_tasks == 0 || branch.probability <= 0.0 {
                        continue;
                    }
                    branch_states.push(&branch.state);
                    branch_probs.push(branch.probability);
                }
                branch_spans.push((span_start, branch_states.len()));
            }
            let online_q = self
                .net
                .infer_batch_par(&self.store, &branch_states, self.pool)?;
            let target_q =
                self.net
                    .infer_batch_par(&self.target_store, &branch_states, self.pool)?;
            let targets: Vec<f32> = sampled
                .iter()
                .zip(&branch_spans)
                .map(|((_, transition), &(lo, hi))| {
                    let mut future = 0.0f32;
                    for b in lo..hi {
                        if let Some(best_row) = argmax_of(&online_q[b]) {
                            future += branch_probs[b] * target_q[b][best_row];
                        }
                    }
                    transition.reward + self.gamma * future
                })
                .collect();

            // One packed graph for the whole minibatch, on the learner's pool.
            let mut graph = Graph::with_pool(self.pool);
            let mut binding = GraphBinding::new();
            let states: Vec<&StateTensor> = sampled.iter().map(|(_, t)| &t.state).collect();
            let (q_column, segments) =
                self.net
                    .forward_batch(&mut graph, &self.store, &mut binding, &states)?;
            let total_rows = segments.last().map_or(0, |seg| seg.end());
            let mut mask = Matrix::zeros(total_rows, 1);
            let mut target = Matrix::zeros(total_rows, 1);
            let mut weights = Matrix::zeros(total_rows, 1);
            let mut total_abs_td = 0.0f32;
            let mut priorities = Vec::with_capacity(batch);
            for (((sample, transition), seg), &target_value) in
                sampled.iter().zip(&segments).zip(&targets)
            {
                // A stored transition's action row always indexes a real task row; fail
                // loudly (in release too) rather than silently train a neighbouring
                // segment's row on out-of-contract data.
                if transition.action_row >= seg.rows {
                    return Err(crowd_tensor::TensorError::IndexOutOfBounds {
                        op: "learn (action_row past its packed segment)",
                        index: transition.action_row,
                        bound: seg.rows,
                    });
                }
                let row = seg.start + transition.action_row;
                mask.set(row, 0, 1.0);
                target.set(row, 0, target_value);
                weights.set(row, 0, sample.weight);
                let td_error = target_value - graph.value(q_column).get(row, 0);
                total_abs_td += td_error.abs();
                priorities.push((sample.index, td_error));
            }

            let loss =
                graph.weighted_masked_mse(q_column, &target, &mask, &weights, batch as f32)?;
            let loss_value = graph.value(loss).get(0, 0);
            graph.backward(loss)?;
            let grads = binding.gradients(&graph);
            let report = LearnReport {
                loss: loss_value,
                mean_td_error: total_abs_td * (1.0 / batch as f32),
                batch,
            };
            (grads, priorities, report)
        };

        self.optimizer.step(&mut self.store, &grads)?;
        for (slot, td_error) in priorities {
            self.memory.update_priority(slot, td_error);
        }
        self.losses.push(report.loss);
        self.finish_update();
        self.learn_time += start.elapsed();
        Ok(Some(report))
    }

    /// The pre-packing per-transition update loop: `B` separate graphs per minibatch, one
    /// forward + backward each, and per-branch single-state target inference. Retained —
    /// like the owned-compat `Platform::apply_owned` path — **only** as the reference for
    /// `tests/packed_learning_equivalence.rs` and the old-vs-new comparison in
    /// `crates/bench/benches/batched_training.rs`; new code must call
    /// [`DqnLearner::learn`]. Samples from the same owned RNG stream as `learn` (so a
    /// cloned learner running this path consumes the stream identically) and always runs
    /// serial kernels — it is the single-threaded reference.
    pub fn learn_sequential(&mut self) -> Result<Option<LearnReport>> {
        if self.memory.len() < self.batch_size {
            return Ok(None);
        }
        let start = Instant::now();
        let samples = self.memory.sample(self.batch_size, &mut self.rng);
        let mut grad_accumulator: Vec<Option<(crowd_nn::ParamId, Matrix)>> = Vec::new();
        let mut total_loss = 0.0f32;
        let mut total_abs_td = 0.0f32;
        let mut priorities = Vec::with_capacity(samples.len());

        for sample in &samples {
            let transition = self
                .memory
                .get(sample.index)
                .expect("sampled slot must be occupied")
                .clone();
            let target_value = self.target_for(&transition)?;

            let mut graph = Graph::new();
            let mut binding = GraphBinding::new();
            let q_column =
                self.net
                    .forward(&mut graph, &self.store, &mut binding, &transition.state)?;
            let current_q = graph.value(q_column).get(transition.action_row, 0);
            let td_error = target_value - current_q;

            let (mask, target) =
                SetQNetwork::action_target(self.max_tasks, transition.action_row, target_value);
            let loss = graph.masked_mse(q_column, &target, &mask)?;
            // Importance-sampling weight scales the loss (and therefore the gradient).
            let weighted_loss = graph.scale(loss, sample.weight);
            total_loss += graph.value(weighted_loss).get(0, 0);
            total_abs_td += td_error.abs();
            graph.backward(weighted_loss)?;

            for (pid, grad) in binding.gradients(&graph) {
                let idx = pid.index();
                if grad_accumulator.len() <= idx {
                    grad_accumulator.resize_with(idx + 1, || None);
                }
                match &mut grad_accumulator[idx] {
                    Some((_, acc)) => acc.add_assign(&grad)?,
                    slot @ None => *slot = Some((pid, grad)),
                }
            }
            priorities.push((sample.index, td_error));
        }

        let batch = samples.len();
        let scale = 1.0 / batch as f32;
        let grads: Vec<(crowd_nn::ParamId, Matrix)> = grad_accumulator
            .into_iter()
            .flatten()
            .map(|(pid, grad)| (pid, grad.scale(scale)))
            .collect();
        self.optimizer.step(&mut self.store, &grads)?;

        for (slot, td_error) in priorities {
            self.memory.update_priority(slot, td_error);
        }
        let report = LearnReport {
            loss: total_loss * scale,
            mean_td_error: total_abs_td * scale,
            batch,
        };
        self.losses.push(report.loss);
        self.finish_update();
        self.learn_time += start.elapsed();

        Ok(Some(report))
    }

    /// Shared epilogue of both update paths: bump the counter and hard-sync the target
    /// network on schedule.
    fn finish_update(&mut self) {
        self.updates += 1;
        if self.updates.is_multiple_of(self.target_sync_every) {
            self.sync_target();
        }
    }

    /// Hard-copies θ̃ ← θ.
    pub fn sync_target(&mut self) {
        self.target_store.copy_from(&self.store);
    }
}

/// Checkpoint format: sampling RNG, update counter (`u64`), accumulated learn wall time,
/// the loss stream, online parameters θ, target parameters θ̃, the Adam state (moments +
/// step), and the prioritized replay memory (transitions, priorities, sum tree, β).
///
/// Together these are *everything* `learn` reads, so a restored learner's next update —
/// which minibatch it samples, the targets, the loss bits, the priority writes, the
/// post-step parameters — is bit-identical to the uninterrupted learner's. Network
/// architecture and hyper-parameters come from the construction config; the parameter
/// stores and replay capacity validate the snapshot against them on load.
impl crowd_ckpt::SaveState for DqnLearner {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.rng);
        w.put_u64(self.updates);
        w.put_duration(self.learn_time);
        w.put_f32_slice(&self.losses);
        w.save(&self.store);
        w.save(&self.target_store);
        w.save(&self.optimizer);
        w.save(&self.memory);
    }
}

impl crowd_ckpt::LoadState for DqnLearner {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        r.load(&mut self.rng)?;
        self.updates = r.take_u64()?;
        self.learn_time = r.take_duration()?;
        self.losses = r.take_f32_vec()?;
        r.load(&mut self.store)?;
        r.load(&mut self.target_store)?;
        r.load(&mut self.optimizer)?;
        r.load(&mut self.memory)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::FutureBranch;
    use crate::state::{StateKind, StateTransformer};
    use crowd_sim::{TaskId, TaskSnapshot};
    use std::sync::Arc;

    fn snapshot(id: u32, value: f32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![value, 1.0 - value, 0.3],
            quality: 0.0,
            award: 10.0,
            category: 0,
            domain: 0,
            deadline: 10_000,
            completions: 0,
        }
    }

    fn config() -> DdqnConfig {
        DdqnConfig {
            max_tasks: 6,
            hidden_dim: 16,
            num_heads: 2,
            batch_size: 8,
            buffer_size: 64,
            target_sync_every: 10,
            // A larger learning rate than the paper's 0.001 keeps these unit tests fast.
            learning_rate: 0.02,
            ..DdqnConfig::default()
        }
    }

    fn transformer() -> StateTransformer {
        StateTransformer::new(StateKind::Worker, 6, 3, 2)
    }

    /// A deterministic bandit-like dataset: action row 0 always pays 1, row 1 pays 0.
    fn fill_memory(learner: &mut DqnLearner, tf: &StateTransformer) {
        let snaps = vec![snapshot(0, 0.9), snapshot(1, 0.1)];
        let state = tf.build(&snaps, &[0.5, 0.5], 0.5);
        let branches = Arc::new(vec![FutureBranch {
            probability: 1.0,
            state: state.clone(),
        }]);
        for _ in 0..16 {
            learner.store_transition(Transition {
                state: state.clone(),
                action_row: 0,
                reward: 1.0,
                branches: Arc::clone(&branches),
            });
            learner.store_transition(Transition {
                state: state.clone(),
                action_row: 1,
                reward: 0.0,
                branches: Arc::clone(&branches),
            });
        }
    }

    #[test]
    fn learn_requires_enough_transitions() {
        let cfg = config();
        let mut rng = Rng::seed_from(0);
        let mut learner = DqnLearner::new(&cfg, 5, 0.3, &mut rng);
        assert!(learner.learn().unwrap().is_none());
        assert_eq!(learner.memory_len(), 0);
    }

    #[test]
    fn learning_orders_actions_by_reward() {
        let cfg = config();
        let tf = transformer();
        let mut rng = Rng::seed_from(1);
        let mut learner = DqnLearner::new(&cfg, 5, 0.3, &mut rng);
        fill_memory(&mut learner, &tf);
        for _ in 0..400 {
            learner.learn().unwrap();
        }
        let snaps = vec![snapshot(0, 0.9), snapshot(1, 0.1)];
        let state = tf.build(&snaps, &[0.5, 0.5], 0.5);
        let q = learner.q_values(&state).unwrap();
        assert!(
            q[0] > q[1] + 0.2,
            "rewarded action should have clearly higher Q: {q:?}"
        );
        assert!(learner.updates() >= 100);
    }

    #[test]
    fn discount_propagates_future_value() {
        // A transition with reward 0 whose future branch always pays 1 (because the future
        // state's best action was trained to be worth ~1/(1-γ)) ends up with positive Q.
        let cfg = config();
        let tf = transformer();
        let mut rng = Rng::seed_from(2);
        let mut learner = DqnLearner::new(&cfg, 5, 0.5, &mut rng);
        fill_memory(&mut learner, &tf);
        for _ in 0..600 {
            learner.learn().unwrap();
        }
        let snaps = vec![snapshot(0, 0.9), snapshot(1, 0.1)];
        let state = tf.build(&snaps, &[0.5, 0.5], 0.5);
        let q = learner.q_values(&state).unwrap();
        // Q(s, a_rewarded) should exceed the immediate reward of 1 thanks to bootstrapping:
        // with γ = 0.5 the fixed point is around 1 / (1 - 0.5·1) ≈ 1.3–2 depending on the
        // failed action's value. We only require it to clearly exceed 1.
        assert!(
            q[0] > 1.05,
            "bootstrapped Q should exceed immediate reward, got {q:?}"
        );
    }

    #[test]
    fn report_reflects_batch_and_loss_decreases() {
        let cfg = config();
        let tf = transformer();
        let mut rng = Rng::seed_from(3);
        let mut learner = DqnLearner::new(&cfg, 5, 0.3, &mut rng);
        fill_memory(&mut learner, &tf);
        let first = learner.learn().unwrap().unwrap();
        assert_eq!(first.batch, cfg.batch_size);
        for _ in 0..100 {
            learner.learn().unwrap();
        }
        let later = learner.learn().unwrap().unwrap();
        assert!(
            later.mean_td_error < first.mean_td_error,
            "TD error should shrink: {} -> {}",
            first.mean_td_error,
            later.mean_td_error
        );
    }

    #[test]
    fn packed_learn_matches_sequential_from_identical_state() {
        // One update from bit-identical learner state: the packed path must report the
        // same loss / TD error bits and write the same replay priorities as the
        // per-transition loop. (The 50-update sweep across both MDPs lives in
        // tests/packed_learning_equivalence.rs.)
        let cfg = config();
        let tf = transformer();
        let mut rng = Rng::seed_from(5);
        let mut packed = DqnLearner::new(&cfg, 5, 0.3, &mut rng);
        fill_memory(&mut packed, &tf);
        // The clone carries the sampling RNG, so both paths draw the same minibatch.
        let mut sequential = packed.clone();
        let packed_report = packed.learn().unwrap().unwrap();
        let seq_report = sequential.learn_sequential().unwrap().unwrap();
        assert_eq!(packed_report.batch, seq_report.batch);
        assert_eq!(
            packed_report.loss.to_bits(),
            seq_report.loss.to_bits(),
            "loss diverged: {} vs {}",
            packed_report.loss,
            seq_report.loss
        );
        assert_eq!(
            packed_report.mean_td_error.to_bits(),
            seq_report.mean_td_error.to_bits(),
            "TD error diverged"
        );
        for slot in 0..cfg.buffer_size {
            assert_eq!(
                packed.replay_priority(slot).to_bits(),
                sequential.replay_priority(slot).to_bits(),
                "replay priority diverged at slot {slot}"
            );
        }
        // Both paths consumed their sampling RNG identically.
        assert_eq!(packed.rng_probe(), sequential.rng_probe());
        // And both recorded the same loss stream entry.
        assert_eq!(packed.loss_history().len(), 1);
        assert_eq!(
            packed.loss_history()[0].to_bits(),
            sequential.loss_history()[0].to_bits()
        );
        // Parameters agree to f32 tolerance (gradient summation order differs).
        for ((_, name, a), (_, _, b)) in packed.params().iter().zip(sequential.params().iter()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!(
                    (x - y).abs() <= 1e-4_f32.max(x.abs() * 1e-3),
                    "param {name} diverged beyond tolerance: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn pooled_learn_is_bit_identical_to_serial_learn() {
        // Unlike packed-vs-sequential (parameters only within tolerance), pooled-vs-serial
        // is the SAME algorithm on row-sharded kernels: everything — loss stream, replay
        // priorities, post-update parameters, RNG stream — must match to the bit.
        let cfg = config();
        let tf = transformer();
        let mut rng = Rng::seed_from(7);
        let mut serial = DqnLearner::new(&cfg, 5, 0.3, &mut rng);
        fill_memory(&mut serial, &tf);
        let mut pooled = serial.clone();
        pooled.set_thread_pool(ThreadPool::new(8));
        for update in 0..5 {
            let a = serial.learn().unwrap().unwrap();
            let b = pooled.learn().unwrap().unwrap();
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "pooled loss diverged at update {update}"
            );
        }
        for slot in 0..cfg.buffer_size {
            assert_eq!(
                serial.replay_priority(slot).to_bits(),
                pooled.replay_priority(slot).to_bits()
            );
        }
        for ((_, name, a), (_, _, b)) in serial.params().iter().zip(pooled.params().iter()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "param {name} not bit-identical under the pool"
                );
            }
        }
        assert_eq!(serial.rng_probe(), pooled.rng_probe());
        assert_eq!(serial.loss_history(), pooled.loss_history());
    }

    #[test]
    fn learn_timing_accumulates_wall_time() {
        let cfg = config();
        let tf = transformer();
        let mut rng = Rng::seed_from(6);
        let mut learner = DqnLearner::new(&cfg, 5, 0.3, &mut rng);
        assert_eq!(learner.learn_timing(), (0, std::time::Duration::ZERO));
        fill_memory(&mut learner, &tf);
        learner.learn().unwrap().unwrap();
        let (updates, total) = learner.learn_timing();
        assert_eq!(updates, 1);
        assert!(total > std::time::Duration::ZERO);
    }

    #[test]
    fn empty_future_branches_reduce_to_supervised_regression() {
        let cfg = config();
        let tf = transformer();
        let mut rng = Rng::seed_from(4);
        let mut learner = DqnLearner::new(&cfg, 5, 0.9, &mut rng);
        let state = tf.build(&[snapshot(0, 0.7)], &[0.2, 0.8], 0.5);
        for _ in 0..16 {
            learner.store_transition(Transition {
                state: state.clone(),
                action_row: 0,
                reward: 0.5,
                branches: Arc::new(Vec::new()),
            });
        }
        for _ in 0..150 {
            learner.learn().unwrap();
        }
        let q = learner.q_values(&state).unwrap()[0];
        assert!(
            (q - 0.5).abs() < 0.1,
            "Q should converge to the reward, got {q}"
        );
    }
}
