//! Future-state predictors (paper Sec. IV-D2 and V-D2).
//!
//! After a feedback is received for `(s_i, a_i)`, the framework does not wait to observe the
//! realised `s_{i+1}` (which for MDP(w) may be days away, and for MDP(r) would make
//! transitions extremely sparse). Instead it predicts the distribution of the future state
//! explicitly from the arrival statistics:
//!
//! * the next timestamp follows the φ(g) (same worker, MDP(w)) or ϕ(g) (any worker, MDP(r))
//!   gap histogram;
//! * the pool `T_{i+1}` differs from `T_i` only through the tasks that expire before the
//!   next timestamp, so breakpoints are placed at the deadlines of the currently available
//!   tasks;
//! * the worker feature is the worker's updated feature (MDP(w)) or the expectation of the
//!   next worker's feature under the arrival mixture (MDP(r), the paper's speed-up);
//! * the completed task's quality is bumped by the observed quality gain (MDP(r)).

use crate::arrival_stats::ArrivalStats;
use crate::memory::FutureBranch;
use crate::state::StateTransformer;
use crowd_sim::{ArrivalView, FeedbackView, TaskSnapshot};

/// Builds the future pool snapshots implied by the feedback: identical to the current pool,
/// except that the completed task's quality reflects the quality gain and its completion
/// count grows by one. This gathers owned snapshots — the predictors synthesise
/// hypothetical pools, which is inherently an owning operation and runs per feedback, not
/// per decision.
fn future_pool(view: &ArrivalView<'_>, feedback: &FeedbackView<'_>) -> Vec<TaskSnapshot> {
    let mut pool: Vec<TaskSnapshot> = view.tasks().map(|t| t.to_snapshot()).collect();
    if let Some((task, _)) = feedback.completed {
        if let Some(snap) = pool.iter_mut().find(|s| s.id == task) {
            snap.quality += feedback.quality_gain;
            snap.completions += 1;
        }
    }
    pool
}

/// One expiry interval: gaps in `[start, end)` minutes leave `survivors` tasks available.
#[derive(Debug, Clone, PartialEq)]
struct ExpiryInterval {
    start: u64,
    end: u64,
    /// Number of leading (earliest-deadline) tasks that have expired in this interval.
    expired_prefix: usize,
    mass: f64,
}

/// Computes the expiry intervals of a pool over `[1, horizon)` minutes from `now`, with the
/// probability mass of each interval taken from `mass_fn`.
fn expiry_intervals(
    deadlines_sorted: &[u64],
    now: u64,
    horizon: u64,
    mass_fn: impl Fn(u64, u64) -> f64,
) -> Vec<ExpiryInterval> {
    // Breakpoints are the task deadlines that fall inside the horizon window.
    let mut breakpoints: Vec<u64> = deadlines_sorted
        .iter()
        .map(|&d| d.saturating_sub(now))
        .filter(|&gap| gap > 0 && gap < horizon)
        .collect();
    breakpoints.dedup();
    let mut intervals = Vec::with_capacity(breakpoints.len() + 1);
    let mut start = 0u64;
    for &bp in &breakpoints {
        intervals.push(ExpiryInterval {
            start,
            end: bp,
            expired_prefix: deadlines_sorted
                .iter()
                .take_while(|&&d| d.saturating_sub(now) <= start)
                .count(),
            mass: mass_fn(start, bp),
        });
        start = bp;
    }
    intervals.push(ExpiryInterval {
        start,
        end: horizon,
        expired_prefix: deadlines_sorted
            .iter()
            .take_while(|&&d| d.saturating_sub(now) <= start)
            .count(),
        mass: mass_fn(start, horizon),
    });
    intervals.retain(|i| i.mass > 1e-9 || i.start == 0);
    intervals
}

/// Greedily merges the lowest-mass interval into its higher-mass neighbour until at most
/// `max_branches` remain. The merged interval keeps the survivor count of whichever side had
/// more mass, so the expectation is distorted as little as possible.
fn merge_intervals(mut intervals: Vec<ExpiryInterval>, max_branches: usize) -> Vec<ExpiryInterval> {
    while intervals.len() > max_branches.max(1) {
        let (idx, _) = intervals
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.mass
                    .partial_cmp(&b.1.mass)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty intervals");
        let neighbour = if idx == 0 {
            1
        } else if idx == intervals.len() - 1 || intervals[idx - 1].mass >= intervals[idx + 1].mass {
            idx - 1
        } else {
            idx + 1
        };
        let (keep, remove) = if intervals[neighbour].mass >= intervals[idx].mass {
            (neighbour, idx)
        } else {
            (idx, neighbour)
        };
        let removed_mass = intervals[remove].mass;
        let removed_start = intervals[remove].start;
        let removed_end = intervals[remove].end;
        let kept = &mut intervals[keep];
        kept.mass += removed_mass;
        kept.start = kept.start.min(removed_start);
        kept.end = kept.end.max(removed_end);
        intervals.remove(remove);
    }
    intervals
}

/// Builds the MDP(w) future-state branches: the same worker returns with gap ~ φ(g), tasks
/// whose deadlines pass in the meantime disappear, and the worker's feature is the
/// post-completion feature.
pub fn worker_future_branches(
    transformer: &StateTransformer,
    stats: &ArrivalStats,
    view: &ArrivalView<'_>,
    feedback: &FeedbackView<'_>,
    horizon: u64,
    max_branches: usize,
) -> Vec<FutureBranch> {
    build_branches(
        transformer,
        view,
        feedback,
        feedback.worker_feature_after,
        view.worker_quality,
        horizon,
        max_branches,
        |from, to| stats.same_worker_mass_between(from, to),
    )
}

/// Builds the MDP(r) future-state branches: the *next* worker arrives with gap ~ ϕ(g); the
/// expected next-worker feature and quality stand in for the unknown arrival (the paper's
/// expectation speed-up).
#[allow(clippy::too_many_arguments)]
pub fn requester_future_branches(
    transformer: &StateTransformer,
    stats: &ArrivalStats,
    view: &ArrivalView<'_>,
    feedback: &FeedbackView<'_>,
    expected_next_worker_quality: f32,
    horizon: u64,
    max_branches: usize,
) -> Vec<FutureBranch> {
    let next_time = view.time + stats.mean_consecutive_gap().round().max(1.0) as u64;
    let expected_feature = stats.expected_next_worker_feature(next_time);
    build_branches(
        transformer,
        view,
        feedback,
        &expected_feature,
        expected_next_worker_quality,
        horizon,
        max_branches,
        |from, to| stats.consecutive_mass_between(from, to),
    )
}

#[allow(clippy::too_many_arguments)]
fn build_branches(
    transformer: &StateTransformer,
    view: &ArrivalView<'_>,
    feedback: &FeedbackView<'_>,
    future_worker_feature: &[f32],
    future_worker_quality: f32,
    horizon: u64,
    max_branches: usize,
    mass_fn: impl Fn(u64, u64) -> f64,
) -> Vec<FutureBranch> {
    let mut pool = future_pool(view, feedback);
    // Sort by deadline so "the first k tasks expired" is a prefix.
    pool.sort_by_key(|s| s.deadline);
    let deadlines: Vec<u64> = pool.iter().map(|s| s.deadline).collect();
    let intervals = merge_intervals(
        expiry_intervals(&deadlines, view.time, horizon, mass_fn),
        max_branches,
    );
    intervals
        .into_iter()
        .filter(|interval| interval.mass > 0.0)
        .map(|interval| {
            let survivors = &pool[interval.expired_prefix.min(pool.len())..];
            FutureBranch {
                probability: interval.mass as f32,
                state: transformer.build(survivors, future_worker_feature, future_worker_quality),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateKind;
    use crowd_sim::{ArrivalContext, PolicyFeedback, TaskId, WorkerId};

    fn snapshot(id: u32, deadline: u64) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![1.0, 0.0, 0.0],
            quality: 0.2,
            award: 10.0,
            category: 0,
            domain: 0,
            deadline,
            completions: 1,
        }
    }

    fn context(deadlines: &[u64]) -> ArrivalContext {
        ArrivalContext {
            time: 1000,
            worker_id: WorkerId(0),
            worker_feature: vec![0.5, 0.5, 0.0],
            worker_quality: 0.7,
            is_new_worker: false,
            available: deadlines
                .iter()
                .enumerate()
                .map(|(i, &d)| snapshot(i as u32, d))
                .collect(),
        }
    }

    fn feedback(ctx: &ArrivalContext, completed: Option<u32>) -> PolicyFeedback {
        PolicyFeedback {
            time: ctx.time,
            worker_id: ctx.worker_id,
            worker_quality: ctx.worker_quality,
            shown: ctx.available.iter().map(|s| s.id).collect(),
            completed: completed.map(|id| (TaskId(id), 0)),
            quality_gain: if completed.is_some() { 0.3 } else { 0.0 },
            worker_feature_before: ctx.worker_feature.clone(),
            worker_feature_after: vec![0.9, 0.1, 0.0],
        }
    }

    fn stats() -> ArrivalStats {
        let mut s = ArrivalStats::new(3, 10_080, 60);
        // Revisit gaps spread over the support: ~100 min, ~600 min and ~5000 min, each with
        // roughly a third of the mass, so expiry intervals receive non-trivial probability.
        for i in 0..50u64 {
            let base = i * 40_000;
            s.record_arrival(WorkerId(1), base, &[0.1, 0.2, 0.3]);
            s.record_arrival(WorkerId(1), base + 100, &[0.1, 0.2, 0.3]);
            s.record_arrival(WorkerId(1), base + 100 + 600, &[0.1, 0.2, 0.3]);
            s.record_arrival(WorkerId(1), base + 100 + 600 + 5000, &[0.1, 0.2, 0.3]);
        }
        s
    }

    #[test]
    fn branch_probabilities_are_a_subdistribution() {
        let tf = StateTransformer::new(StateKind::Worker, 8, 3, 3);
        let ctx = context(&[1000 + 300, 1000 + 2000, 1000 + 50_000]);
        let fb = feedback(&ctx, Some(0));
        let branches = worker_future_branches(&tf, &stats(), &ctx.view(), &fb.view(), 10_080, 8);
        assert!(!branches.is_empty());
        let mass: f32 = branches.iter().map(|b| b.probability).sum();
        assert!(mass > 0.0 && mass <= 1.0 + 1e-5, "mass {mass}");
    }

    #[test]
    fn later_branches_have_fewer_surviving_tasks() {
        let tf = StateTransformer::new(StateKind::Worker, 8, 3, 3);
        // Two tasks expire within the horizon, one far beyond it.
        let ctx = context(&[1000 + 200, 1000 + 3000, 1_000_000]);
        let fb = feedback(&ctx, None);
        let branches = worker_future_branches(&tf, &stats(), &ctx.view(), &fb.view(), 10_080, 8);
        let survivor_counts: Vec<usize> = branches.iter().map(|b| b.state.real_tasks).collect();
        assert!(
            survivor_counts.windows(2).all(|w| w[0] >= w[1]),
            "{survivor_counts:?}"
        );
        assert_eq!(*survivor_counts.first().unwrap(), 3);
        assert!(
            *survivor_counts.last().unwrap() <= 1 + 1,
            "{survivor_counts:?}"
        );
    }

    #[test]
    fn future_worker_feature_is_the_updated_one() {
        let tf = StateTransformer::new(StateKind::Worker, 4, 3, 3);
        let ctx = context(&[50_000]);
        let fb = feedback(&ctx, Some(0));
        let branches = worker_future_branches(&tf, &stats(), &ctx.view(), &fb.view(), 10_080, 4);
        // Worker part of each row is the post-completion feature [0.9, 0.1, 0.0].
        let row = branches[0].state.features.row(0);
        assert!((row[3] - 0.9).abs() < 1e-6 && (row[4] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn merging_respects_max_branches() {
        let tf = StateTransformer::new(StateKind::Worker, 16, 3, 3);
        let deadlines: Vec<u64> = (1..12).map(|i| 1000 + i * 500).collect();
        let ctx = context(&deadlines);
        let fb = feedback(&ctx, None);
        let branches = worker_future_branches(&tf, &stats(), &ctx.view(), &fb.view(), 10_080, 3);
        assert!(branches.len() <= 3);
        let mass: f32 = branches.iter().map(|b| b.probability).sum();
        assert!(mass > 0.5, "merging lost probability mass: {mass}");
    }

    #[test]
    fn requester_branches_update_completed_task_quality() {
        let tf = StateTransformer::new(StateKind::Requester, 4, 3, 3);
        let ctx = context(&[1_000_000, 2_000_000]);
        let fb = feedback(&ctx, Some(0));
        let mut s = stats();
        // Give the consecutive histogram some short gaps.
        s.record_arrival(WorkerId(2), 1, &[0.0, 0.0, 0.0]);
        s.record_arrival(WorkerId(3), 6, &[0.0, 0.0, 0.0]);
        let branches = requester_future_branches(&tf, &s, &ctx.view(), &fb.view(), 0.6, 60, 4);
        assert!(!branches.is_empty());
        // Find task 0's row (deadline-sorted keeps it first) and check quality = 0.2 + 0.3.
        let state = &branches[0].state;
        let row = state.features.row(0);
        let task_quality = row[3 + 3 + 1];
        assert!((task_quality - 0.5).abs() < 1e-5, "quality {task_quality}");
        // Requester-side future worker quality uses the supplied expectation.
        assert!((row[3 + 3] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn no_available_tasks_yields_padded_empty_branches() {
        let tf = StateTransformer::new(StateKind::Worker, 4, 3, 3);
        let ctx = context(&[]);
        let fb = feedback(&ctx, None);
        let branches = worker_future_branches(&tf, &stats(), &ctx.view(), &fb.view(), 10_080, 4);
        assert!(!branches.is_empty());
        assert_eq!(branches[0].state.real_tasks, 0);
    }
}
