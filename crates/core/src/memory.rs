//! Transition storage: what one experience `(s_i, a_i, r_i, s_{i+1}-distribution)` looks like
//! once the future-state predictors have done their work.

use crate::state::StateTensor;
use std::sync::Arc;

/// One branch of the predicted future-state distribution: "with probability `probability`
/// the next decision happens in a world whose state is `state`".
///
/// For MDP(w) the branches enumerate which of the currently available tasks will have
/// expired by the time the same worker returns (Sec. IV-D); for MDP(r) they do the same over
/// the much shorter next-arrival window, with the expected next worker substituted into the
/// state (Sec. V-D).
#[derive(Debug, Clone, PartialEq)]
pub struct FutureBranch {
    /// Probability mass of this branch (branches of a transition sum to at most 1; the
    /// remainder is the ignored tail of the gap distribution, exactly as the paper ignores
    /// gaps beyond one week).
    pub probability: f32,
    /// The predicted future state tensor.
    pub state: StateTensor,
}

/// A stored transition ready for the double-DQN learner.
///
/// The future branches are shared (`Arc`) between the successful transition and the failed
/// transitions generated from the same feedback, since they describe the same future world.
#[derive(Debug, Clone)]
pub struct Transition {
    /// State the decision was taken in.
    pub state: StateTensor,
    /// Row of the chosen task inside `state` (not the display position).
    pub action_row: usize,
    /// Immediate reward: 1/0 for MDP(w), the quality gain for MDP(r).
    pub reward: f32,
    /// Predicted future-state distribution.
    pub branches: Arc<Vec<FutureBranch>>,
}

impl Transition {
    /// Total probability mass covered by the future branches.
    pub fn branch_mass(&self) -> f32 {
        self.branches.iter().map(|b| b.probability).sum()
    }
}

/// Checkpoint format: branch probability (f32 raw bits), then the predicted state.
impl crowd_ckpt::SaveState for FutureBranch {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_f32(self.probability);
        w.save(&self.state);
    }
}

impl crowd_ckpt::DecodeState for FutureBranch {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        Ok(FutureBranch {
            probability: r.take_f32()?,
            state: r.decode()?,
        })
    }
}

/// Checkpoint format: state, action row (`u64`), reward (f32 raw bits), then the future
/// branches as a plain list.
///
/// The `Arc` sharing between transitions generated from one feedback is **not**
/// preserved across a roundtrip — each restored transition owns its branch list. That
/// costs memory, never behaviour: learners read branches by value, so the resumed
/// update stream is still bit-identical.
impl crowd_ckpt::SaveState for Transition {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.state);
        w.put_usize(self.action_row);
        w.put_f32(self.reward);
        w.save(&*self.branches);
    }
}

impl crowd_ckpt::DecodeState for Transition {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        Ok(Transition {
            state: r.decode()?,
            action_row: r.take_usize()?,
            reward: r.take_f32()?,
            branches: Arc::new(r.decode()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{StateKind, StateTransformer};
    use crowd_sim::{TaskId, TaskSnapshot};

    fn snap(id: u32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![1.0, 0.0],
            quality: 0.0,
            award: 1.0,
            category: 0,
            domain: 0,
            deadline: 100,
            completions: 0,
        }
    }

    #[test]
    fn branch_mass_sums_probabilities() {
        let tf = StateTransformer::new(StateKind::Worker, 2, 2, 2);
        let state = tf.build(&[snap(0)], &[0.0, 0.0], 0.5);
        let t = Transition {
            state: state.clone(),
            action_row: 0,
            reward: 1.0,
            branches: Arc::new(vec![
                FutureBranch {
                    probability: 0.6,
                    state: state.clone(),
                },
                FutureBranch {
                    probability: 0.3,
                    state,
                },
            ]),
        };
        assert!((t.branch_mass() - 0.9).abs() < 1e-6);
    }

    #[test]
    fn branches_are_shared_not_copied() {
        let tf = StateTransformer::new(StateKind::Worker, 2, 2, 2);
        let state = tf.build(&[snap(0)], &[0.0, 0.0], 0.5);
        let branches = Arc::new(vec![FutureBranch {
            probability: 1.0,
            state: state.clone(),
        }]);
        let a = Transition {
            state: state.clone(),
            action_row: 0,
            reward: 1.0,
            branches: Arc::clone(&branches),
        };
        let b = Transition {
            state,
            action_row: 0,
            reward: 0.0,
            branches: Arc::clone(&branches),
        };
        assert_eq!(Arc::strong_count(&branches), 3);
        assert!(Arc::ptr_eq(&a.branches, &b.branches));
    }
}
