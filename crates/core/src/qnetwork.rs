//! The set-based Q-network (paper Fig. 3 and Fig. 4).
//!
//! Architecture, following Sec. IV-B2:
//!
//! 1. two row-wise feed-forward blocks lift each `[f_tj | f_wi]` row to the hidden width;
//! 2. a multi-head self-attention layer computes pairwise interactions among the available
//!    tasks, followed by a residual row-wise block that keeps the network stable;
//! 3. a second self-attention layer captures higher-order interactions, with a residual
//!    connection so each row keeps its own identity (without it the head would see only a
//!    convex combination of rows, and training can collapse the Q function to a
//!    row-independent constant);
//! 4. a final row-wise linear layer reduces every row to a single value `Q(s_i, t_j)`.
//!
//! Every block is row-wise or (masked) self-attention, so the Q value of a task does not
//! depend on the order of the other tasks — only on *which* tasks are present (the
//! permutation-invariance argument of the paper's appendix). The final reduction is a plain
//! linear layer rather than a ReLU'd one so Q values are not constrained to be non-negative;
//! this is the only deviation from the figure and is noted in DESIGN.md.

use crate::state::StateTensor;
use crowd_autograd::{Graph, VarId};
use crowd_nn::{GraphBinding, Linear, MultiHeadSelfAttention, ParamStore, PoolSegment, RowwiseFF};
use crowd_tensor::{Matrix, Rng};

/// Greatest-Q row index; ties break towards the earlier row, `None` on an empty slice.
pub(crate) fn argmax_of(q: &[f32]) -> Option<usize> {
    q.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f32)>, (i, &v)| match best {
            Some((_, bv)) if v <= bv => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

/// Result alias from the numeric substrate.
pub type Result<T> = crowd_tensor::Result<T>;

/// The permutation-invariant Q-network.
#[derive(Debug, Clone)]
pub struct SetQNetwork {
    ff1: RowwiseFF,
    ff2: RowwiseFF,
    attention1: MultiHeadSelfAttention,
    residual_ff: RowwiseFF,
    attention2: MultiHeadSelfAttention,
    head: Linear,
    input_dim: usize,
    hidden_dim: usize,
}

impl SetQNetwork {
    /// Registers all layers into `store`. Constructing a second network over a *cloned* store
    /// yields a parameter-compatible target network (same [`crowd_nn::ParamId`] layout).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        num_heads: usize,
        rng: &mut Rng,
    ) -> Self {
        let ff1 = RowwiseFF::new(store, &format!("{name}.ff1"), input_dim, hidden_dim, rng);
        let ff2 = RowwiseFF::new(store, &format!("{name}.ff2"), hidden_dim, hidden_dim, rng);
        let attention1 = MultiHeadSelfAttention::new(
            store,
            &format!("{name}.attn1"),
            hidden_dim,
            num_heads,
            rng,
        );
        let residual_ff =
            RowwiseFF::new(store, &format!("{name}.resff"), hidden_dim, hidden_dim, rng);
        let attention2 = MultiHeadSelfAttention::new(
            store,
            &format!("{name}.attn2"),
            hidden_dim,
            num_heads,
            rng,
        );
        let head = Linear::new(store, &format!("{name}.head"), hidden_dim, 1, rng);
        SetQNetwork {
            ff1,
            ff2,
            attention1,
            residual_ff,
            attention2,
            head,
            input_dim,
            hidden_dim,
        }
    }

    /// Input row dimension expected by the network.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden width of the internal layers.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Differentiable forward pass on the tape. Returns the `[max_tasks, 1]` column of Q
    /// values (entries on padded rows are meaningless and must be masked by the loss).
    pub fn forward(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        binding: &mut GraphBinding,
        state: &StateTensor,
    ) -> Result<VarId> {
        let mask = state.attention_mask();
        let x = graph.constant(state.features.clone());
        let h1 = self.ff1.forward(graph, store, binding, x)?;
        let h2 = self.ff2.forward(graph, store, binding, h1)?;
        let a1 = self
            .attention1
            .forward(graph, store, binding, h2, Some(&mask))?;
        let r1 = self.residual_ff.forward(graph, store, binding, a1)?;
        let h3 = graph.add(h2, r1)?;
        let a2 = self
            .attention2
            .forward(graph, store, binding, h3, Some(&mask))?;
        let h4 = graph.add(h3, a2)?;
        self.head.forward(graph, store, binding, h4)
    }

    /// Gradient-free forward pass; returns one Q value per *real* task row, in row order.
    pub fn infer(&self, store: &ParamStore, state: &StateTensor) -> Result<Vec<f32>> {
        if state.real_tasks == 0 {
            return Ok(Vec::new());
        }
        let mask = state.attention_mask();
        let h1 = self.ff1.infer(store, &state.features)?;
        let h2 = self.ff2.infer(store, &h1)?;
        let a1 = self.attention1.infer(store, &h2, Some(&mask))?;
        let r1 = self.residual_ff.infer(store, &a1)?;
        let h3 = h2.add(&r1)?;
        let a2 = self.attention2.infer(store, &h3, Some(&mask))?;
        let h4 = h3.add(&a2)?;
        let q = self.head.infer(store, &h4)?;
        Ok(q.col(0)[..state.real_tasks].to_vec())
    }

    /// Packs the real-row prefixes of `states` back to back into one
    /// `[Σ pool sizes, row_dim]` buffer with one padding-free segment per *non-empty*
    /// state (empty pools contribute no rows and no segment). Returns `None` when every
    /// pool is empty. State matrices are row-major, so each prefix is one contiguous copy;
    /// all states must agree on the row width, and a mismatch is reported against the
    /// first non-empty state's shape so the diagnostic names the actual disagreement.
    fn pack_states(
        op: &'static str,
        states: &[&StateTensor],
    ) -> Result<Option<(Matrix, Vec<PoolSegment>)>> {
        let mut segments: Vec<PoolSegment> = Vec::with_capacity(states.len());
        let mut first_shape = None;
        let mut total_rows = 0;
        for state in states {
            if state.real_tasks == 0 {
                continue;
            }
            let first = *first_shape.get_or_insert(state.features.shape());
            if state.features.cols() != first.1 {
                return Err(crowd_tensor::TensorError::ShapeMismatch {
                    op,
                    lhs: first,
                    rhs: state.features.shape(),
                });
            }
            segments.push(PoolSegment {
                start: total_rows,
                rows: state.real_tasks,
                real_rows: state.real_tasks,
            });
            total_rows += state.real_tasks;
        }
        let Some((_, row_dim)) = first_shape else {
            return Ok(None);
        };
        let mut x = Matrix::zeros(total_rows, row_dim);
        {
            let dst = x.as_mut_slice();
            let mut seg_iter = segments.iter();
            for state in states {
                if state.real_tasks == 0 {
                    continue;
                }
                let seg = seg_iter.next().expect("one segment per non-empty state");
                dst[seg.start * row_dim..seg.end() * row_dim]
                    .copy_from_slice(&state.features.as_slice()[..seg.rows * row_dim]);
            }
        }
        Ok(Some((x, segments)))
    }

    /// Differentiable twin of [`SetQNetwork::infer_batch`]: `N` states through **one**
    /// packed graph on the tape, producing a single `[Σ pool sizes, 1]` Q column — the
    /// packed-minibatch training path that lets `DqnLearner::learn` differentiate a whole
    /// minibatch with one forward + one backward sweep.
    ///
    /// Only the *real* task rows are packed (same layout as the inference path); the
    /// row-wise blocks run as stacked tape matmuls over the whole buffer and the two
    /// attention layers run per-segment via
    /// [`MultiHeadSelfAttention::forward_packed`]. Returns the Q-column node plus the
    /// segments, one per state in order, so callers can map each state's `action_row` to
    /// `segments[i].start + action_row` in the packed column. The packed values are
    /// **bit-identical** to [`SetQNetwork::forward`] on each state's padded tensor alone
    /// (real rows) and to [`SetQNetwork::infer_batch`] — same argument as the inference
    /// path, proven by the unit tests below and `tests/packed_learning_equivalence.rs`.
    ///
    /// # Errors
    ///
    /// Every state must hold at least one real task (a learner minibatch always does:
    /// every stored transition's `action_row` indexes a real row); an empty pool or an
    /// empty `states` slice yields [`crowd_tensor::TensorError::EmptyInput`] because a
    /// zero-row segment has no Q entries to select.
    ///
    /// The stacked tape matmuls run on the **graph's** thread pool — build the graph with
    /// `crowd_autograd::Graph::with_pool` to shard them (bit-identical to a serial tape).
    pub fn forward_batch(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        binding: &mut GraphBinding,
        states: &[&StateTensor],
    ) -> Result<(VarId, Vec<PoolSegment>)> {
        if states.is_empty() || states.iter().any(|s| s.real_tasks == 0) {
            return Err(crowd_tensor::TensorError::EmptyInput {
                op: "forward_batch",
            });
        }
        let (x, segments) = Self::pack_states("forward_batch", states)?
            .expect("non-empty states always produce a packed buffer");
        let xv = graph.constant(x);
        let h1 = self.ff1.forward(graph, store, binding, xv)?;
        let h2 = self.ff2.forward(graph, store, binding, h1)?;
        let a1 = self
            .attention1
            .forward_packed(graph, store, binding, h2, &segments)?;
        let r1 = self.residual_ff.forward(graph, store, binding, a1)?;
        let h3 = graph.add(h2, r1)?;
        let a2 = self
            .attention2
            .forward_packed(graph, store, binding, h3, &segments)?;
        let h4 = graph.add(h3, a2)?;
        let q = self.head.forward(graph, store, binding, h4)?;
        Ok((q, segments))
    }

    /// Gradient-free forward pass over `N` states in **one** packed graph — the batched
    /// inference path that lets a `SessionBatch`'s arrivals (see `crowd-experiments` and
    /// `ARCHITECTURE.md` at the repository root) share a single forward pass.
    ///
    /// Only the *real* task rows of every state are stacked, into one
    /// `[Σ pool sizes, row_dim]` buffer with per-session row offsets; the row-wise blocks
    /// (`ff1`, `ff2`, the residual block and the head) run as stacked matmuls over the
    /// whole buffer, and the two attention layers run per-session over the packed rows via
    /// [`MultiHeadSelfAttention::infer_packed`]. Every returned Q vector is
    /// **bit-identical** to what [`SetQNetwork::infer`] returns for that state's padded
    /// tensor alone:
    ///
    /// * each row-wise output row depends only on its own input row, so dropping padded
    ///   rows cannot change a real row;
    /// * in the padded pass, masked attention scores underflow to exactly `0.0` after the
    ///   row-max-subtracting softmax, so padded columns contribute exact zeros to both the
    ///   softmax denominator and the value aggregation — the same bits as not having the
    ///   columns at all.
    ///
    /// (See the equivalence tests below and `tests/batched_equivalence.rs` for the
    /// end-to-end proof.) Dropping the padding is also where the batched path wins its
    /// latency: the fixed-shape per-state pass pays full attention and projection cost for
    /// padded rows, the packed pass pays only for real tasks.
    ///
    /// Empty pools keep the sequential path's short-circuit: their entry is an empty vector
    /// and they contribute no rows to the packed buffer.
    pub fn infer_batch(
        &self,
        store: &ParamStore,
        states: &[&StateTensor],
    ) -> Result<Vec<Vec<f32>>> {
        self.infer_batch_par(store, states, crowd_tensor::ThreadPool::serial())
    }

    /// [`SetQNetwork::infer_batch`] with every stacked matmul (the row-wise blocks, the
    /// attention projections, the head) row-sharded over `pool` — the parallel inference
    /// path, with the pool handle threaded down from the session layer. **Bit-identical**
    /// to `infer_batch` at any thread count: row sharding never changes a row's f32
    /// accumulation order (see `crowd_tensor::Matrix::matmul_par`), and everything else
    /// is unchanged serial code.
    pub fn infer_batch_par(
        &self,
        store: &ParamStore,
        states: &[&StateTensor],
        pool: crowd_tensor::ThreadPool,
    ) -> Result<Vec<Vec<f32>>> {
        let Some((x, segments)) = Self::pack_states("infer_batch", states)? else {
            return Ok(vec![Vec::new(); states.len()]);
        };
        let h1 = self.ff1.infer_par(store, &x, pool)?;
        let h2 = self.ff2.infer_par(store, &h1, pool)?;
        let a1 = self
            .attention1
            .infer_packed_par(store, &h2, &segments, pool)?;
        let r1 = self.residual_ff.infer_par(store, &a1, pool)?;
        let h3 = h2.add(&r1)?;
        let a2 = self
            .attention2
            .infer_packed_par(store, &h3, &segments, pool)?;
        let h4 = h3.add(&a2)?;
        let q = self.head.infer_par(store, &h4, pool)?;
        let col = q.col(0);
        let mut out = Vec::with_capacity(states.len());
        let mut seg_iter = segments.iter();
        for state in states {
            if state.real_tasks == 0 {
                out.push(Vec::new());
                continue;
            }
            let seg = seg_iter.next().expect("one segment per non-empty state");
            out.push(col[seg.start..seg.start + state.real_tasks].to_vec());
        }
        Ok(out)
    }

    /// Batched [`SetQNetwork::argmax_q`]: the best row per state from one shared forward
    /// pass (`None` for empty pools).
    pub fn argmax_batch(
        &self,
        store: &ParamStore,
        states: &[&StateTensor],
    ) -> Result<Vec<Option<usize>>> {
        Ok(self
            .infer_batch(store, states)?
            .into_iter()
            .map(|q| argmax_of(&q))
            .collect())
    }

    /// Maximum Q value over real tasks; `None` for an empty pool.
    pub fn max_q(&self, store: &ParamStore, state: &StateTensor) -> Result<Option<f32>> {
        Ok(self
            .infer(store, state)?
            .into_iter()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f32| a.max(v)))))
    }

    /// Index (row) of the maximum Q value over real tasks; `None` for an empty pool.
    pub fn argmax_q(&self, store: &ParamStore, state: &StateTensor) -> Result<Option<usize>> {
        Ok(argmax_of(&self.infer(store, state)?))
    }

    /// Builds the `[max_tasks, 1]` loss mask/target pair for a minibatch element: the mask
    /// selects `action_row` and the target carries `target_value` there.
    pub fn action_target(
        max_tasks: usize,
        action_row: usize,
        target_value: f32,
    ) -> (Matrix, Matrix) {
        let mut mask = Matrix::zeros(max_tasks, 1);
        let mut target = Matrix::zeros(max_tasks, 1);
        if action_row < max_tasks {
            mask.set(action_row, 0, 1.0);
            target.set(action_row, 0, target_value);
        }
        (mask, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{StateKind, StateTransformer};
    use crowd_sim::{TaskId, TaskSnapshot};

    fn snapshot(id: u32, seed: f32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![seed, 1.0 - seed, 0.5 * seed, 0.2],
            quality: 0.0,
            award: 10.0,
            category: 0,
            domain: 0,
            deadline: 1000 + id as u64,
            completions: 0,
        }
    }

    fn state(n: u32, max_tasks: usize) -> StateTensor {
        let tf = StateTransformer::new(StateKind::Worker, max_tasks, 4, 3);
        let snaps: Vec<TaskSnapshot> = (0..n).map(|i| snapshot(i, i as f32 * 0.1)).collect();
        tf.build(&snaps, &[0.3, 0.6, 0.1], 0.5)
    }

    fn network(input_dim: usize, seed: u64) -> (ParamStore, SetQNetwork) {
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        let net = SetQNetwork::new(&mut store, "q", input_dim, 16, 4, &mut rng);
        (store, net)
    }

    #[test]
    fn infer_returns_one_q_per_real_task() {
        let (store, net) = network(7, 0);
        let st = state(5, 8);
        let q = net.infer(&store, &st).unwrap();
        assert_eq!(q.len(), 5);
        assert!(q.iter().all(|v| v.is_finite()));
        assert!(net.infer(&store, &state(0, 8)).unwrap().is_empty());
    }

    #[test]
    fn tape_forward_matches_inference_on_real_rows() {
        let (store, net) = network(7, 1);
        let st = state(4, 6);
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let out = net.forward(&mut g, &store, &mut binding, &st).unwrap();
        let tape_q = g.value(out).col(0);
        let infer_q = net.infer(&store, &st).unwrap();
        for (a, b) in tape_q.iter().take(4).zip(infer_q.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn q_values_are_permutation_invariant() {
        // Reversing the task order must permute Q values identically (paper appendix).
        let (store, net) = network(7, 2);
        let tf = StateTransformer::new(StateKind::Worker, 6, 4, 3);
        let snaps: Vec<TaskSnapshot> = (0..5).map(|i| snapshot(i, i as f32 * 0.17)).collect();
        let mut reversed = snaps.clone();
        reversed.reverse();
        let wf = [0.3, 0.6, 0.1];
        let q_fwd = net.infer(&store, &tf.build(&snaps, &wf, 0.5)).unwrap();
        let q_rev = net.infer(&store, &tf.build(&reversed, &wf, 0.5)).unwrap();
        for i in 0..5 {
            assert!(
                (q_fwd[i] - q_rev[4 - i]).abs() < 1e-4,
                "row {i}: {} vs {}",
                q_fwd[i],
                q_rev[4 - i]
            );
        }
    }

    #[test]
    fn q_depends_on_the_other_available_tasks() {
        // The same (worker, task) pair gets a different value when the competing pool
        // changes — the contextual effect the paper argues per-task scoring models miss.
        let (store, net) = network(7, 3);
        let tf = StateTransformer::new(StateKind::Worker, 6, 4, 3);
        let wf = [0.3, 0.6, 0.1];
        let solo = tf.build(&[snapshot(0, 0.1)], &wf, 0.5);
        let crowded: Vec<TaskSnapshot> = (0..5)
            .map(|i| snapshot(i, if i == 0 { 0.1 } else { 0.9 }))
            .collect();
        let crowded_state = tf.build(&crowded, &wf, 0.5);
        let q_solo = net.infer(&store, &solo).unwrap()[0];
        let q_crowded = net.infer(&store, &crowded_state).unwrap()[0];
        assert!(
            (q_solo - q_crowded).abs() > 1e-6,
            "pool context had no effect on Q"
        );
    }

    #[test]
    fn padding_does_not_change_real_q_values() {
        // Same pool represented with different maxT (more padding rows) gives the same Qs.
        let (store, net) = network(7, 4);
        let small_tf = StateTransformer::new(StateKind::Worker, 5, 4, 3);
        let large_tf = StateTransformer::new(StateKind::Worker, 12, 4, 3);
        let snaps: Vec<TaskSnapshot> = (0..4).map(|i| snapshot(i, i as f32 * 0.2)).collect();
        let wf = [0.3, 0.6, 0.1];
        let q_small = net
            .infer(&store, &small_tf.build(&snaps, &wf, 0.5))
            .unwrap();
        let q_large = net
            .infer(&store, &large_tf.build(&snaps, &wf, 0.5))
            .unwrap();
        for (a, b) in q_small.iter().zip(q_large.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn argmax_and_max_agree() {
        let (store, net) = network(7, 5);
        let st = state(6, 8);
        let q = net.infer(&store, &st).unwrap();
        let max = net.max_q(&store, &st).unwrap().unwrap();
        let arg = net.argmax_q(&store, &st).unwrap().unwrap();
        assert!((q[arg] - max).abs() < 1e-6);
        assert!(net.max_q(&store, &state(0, 8)).unwrap().is_none());
    }

    #[test]
    fn cloned_store_is_a_compatible_target_network() {
        let (store, net) = network(7, 6);
        let mut target = store.clone();
        let st = state(3, 8);
        // Initially identical.
        assert_eq!(
            net.infer(&store, &st).unwrap(),
            net.infer(&target, &st).unwrap()
        );
        // Diverge the target, then hard-sync back.
        let first_param = target.iter().next().map(|(id, _, _)| id).unwrap();
        target.get_mut(first_param).fill(0.0);
        target.copy_from(&store);
        assert_eq!(
            net.infer(&store, &st).unwrap(),
            net.infer(&target, &st).unwrap()
        );
    }

    #[test]
    fn infer_batch_is_bit_identical_to_sequential_infer() {
        // The tentpole guarantee: N states through one packed forward pass yield exactly
        // the bits of N independent passes — including empty pools and mixed pool sizes.
        let (store, net) = network(7, 8);
        let states = [state(5, 8), state(0, 8), state(3, 8), state(8, 8)];
        let refs: Vec<&StateTensor> = states.iter().collect();
        let batched = net.infer_batch(&store, &refs).unwrap();
        assert_eq!(batched.len(), states.len());
        for (st, q_batch) in states.iter().zip(&batched) {
            let q_solo = net.infer(&store, st).unwrap();
            assert_eq!(q_batch, &q_solo, "batched Q diverged from sequential Q");
        }
    }

    #[test]
    fn infer_batch_par_is_bit_identical_at_any_thread_count() {
        let (store, net) = network(7, 15);
        let states = [state(5, 8), state(0, 8), state(3, 6), state(8, 8)];
        let refs: Vec<&StateTensor> = states.iter().collect();
        let serial = net.infer_batch(&store, &refs).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = crowd_tensor::ThreadPool::new(threads);
            let pooled = net.infer_batch_par(&store, &refs, pool).unwrap();
            assert_eq!(pooled, serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn pooled_forward_batch_matches_serial_tape_bit_for_bit() {
        // The packed training graph on a pooled tape must produce the serial tape's bits
        // (forward values; gradients are covered by the autograd-level test).
        let (store, net) = network(7, 16);
        let states = [state(5, 8), state(3, 6), state(8, 8)];
        let refs: Vec<&StateTensor> = states.iter().collect();
        let run = |pool: crowd_tensor::ThreadPool| {
            let mut g = Graph::with_pool(pool);
            let mut binding = GraphBinding::new();
            let (q, _) = net
                .forward_batch(&mut g, &store, &mut binding, &refs)
                .unwrap();
            g.value(q).clone()
        };
        let serial = run(crowd_tensor::ThreadPool::serial());
        for threads in [2usize, 8] {
            assert_eq!(
                run(crowd_tensor::ThreadPool::new(threads)),
                serial,
                "pooled tape diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn infer_batch_handles_mixed_max_tasks() {
        // Sessions with different pool capacities pack into one buffer of unequal blocks.
        let (store, net) = network(7, 9);
        let a = state(4, 6);
        let b = state(7, 12);
        let batched = net.infer_batch(&store, &[&a, &b]).unwrap();
        assert_eq!(batched[0], net.infer(&store, &a).unwrap());
        assert_eq!(batched[1], net.infer(&store, &b).unwrap());
    }

    #[test]
    fn argmax_batch_matches_argmax_q() {
        let (store, net) = network(7, 10);
        let states = [state(6, 8), state(0, 8), state(2, 8)];
        let refs: Vec<&StateTensor> = states.iter().collect();
        let batched = net.argmax_batch(&store, &refs).unwrap();
        for (st, arg) in states.iter().zip(&batched) {
            assert_eq!(*arg, net.argmax_q(&store, st).unwrap());
        }
        assert_eq!(batched[1], None);
    }

    #[test]
    fn infer_batch_of_empty_pools_skips_the_forward_pass() {
        let (store, net) = network(7, 11);
        let empty = state(0, 8);
        let out = net.infer_batch(&store, &[&empty, &empty]).unwrap();
        assert_eq!(out, vec![Vec::<f32>::new(), Vec::new()]);
        assert!(net.infer_batch(&store, &[]).unwrap().is_empty());
    }

    #[test]
    fn forward_batch_is_bit_identical_to_per_state_forward_and_infer_batch() {
        // The packed-training guarantee: one tape for N states produces exactly the bits of
        // N per-state tapes on the real rows (the padded per-state pass and the packed
        // padding-free pass agree bit for bit), and exactly the bits of the gradient-free
        // packed inference path.
        let (store, net) = network(7, 12);
        let states = [state(5, 8), state(3, 6), state(8, 8)];
        let refs: Vec<&StateTensor> = states.iter().collect();

        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let (q, segments) = net
            .forward_batch(&mut g, &store, &mut binding, &refs)
            .unwrap();
        assert_eq!(segments.len(), states.len());
        let packed_col = g.value(q).col(0);
        assert_eq!(packed_col.len(), 5 + 3 + 8);

        let inferred = net.infer_batch(&store, &refs).unwrap();
        for (st, seg) in states.iter().zip(&segments) {
            // vs the per-state padded tape.
            let mut g_solo = Graph::new();
            let mut binding_solo = GraphBinding::new();
            let q_solo = net
                .forward(&mut g_solo, &store, &mut binding_solo, st)
                .unwrap();
            let solo_col = g_solo.value(q_solo).col(0);
            for row in 0..st.real_tasks {
                assert_eq!(
                    packed_col[seg.start + row].to_bits(),
                    solo_col[row].to_bits(),
                    "packed tape Q diverged from the per-state tape at row {row}"
                );
            }
        }
        // vs the packed inference path: same bits across the whole column.
        let flattened: Vec<f32> = inferred.into_iter().flatten().collect();
        assert_eq!(
            packed_col, flattened,
            "tape values diverged from infer_batch"
        );
    }

    #[test]
    fn forward_batch_gradient_trains_all_selected_rows() {
        use crowd_nn::{Adam, Optimizer};
        // One packed update per step moves two different states' selected Q values towards
        // their targets simultaneously.
        let (mut store, net) = network(7, 13);
        let states = [state(4, 6), state(6, 8)];
        let refs: Vec<&StateTensor> = states.iter().collect();
        let initial = net.infer_batch(&store, &refs).unwrap();
        let targets = [initial[0][1] + 2.0, initial[1][3] - 1.5];
        let mut opt = Adam::new(0.01);
        for _ in 0..80 {
            let mut g = Graph::new();
            let mut binding = GraphBinding::new();
            let (q, segments) = net
                .forward_batch(&mut g, &store, &mut binding, &refs)
                .unwrap();
            let total_rows = segments.last().unwrap().end();
            let mut target = Matrix::zeros(total_rows, 1);
            let mut mask = Matrix::zeros(total_rows, 1);
            let mut weights = Matrix::zeros(total_rows, 1);
            for (seg, (&row, &y)) in segments.iter().zip([1usize, 3].iter().zip(&targets)) {
                mask.set(seg.start + row, 0, 1.0);
                target.set(seg.start + row, 0, y);
                weights.set(seg.start + row, 0, 1.0);
            }
            let loss = g
                .weighted_masked_mse(q, &target, &mask, &weights, 2.0)
                .unwrap();
            g.backward(loss).unwrap();
            opt.step(&mut store, &binding.gradients(&g)).unwrap();
        }
        let trained = net.infer_batch(&store, &refs).unwrap();
        assert!(
            (trained[0][1] - targets[0]).abs() < 0.2,
            "state 0 Q moved to {} target {}",
            trained[0][1],
            targets[0]
        );
        assert!(
            (trained[1][3] - targets[1]).abs() < 0.2,
            "state 1 Q moved to {} target {}",
            trained[1][3],
            targets[1]
        );
    }

    #[test]
    fn forward_batch_rejects_empty_pools() {
        let (store, net) = network(7, 14);
        let full = state(3, 6);
        let empty = state(0, 6);
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        assert!(net
            .forward_batch(&mut g, &store, &mut binding, &[&full, &empty])
            .is_err());
        assert!(net
            .forward_batch(&mut g, &store, &mut binding, &[])
            .is_err());
    }

    #[test]
    fn action_target_selects_single_row() {
        let (mask, target) = SetQNetwork::action_target(4, 2, 1.5);
        assert_eq!(mask.col(0), vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(target.get(2, 0), 1.5);
        let (mask_oob, _) = SetQNetwork::action_target(4, 9, 1.0);
        assert_eq!(mask_oob.sum(), 0.0);
    }

    #[test]
    fn gradient_step_moves_q_towards_target() {
        use crowd_nn::{Adam, Optimizer};
        let (mut store, net) = network(7, 7);
        let st = state(4, 6);
        let mut opt = Adam::new(0.01);
        let initial_q = net.infer(&store, &st).unwrap()[1];
        let target_value = initial_q + 2.0;
        for _ in 0..60 {
            let mut g = Graph::new();
            let mut binding = GraphBinding::new();
            let out = net.forward(&mut g, &store, &mut binding, &st).unwrap();
            let (mask, target) = SetQNetwork::action_target(6, 1, target_value);
            let loss = g.masked_mse(out, &target, &mask).unwrap();
            g.backward(loss).unwrap();
            opt.step(&mut store, &binding.gradients(&g)).unwrap();
        }
        let trained_q = net.infer(&store, &st).unwrap()[1];
        assert!(
            (trained_q - target_value).abs() < 0.2,
            "Q moved from {initial_q} to {trained_q}, target {target_value}"
        );
    }
}
