//! The paper's contribution: an end-to-end deep reinforcement learning framework for task
//! arrangement in crowdsourcing platforms (Shan et al., ICDE 2020).
//!
//! The framework models the interaction between the platform (agent) and the
//! workers/requesters (environment) as two MDPs — MDP(w) maximising the cumulative worker
//! completion rate, MDP(r) maximising the cumulative task quality gain — and learns a deep
//! Q-network for each. The crate mirrors the module structure of the paper's Fig. 2:
//!
//! | Paper component | Module |
//! |---|---|
//! | State Transformer (Sec. IV-B/V-B) | [`state`] |
//! | Q-Network(w)/(r) (Fig. 3/4) | [`qnetwork`] |
//! | Worker arrivals' statistics (φ, ϕ, p_new) | [`arrival_stats`] |
//! | Future-state predictors (Sec. IV-D/V-D) | [`predictor`] |
//! | Memory (prioritized replay of transitions) | [`memory`] (+ `crowd-rl-kit`) |
//! | Learner(w)/(r) with revised targets (Eq. 3/6) | [`learner`] |
//! | Aggregator / balancer (Sec. VI-A) | [`aggregator`] |
//! | Explorer (Sec. VI-B) | [`explorer`] |
//! | The whole agent behind [`crowd_sim::Policy`] | [`agent`] |
//!
//! # Quick start
//!
//! The agent implements [`crowd_sim::Policy`] over the zero-copy `Env` interface: each
//! arrival hands the agent a borrowed [`crowd_sim::ArrivalView`] and a reusable
//! [`crowd_sim::Decision`] buffer — no per-arrival clones of task or worker features.
//!
//! ```
//! use crowd_rl_core::{DdqnAgent, DdqnConfig};
//! use crowd_sim::{Decision, Env, Platform, Policy, SimConfig};
//!
//! // Simulate a small crowdsourcing platform and run the DDQN agent on it.
//! let dataset = SimConfig::tiny().generate();
//! let features = Platform::default_feature_space(&dataset);
//! let mut platform = Platform::new(dataset, features.clone(), 7);
//! let mut agent = DdqnAgent::new(
//!     DdqnConfig { hidden_dim: 16, num_heads: 2, ..DdqnConfig::default() },
//!     features.task_dim(),
//!     features.worker_dim(),
//! );
//! let mut decision = Decision::new();
//! let mut completions = 0;
//! for _ in 0..50 {
//!     if !platform.next_arrival() {
//!         break;
//!     }
//!     if platform.arrival().is_empty() {
//!         continue;
//!     }
//!     agent.act(&platform.arrival(), &mut decision);
//!     platform.apply(&decision);
//!     if platform.feedback().completed.is_some() {
//!         completions += 1;
//!     }
//!     agent.observe(&platform.arrival(), &platform.feedback());
//! }
//! assert!(agent.observations() > 0);
//! ```

pub mod agent;
pub mod aggregator;
pub mod arrival_stats;
pub mod config;
pub mod explorer;
pub mod learner;
pub mod memory;
pub mod predictor;
pub mod qnetwork;
pub mod state;

pub use agent::DdqnAgent;
pub use arrival_stats::ArrivalStats;
pub use config::{DdqnConfig, RecommendationMode};
pub use explorer::Explorer;
pub use learner::{DqnLearner, LearnReport};
pub use memory::{FutureBranch, Transition};
pub use qnetwork::SetQNetwork;
pub use state::{StateKind, StateTensor, StateTransformer};
