//! The State Transformer (paper Sec. IV-B / V-B).
//!
//! A state is the arriving worker plus the set of available tasks. The transformer
//! concatenates each task's feature with the worker's feature (and, for MDP(r), the worker
//! quality and task quality) into one row per task, zero-pads to `maxT` rows and records a
//! row mask so the Q-network's attention never looks at padding.

use crowd_sim::{ArrivalContext, ArrivalView, TaskId, TaskRef, TaskSnapshot};
use crowd_tensor::Matrix;

/// Which MDP the state is built for: MDP(r) appends the two quality dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// MDP(w): rows are `[f_tj | f_wi]`.
    Worker,
    /// MDP(r): rows are `[f_tj | f_wi | q_wi | q_tj]`.
    Requester,
}

/// A fixed-size state representation ready to be fed to the Q-network.
#[derive(Debug, Clone, PartialEq)]
pub struct StateTensor {
    /// `[max_tasks, row_dim]` feature matrix (zero rows beyond `real_tasks`).
    pub features: Matrix,
    /// `[max_tasks, 1]` column with 1.0 for real task rows and 0.0 for padding.
    pub row_mask: Matrix,
    /// Tasks actually represented, in row order.
    pub task_ids: Vec<TaskId>,
    /// Number of real (non-padded) rows.
    pub real_tasks: usize,
}

impl StateTensor {
    /// `[max_tasks, max_tasks]` additive attention mask corresponding to the padding.
    pub fn attention_mask(&self) -> Matrix {
        crowd_nn::MultiHeadSelfAttention::padding_mask(self.features.rows(), self.real_tasks)
    }
}

/// Checkpoint format: feature matrix, row mask, task ids, real-row count (`u64`).
/// State tensors appear in snapshots only inside stored transitions.
impl crowd_ckpt::SaveState for StateTensor {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.features);
        w.save(&self.row_mask);
        w.save(&self.task_ids);
        w.put_usize(self.real_tasks);
    }
}

impl crowd_ckpt::DecodeState for StateTensor {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        let features: Matrix = r.decode()?;
        let row_mask: Matrix = r.decode()?;
        let task_ids: Vec<TaskId> = r.decode()?;
        let real_tasks = r.take_usize()?;
        if real_tasks != task_ids.len() || real_tasks > features.rows() {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "state tensor",
                detail: format!(
                    "{real_tasks} real rows vs {} task ids in a {}-row state",
                    task_ids.len(),
                    features.rows()
                ),
            });
        }
        Ok(StateTensor {
            features,
            row_mask,
            task_ids,
            real_tasks,
        })
    }
}

/// Builds [`StateTensor`]s from arrival contexts or raw snapshot lists.
#[derive(Debug, Clone)]
pub struct StateTransformer {
    kind: StateKind,
    max_tasks: usize,
    task_dim: usize,
    worker_dim: usize,
}

impl StateTransformer {
    /// Creates a transformer for the given MDP, pool capacity and feature dimensions.
    pub fn new(kind: StateKind, max_tasks: usize, task_dim: usize, worker_dim: usize) -> Self {
        StateTransformer {
            kind,
            max_tasks,
            task_dim,
            worker_dim,
        }
    }

    /// Dimension of one state row.
    pub fn row_dim(&self) -> usize {
        match self.kind {
            StateKind::Worker => self.task_dim + self.worker_dim,
            StateKind::Requester => self.task_dim + self.worker_dim + 2,
        }
    }

    /// Maximum number of task rows.
    pub fn max_tasks(&self) -> usize {
        self.max_tasks
    }

    /// Which MDP this transformer serves.
    pub fn kind(&self) -> StateKind {
        self.kind
    }

    /// Builds the state for a borrowed arrival view — the hot path. Task features are read
    /// straight out of the platform's arena and packed into the state matrix; the only
    /// allocations are the state tensor itself.
    pub fn from_view(&self, view: &ArrivalView<'_>) -> StateTensor {
        self.build_rows(
            view.n_tasks(),
            |i| view.task(i),
            view.worker_feature,
            view.worker_quality,
        )
    }

    /// Builds the state for an owned arrival context (warm-start replay, tests).
    pub fn from_context(&self, ctx: &ArrivalContext) -> StateTensor {
        self.from_view(&ctx.view())
    }

    /// Builds the state from an explicit snapshot list, worker feature and worker quality
    /// (used by the future-state predictors, which synthesise hypothetical pools).
    pub fn build(
        &self,
        available: &[TaskSnapshot],
        worker_feature: &[f32],
        worker_quality: f32,
    ) -> StateTensor {
        self.build_rows(
            available.len(),
            |i| available[i].as_ref(),
            worker_feature,
            worker_quality,
        )
    }

    /// Shared row packer over any borrowed task accessor.
    ///
    /// When the pool exceeds `max_tasks`, the tasks closest to their deadline are kept — they
    /// are the ones whose value is most time-critical.
    fn build_rows<'a>(
        &self,
        n_tasks: usize,
        task_at: impl Fn(usize) -> TaskRef<'a>,
        worker_feature: &[f32],
        worker_quality: f32,
    ) -> StateTensor {
        let mut order: Vec<usize> = (0..n_tasks).collect();
        if n_tasks > self.max_tasks {
            order.sort_by_key(|&i| task_at(i).deadline);
            order.truncate(self.max_tasks);
        }
        let real_tasks = order.len();
        let row_dim = self.row_dim();
        let mut features = Matrix::zeros(self.max_tasks, row_dim);
        let mut row_mask = Matrix::zeros(self.max_tasks, 1);
        let mut task_ids = Vec::with_capacity(real_tasks);
        for (row, &idx) in order.iter().enumerate() {
            let task = task_at(idx);
            task_ids.push(task.id);
            row_mask.set(row, 0, 1.0);
            let dst = features.row_mut(row);
            let t_len = task.feature.len().min(self.task_dim);
            dst[..t_len].copy_from_slice(&task.feature[..t_len]);
            let w_len = worker_feature.len().min(self.worker_dim);
            dst[self.task_dim..self.task_dim + w_len].copy_from_slice(&worker_feature[..w_len]);
            if self.kind == StateKind::Requester {
                dst[self.task_dim + self.worker_dim] = worker_quality;
                dst[self.task_dim + self.worker_dim + 1] = task.quality;
            }
        }
        StateTensor {
            features,
            row_mask,
            task_ids,
            real_tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::WorkerId;

    fn snapshot(id: u32, deadline: u64, quality: f32) -> TaskSnapshot {
        TaskSnapshot {
            id: TaskId(id),
            feature: vec![id as f32, 1.0, 0.0],
            quality,
            award: 10.0,
            category: 0,
            domain: 0,
            deadline,
            completions: 0,
        }
    }

    fn context(n: u32) -> ArrivalContext {
        ArrivalContext {
            time: 0,
            worker_id: WorkerId(0),
            worker_feature: vec![0.5, 0.25],
            worker_quality: 0.9,
            is_new_worker: false,
            available: (0..n)
                .map(|i| snapshot(i, 100 + i as u64, 0.1 * i as f32))
                .collect(),
        }
    }

    #[test]
    fn worker_state_layout() {
        let tf = StateTransformer::new(StateKind::Worker, 4, 3, 2);
        assert_eq!(tf.row_dim(), 5);
        let st = tf.from_context(&context(2));
        assert_eq!(st.features.shape(), (4, 5));
        assert_eq!(st.real_tasks, 2);
        assert_eq!(st.task_ids, vec![TaskId(0), TaskId(1)]);
        // Row 1 = [task feature | worker feature].
        assert_eq!(st.features.row(1), &[1.0, 1.0, 0.0, 0.5, 0.25]);
        // Padding rows are zero and masked out.
        assert_eq!(st.features.row(3), &[0.0; 5]);
        assert_eq!(st.row_mask.col(0), vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn requester_state_appends_qualities() {
        let tf = StateTransformer::new(StateKind::Requester, 3, 3, 2);
        assert_eq!(tf.row_dim(), 7);
        let st = tf.from_context(&context(2));
        // Worker quality then task quality at the end of each real row.
        assert_eq!(st.features.get(0, 5), 0.9);
        assert_eq!(st.features.get(0, 6), 0.0);
        assert_eq!(st.features.get(1, 5), 0.9);
        assert!((st.features.get(1, 6) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn oversized_pool_keeps_earliest_deadlines() {
        let tf = StateTransformer::new(StateKind::Worker, 2, 3, 2);
        let ctx = context(5); // deadlines 100..104
        let st = tf.from_context(&ctx);
        assert_eq!(st.real_tasks, 2);
        assert_eq!(st.task_ids, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn empty_pool_is_all_padding() {
        let tf = StateTransformer::new(StateKind::Worker, 3, 3, 2);
        let st = tf.from_context(&context(0));
        assert_eq!(st.real_tasks, 0);
        assert!(st.task_ids.is_empty());
        assert_eq!(st.row_mask.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn attention_mask_matches_padding() {
        let tf = StateTransformer::new(StateKind::Worker, 4, 3, 2);
        let st = tf.from_context(&context(2));
        let mask = st.attention_mask();
        assert_eq!(mask.shape(), (4, 4));
        assert_eq!(mask.get(0, 1), 0.0);
        assert_eq!(mask.get(0, 2), -1e9);
        assert_eq!(mask.get(3, 3), -1e9);
    }

    #[test]
    fn mismatched_feature_lengths_are_truncated_not_panicking() {
        let tf = StateTransformer::new(StateKind::Worker, 2, 2, 2);
        // Task features are length 3 but task_dim is 2: extra entries are dropped.
        let st = tf.build(&[snapshot(0, 10, 0.0)], &[0.1], 0.5);
        assert_eq!(st.features.row(0), &[0.0, 1.0, 0.1, 0.0]);
    }
}
