//! Multi-head self-attention (paper Fig. 4 and Sec. IV-B2).
//!
//! `Att(X1, X2, X3) = softmax(X1 X2ᵀ / √d) X3`, with `h` heads whose outputs are concatenated
//! and linearly recombined. Padded rows of the state matrix are excluded by an additive mask
//! (−1e9 on the scores of padded *columns*), so padding never influences real tasks'
//! representations, and the whole block stays permutation-invariant over the real rows
//! (Appendix, Proof 2).

use crate::linear::Linear;
use crate::param::{GraphBinding, ParamId, ParamStore};
use crate::Result;
use crowd_autograd::{Graph, VarId};
use crowd_tensor::{Matrix, Rng};

/// One session's row block inside a packed `[Σ pool sizes, dim]` buffer used by
/// [`MultiHeadSelfAttention::infer_packed`]: the block starts at row `start`, spans `rows`
/// rows, and only the first `real_rows` of them are real tasks (the rest is padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSegment {
    /// First row of the block inside the packed buffer.
    pub start: usize,
    /// Number of rows in the block (the session's `max_tasks`, padding included).
    pub rows: usize,
    /// Number of real (non-padding) rows at the top of the block.
    pub real_rows: usize,
}

impl PoolSegment {
    /// One past the last row of the block.
    pub fn end(&self) -> usize {
        self.start + self.rows
    }
}

/// Multi-head self-attention layer with `h` heads of dimension `model_dim / h`.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    /// Per-head projection matrices for queries, keys and values (no bias, as in the paper).
    heads: Vec<HeadParams>,
    /// Output projection `W^O`.
    output: Linear,
    model_dim: usize,
    head_dim: usize,
}

#[derive(Debug, Clone)]
struct HeadParams {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
}

impl MultiHeadSelfAttention {
    /// Registers a new attention layer. `model_dim` must be divisible by `num_heads`.
    ///
    /// # Panics
    ///
    /// Panics when `num_heads == 0` or `model_dim % num_heads != 0`; layer shapes are fixed
    /// at construction time and a mismatch is a programming error.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        model_dim: usize,
        num_heads: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(num_heads > 0, "attention needs at least one head");
        assert_eq!(
            model_dim % num_heads,
            0,
            "model_dim {model_dim} must be divisible by num_heads {num_heads}"
        );
        let head_dim = model_dim / num_heads;
        let heads = (0..num_heads)
            .map(|h| HeadParams {
                wq: store.register(
                    format!("{name}.head{h}.wq"),
                    Matrix::xavier(model_dim, head_dim, rng),
                ),
                wk: store.register(
                    format!("{name}.head{h}.wk"),
                    Matrix::xavier(model_dim, head_dim, rng),
                ),
                wv: store.register(
                    format!("{name}.head{h}.wv"),
                    Matrix::xavier(model_dim, head_dim, rng),
                ),
            })
            .collect();
        let output = Linear::new(store, &format!("{name}.out"), model_dim, model_dim, rng);
        MultiHeadSelfAttention {
            heads,
            output,
            model_dim,
            head_dim,
        }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Model (input/output) dimension.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// Builds the additive attention mask for a pool where only the first `real_rows` of
    /// `total_rows` are real tasks: scores towards padded keys get −1e9 so their softmax
    /// weight is effectively zero.
    pub fn padding_mask(total_rows: usize, real_rows: usize) -> Matrix {
        let mut mask = Matrix::zeros(total_rows, total_rows);
        for r in 0..total_rows {
            for c in real_rows..total_rows {
                mask.set(r, c, -1e9);
            }
        }
        mask
    }

    /// Applies multi-head self-attention on the tape.
    ///
    /// `x` is `n x model_dim`; `mask` (if provided) is an `n x n` additive score mask.
    pub fn forward(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        binding: &mut GraphBinding,
        x: VarId,
        mask: Option<&Matrix>,
    ) -> Result<VarId> {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mask_var = mask.map(|m| graph.constant(m.clone()));
        let mut concat: Option<VarId> = None;
        for head in &self.heads {
            let wq = binding.bind(graph, store, head.wq);
            let wk = binding.bind(graph, store, head.wk);
            let wv = binding.bind(graph, store, head.wv);
            let q = graph.matmul(x, wq)?;
            let k = graph.matmul(x, wk)?;
            let v = graph.matmul(x, wv)?;
            let kt = graph.transpose(k);
            let scores = graph.matmul(q, kt)?;
            let scaled = graph.scale(scores, scale);
            let masked = match mask_var {
                Some(m) => graph.add(scaled, m)?,
                None => scaled,
            };
            let attn = graph.softmax_rows(masked);
            let head_out = graph.matmul(attn, v)?;
            concat = Some(match concat {
                None => head_out,
                Some(prev) => graph.concat_cols(prev, head_out)?,
            });
        }
        let concat = concat.expect("at least one head");
        self.output.forward(graph, store, binding, concat)
    }

    /// Gradient-free forward pass (target network evaluation).
    pub fn infer(&self, store: &ParamStore, x: &Matrix, mask: Option<&Matrix>) -> Result<Matrix> {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut concat: Option<Matrix> = None;
        for head in &self.heads {
            let q = x.matmul(store.get(head.wq))?;
            let k = x.matmul(store.get(head.wk))?;
            let v = x.matmul(store.get(head.wv))?;
            let mut scores = q.matmul_transpose(&k)?.scale(scale);
            if let Some(m) = mask {
                scores = scores.add(m)?;
            }
            let attn = scores.softmax_rows();
            let head_out = attn.matmul(&v)?;
            concat = Some(match concat {
                None => head_out,
                Some(prev) => prev.concat_cols(&head_out)?,
            });
        }
        self.output
            .infer(store, &concat.expect("at least one head"))
    }

    /// Differentiable twin of [`MultiHeadSelfAttention::infer_packed`]: multi-head
    /// self-attention over a packed `[Σ pool sizes, model_dim]` buffer **on the tape**, so
    /// one backward pass differentiates `N` sessions'/transitions' attention at once — the
    /// training-side counterpart of the batched-inference hot path.
    ///
    /// The Q/K/V projections run as single stacked matmuls over the whole buffer (one tape
    /// node each per head, exactly like the inference path runs one `Matrix::matmul`);
    /// scores and softmax never cross segments, so each segment's block is gathered with
    /// `Graph::slice_rows`, soft-maxed on its own (the per-segment softmax), and the
    /// per-segment attention outputs are scattered back into packed layout with
    /// `Graph::vstack` before the stacked output projection. The scatter/gather backward
    /// of those two ops routes every segment its own gradient block, and the stacked
    /// matmuls accumulate all segments' parameter gradients in one sweep.
    ///
    /// Unlike the inference path, the segments must *tile* the buffer: contiguous, in row
    /// order, starting at row 0 and covering every row of `x` (the per-segment outputs are
    /// re-packed with `vstack`, which cannot leave gaps). That is exactly the layout
    /// `SetQNetwork::forward_batch` builds; debug assertions enforce it.
    ///
    /// The stacked tape matmuls run on the **graph's** thread pool
    /// (`crowd_autograd::Graph::with_pool`), so building the training graph on a pooled
    /// tape shards the same projections `infer_packed_par` shards at inference time —
    /// with the same bit-identity guarantee, forward and backward.
    ///
    /// The forward *values* are the same bits [`MultiHeadSelfAttention::infer_packed`]
    /// produces (the tape ops call the very same `Matrix` kernels block by block;
    /// `crowd-rl-core`'s packed-learning equivalence suite leans on this), and per-segment
    /// rows match a per-segment [`MultiHeadSelfAttention::forward`] with the matching
    /// padding mask.
    pub fn forward_packed(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        binding: &mut GraphBinding,
        x: VarId,
        segments: &[PoolSegment],
    ) -> Result<VarId> {
        debug_assert!(
            {
                let mut expected_start = 0;
                segments.iter().all(|seg| {
                    let contiguous = seg.start == expected_start;
                    expected_start = seg.end();
                    contiguous
                }) && expected_start == graph.value(x).rows()
            },
            "forward_packed segments must tile the packed buffer contiguously from row 0"
        );
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // Per-segment padding masks, shared by every head; padding-free segments skip the
        // mask add entirely (same bit-exactness argument as the inference path).
        let mask_vars: Vec<Option<VarId>> = segments
            .iter()
            .map(|seg| {
                (seg.real_rows < seg.rows)
                    .then(|| graph.constant(Self::padding_mask(seg.rows, seg.real_rows)))
            })
            .collect();
        let mut concat: Option<VarId> = None;
        let mut seg_outs = Vec::with_capacity(segments.len());
        for head in &self.heads {
            let wq = binding.bind(graph, store, head.wq);
            let wk = binding.bind(graph, store, head.wk);
            let wv = binding.bind(graph, store, head.wv);
            let q = graph.matmul(x, wq)?;
            let k = graph.matmul(x, wk)?;
            let v = graph.matmul(x, wv)?;
            seg_outs.clear();
            for (seg, mask) in segments.iter().zip(&mask_vars) {
                let qb = graph.slice_rows(q, seg.start, seg.end())?;
                let kb = graph.slice_rows(k, seg.start, seg.end())?;
                let vb = graph.slice_rows(v, seg.start, seg.end())?;
                let kt = graph.transpose(kb);
                let scores = graph.matmul(qb, kt)?;
                let scaled = graph.scale(scores, scale);
                let masked = match mask {
                    Some(m) => graph.add(scaled, *m)?,
                    None => scaled,
                };
                let attn = graph.softmax_rows(masked);
                seg_outs.push(graph.matmul(attn, vb)?);
            }
            let head_out = graph.vstack(&seg_outs)?;
            concat = Some(match concat {
                None => head_out,
                Some(prev) => graph.concat_cols(prev, head_out)?,
            });
        }
        let concat = concat.expect("at least one head");
        self.output.forward(graph, store, binding, concat)
    }

    /// Gradient-free forward pass over a packed `[Σ pool sizes, model_dim]` buffer holding
    /// `N` sessions' state rows back to back — the batched-inference hot path.
    ///
    /// The Q/K/V and output projections are row-wise, so they run as single stacked matmuls
    /// over the whole buffer; scores and softmax never cross sessions, so they run block by
    /// block with each segment's own padding mask. The rows of the result are bit-identical
    /// to calling [`MultiHeadSelfAttention::infer`] once per segment with
    /// [`MultiHeadSelfAttention::padding_mask`]`(rows, real_rows)` — row-wise matmul rows
    /// depend only on their own input row, and the block computations are the very same
    /// operations on the very same bits.
    ///
    /// Rows not covered by any segment come back as bias-shifted zeros and must be ignored
    /// by the caller; segments may not overlap.
    pub fn infer_packed(
        &self,
        store: &ParamStore,
        x: &Matrix,
        segments: &[PoolSegment],
    ) -> Result<Matrix> {
        self.infer_packed_par(store, x, segments, crowd_tensor::ThreadPool::serial())
    }

    /// [`MultiHeadSelfAttention::infer_packed`] with its stacked matmuls row-sharded over
    /// `pool` — the parallel batched-inference path, with the pool handle threaded down
    /// from the session layer (`SessionBatch` → `DdqnAgent::act_batch` →
    /// `SetQNetwork::infer_batch_par`).
    ///
    /// Only the buffer-wide projections (Q/K/V per head, the output projection) shard;
    /// each segment's score/softmax/value block is small (`rows × rows` with `rows` the
    /// pool size) and stays on the calling thread. Row sharding keeps every output row's
    /// f32 accumulation order unchanged, so the result is **bit-identical** to
    /// [`MultiHeadSelfAttention::infer_packed`] at any thread count.
    pub fn infer_packed_par(
        &self,
        store: &ParamStore,
        x: &Matrix,
        segments: &[PoolSegment],
        pool: crowd_tensor::ThreadPool,
    ) -> Result<Matrix> {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // Per-segment padding masks, shared by every head. A segment without padding
        // (`real_rows == rows`) needs no mask at all: its additive mask would be all-zero,
        // and `x + 0.0 == x` bit for bit (accumulated scores are never `-0.0`), so
        // skipping the add is both faster and bit-identical.
        let masks: Vec<Option<Matrix>> = segments
            .iter()
            .map(|seg| {
                (seg.real_rows < seg.rows).then(|| Self::padding_mask(seg.rows, seg.real_rows))
            })
            .collect();
        let mut concat: Option<Matrix> = None;
        for head in &self.heads {
            let q = x.matmul_par(store.get(head.wq), pool)?;
            let k = x.matmul_par(store.get(head.wk), pool)?;
            let v = x.matmul_par(store.get(head.wv), pool)?;
            let mut head_out = Matrix::zeros(x.rows(), self.head_dim);
            for (seg, mask) in segments.iter().zip(&masks) {
                let qb = q.slice_rows(seg.start, seg.end())?;
                let kb = k.slice_rows(seg.start, seg.end())?;
                let vb = v.slice_rows(seg.start, seg.end())?;
                let mut scores = qb.matmul_transpose(&kb)?.scale(scale);
                if let Some(mask) = mask {
                    scores = scores.add(mask)?;
                }
                let attn = scores.softmax_rows();
                head_out.paste_rows(seg.start, &attn.matmul(&vb)?)?;
            }
            concat = Some(match concat {
                None => head_out,
                Some(prev) => prev.concat_cols(&head_out)?,
            });
        }
        self.output
            .infer_par(store, &concat.expect("at least one head"), pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_autograd::Graph;

    fn setup(
        model_dim: usize,
        heads: usize,
        seed: u64,
    ) -> (ParamStore, MultiHeadSelfAttention, Rng) {
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "attn", model_dim, heads, &mut rng);
        (store, attn, rng)
    }

    #[test]
    fn output_shape_matches_input() {
        let (store, attn, mut rng) = setup(8, 4, 0);
        let x = Matrix::randn(6, 8, &mut rng);
        let out = attn.infer(&store, &x, None).unwrap();
        assert_eq!(out.shape(), (6, 8));
    }

    #[test]
    fn tape_and_inference_agree() {
        let (store, attn, mut rng) = setup(8, 2, 1);
        let x = Matrix::randn(5, 8, &mut rng);
        let mask = MultiHeadSelfAttention::padding_mask(5, 3);

        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(x.clone());
        let y = attn
            .forward(&mut g, &store, &mut binding, xv, Some(&mask))
            .unwrap();
        let inferred = attn.infer(&store, &x, Some(&mask)).unwrap();
        for (a, b) in g.value(y).as_slice().iter().zip(inferred.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn permutation_equivariance_over_rows() {
        // Swapping two input rows swaps the corresponding output rows (self-attention is
        // permutation-equivariant; combined with a final row-wise reduction this gives the
        // permutation-invariant Q values claimed in the paper).
        let (store, attn, mut rng) = setup(4, 2, 2);
        let a = Matrix::randn(1, 4, &mut rng);
        let b = Matrix::randn(1, 4, &mut rng);
        let c = Matrix::randn(1, 4, &mut rng);
        let abc = a.concat_rows(&b).unwrap().concat_rows(&c).unwrap();
        let cba = c.concat_rows(&b).unwrap().concat_rows(&a).unwrap();
        let out1 = attn.infer(&store, &abc, None).unwrap();
        let out2 = attn.infer(&store, &cba, None).unwrap();
        for col in 0..4 {
            assert!((out1.get(0, col) - out2.get(2, col)).abs() < 1e-5);
            assert!((out1.get(1, col) - out2.get(1, col)).abs() < 1e-5);
            assert!((out1.get(2, col) - out2.get(0, col)).abs() < 1e-5);
        }
    }

    #[test]
    fn padding_mask_blocks_padded_rows() {
        // The representation of real rows must be identical whether padded rows contain
        // zeros or garbage, as long as the mask hides them.
        let (store, attn, mut rng) = setup(4, 2, 3);
        let real = Matrix::randn(3, 4, &mut rng);
        let zeros_pad = real.concat_rows(&Matrix::zeros(2, 4)).unwrap();
        let garbage_pad = real
            .concat_rows(&Matrix::randn(2, 4, &mut rng).scale(50.0))
            .unwrap();
        let mask = MultiHeadSelfAttention::padding_mask(5, 3);
        let out_zero = attn.infer(&store, &zeros_pad, Some(&mask)).unwrap();
        let out_garbage = attn.infer(&store, &garbage_pad, Some(&mask)).unwrap();
        for r in 0..3 {
            for c in 0..4 {
                assert!(
                    (out_zero.get(r, c) - out_garbage.get(r, c)).abs() < 1e-4,
                    "row {r} col {c} differs"
                );
            }
        }
    }

    #[test]
    fn gradients_flow_to_all_heads() {
        let (store, attn, mut rng) = setup(8, 4, 4);
        let x = Matrix::randn(4, 8, &mut rng);
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(x);
        let y = attn
            .forward(&mut g, &store, &mut binding, xv, None)
            .unwrap();
        let loss = g.squared_sum(y);
        g.backward(loss).unwrap();
        let grads = binding.gradients(&g);
        // 4 heads * 3 projections + output weight + output bias.
        assert_eq!(grads.len(), 14);
        let nonzero = grads.iter().filter(|(_, m)| m.norm() > 0.0).count();
        assert!(nonzero >= 13, "only {nonzero} params received gradient");
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_head_dim_panics() {
        let mut rng = Rng::seed_from(5);
        let mut store = ParamStore::new();
        let _ = MultiHeadSelfAttention::new(&mut store, "bad", 7, 2, &mut rng);
    }

    #[test]
    fn packed_inference_is_bit_identical_to_per_segment_inference() {
        // The guarantee the batched Q-network path is built on: one packed forward pass
        // over N sessions' rows produces exactly the bits of N independent passes.
        let (store, attn, mut rng) = setup(8, 2, 6);
        let pools = [(5usize, 3usize), (4, 4), (6, 1)];
        let blocks: Vec<Matrix> = pools
            .iter()
            .map(|&(rows, _)| Matrix::randn(rows, 8, &mut rng))
            .collect();
        let block_refs: Vec<&Matrix> = blocks.iter().collect();
        let packed = Matrix::vstack(&block_refs).unwrap();
        let mut segments = Vec::new();
        let mut start = 0;
        for &(rows, real) in &pools {
            segments.push(PoolSegment {
                start,
                rows,
                real_rows: real,
            });
            start += rows;
        }
        let out = attn.infer_packed(&store, &packed, &segments).unwrap();
        for (block, seg) in blocks.iter().zip(&segments) {
            let mask = MultiHeadSelfAttention::padding_mask(seg.rows, seg.real_rows);
            let solo = attn.infer(&store, block, Some(&mask)).unwrap();
            assert_eq!(
                out.slice_rows(seg.start, seg.end()).unwrap(),
                solo,
                "segment starting at {} differs from the per-session pass",
                seg.start
            );
        }
    }

    #[test]
    fn forward_packed_matches_infer_packed_bit_for_bit() {
        // The training-side guarantee: the packed tape values are the very bits the packed
        // inference path produces, including a padded segment in the middle.
        let (store, attn, mut rng) = setup(8, 2, 8);
        let pools = [(4usize, 4usize), (5, 2), (3, 3)];
        let total: usize = pools.iter().map(|&(rows, _)| rows).sum();
        let x = Matrix::randn(total, 8, &mut rng);
        let mut segments = Vec::new();
        let mut start = 0;
        for &(rows, real) in &pools {
            segments.push(PoolSegment {
                start,
                rows,
                real_rows: real,
            });
            start += rows;
        }
        let inferred = attn.infer_packed(&store, &x, &segments).unwrap();

        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(x);
        let y = attn
            .forward_packed(&mut g, &store, &mut binding, xv, &segments)
            .unwrap();
        assert_eq!(
            g.value(y),
            &inferred,
            "tape forward_packed diverged from infer_packed"
        );
    }

    #[test]
    fn forward_packed_segments_match_per_segment_forward() {
        // Each segment's rows on the packed tape equal a standalone per-segment forward
        // with the matching padding mask — the property the packed learner's per-transition
        // Q values rest on.
        let (store, attn, mut rng) = setup(4, 2, 9);
        let blocks = [Matrix::randn(3, 4, &mut rng), Matrix::randn(5, 4, &mut rng)];
        let packed = Matrix::vstack(&[&blocks[0], &blocks[1]]).unwrap();
        let segments = [
            PoolSegment {
                start: 0,
                rows: 3,
                real_rows: 2,
            },
            PoolSegment {
                start: 3,
                rows: 5,
                real_rows: 5,
            },
        ];
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(packed);
        let y = attn
            .forward_packed(&mut g, &store, &mut binding, xv, &segments)
            .unwrap();
        for (block, seg) in blocks.iter().zip(&segments) {
            let mask = MultiHeadSelfAttention::padding_mask(seg.rows, seg.real_rows);
            let mut g_solo = Graph::new();
            let mut binding_solo = GraphBinding::new();
            let x_solo = g_solo.constant(block.clone());
            let y_solo = attn
                .forward(&mut g_solo, &store, &mut binding_solo, x_solo, Some(&mask))
                .unwrap();
            for r in 0..seg.rows {
                assert_eq!(
                    g.value(y).row(seg.start + r),
                    g_solo.value(y_solo).row(r),
                    "segment at {} row {r} differs from the standalone forward",
                    seg.start
                );
            }
        }
    }

    #[test]
    fn forward_packed_gradients_flow_to_all_heads() {
        let (store, attn, mut rng) = setup(8, 4, 10);
        let x = Matrix::randn(7, 8, &mut rng);
        let segments = [
            PoolSegment {
                start: 0,
                rows: 4,
                real_rows: 4,
            },
            PoolSegment {
                start: 4,
                rows: 3,
                real_rows: 3,
            },
        ];
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(x);
        let y = attn
            .forward_packed(&mut g, &store, &mut binding, xv, &segments)
            .unwrap();
        let loss = g.squared_sum(y);
        g.backward(loss).unwrap();
        let grads = binding.gradients(&g);
        // 4 heads * 3 projections + output weight + output bias.
        assert_eq!(grads.len(), 14);
        let nonzero = grads.iter().filter(|(_, m)| m.norm() > 0.0).count();
        assert!(nonzero >= 13, "only {nonzero} params received gradient");
    }

    #[test]
    fn gradcheck_forward_packed_two_unequal_segments() {
        // Finite-difference check of the scatter/gather backward across a 2-segment pack
        // with unequal pool sizes — the case a wrong row offset in the Vstack/SliceRows
        // VJPs would corrupt. Every parameter is tied to a gradcheck leaf through
        // GraphBinding::preset, so the check runs through forward_packed itself.
        use crowd_autograd::gradcheck::{check_gradient, ScalarFn};

        let (store, attn, mut rng) = setup(4, 2, 11);
        let segments = [
            PoolSegment {
                start: 0,
                rows: 2,
                real_rows: 2,
            },
            PoolSegment {
                start: 2,
                rows: 5,
                real_rows: 5,
            },
        ];
        let param_ids: Vec<ParamId> = store.iter().map(|(id, _, _)| id).collect();
        let mut inputs = vec![Matrix::randn(7, 4, &mut rng)];
        inputs.extend(store.iter().map(|(_, _, value)| value.clone()));

        let store_for_closure = store.clone();
        let attn_for_closure = attn.clone();
        let ids_for_closure = param_ids.clone();
        let f: Box<ScalarFn> = Box::new(move |g, leaf_ids| {
            let mut binding = GraphBinding::new();
            for (pid, leaf) in ids_for_closure.iter().zip(&leaf_ids[1..]) {
                binding.preset(*pid, *leaf);
            }
            let y = attn_for_closure
                .forward_packed(g, &store_for_closure, &mut binding, leaf_ids[0], &segments)
                .unwrap();
            g.squared_sum(y)
        });
        for idx in 0..inputs.len() {
            let report = check_gradient(&f, &inputs, idx, 1e-2);
            assert!(
                report.passes(5e-2),
                "forward_packed input {idx} ({}): {report:?}",
                if idx == 0 {
                    "x"
                } else {
                    store.name(param_ids[idx - 1])
                }
            );
        }
    }

    #[test]
    fn infer_packed_par_is_bit_identical_at_any_thread_count() {
        // A packed buffer tall enough that the stacked projections would shard on a real
        // multi-thread pool; the pooled result must be the exact serial bits regardless.
        let (store, attn, mut rng) = setup(8, 2, 12);
        let x = Matrix::randn(96, 8, &mut rng);
        let segments: Vec<PoolSegment> = (0..12)
            .map(|i| PoolSegment {
                start: i * 8,
                rows: 8,
                real_rows: if i % 3 == 0 { 5 } else { 8 },
            })
            .collect();
        let serial = attn.infer_packed(&store, &x, &segments).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = crowd_tensor::ThreadPool::new(threads);
            let pooled = attn.infer_packed_par(&store, &x, &segments, pool).unwrap();
            assert_eq!(pooled, serial, "diverged at {threads} threads");
        }
    }

    #[test]
    fn packed_inference_with_empty_segment_list_ignores_every_row() {
        let (store, attn, mut rng) = setup(4, 2, 7);
        let x = Matrix::randn(3, 4, &mut rng);
        // No segments: nothing to attend over; the result only carries the output bias.
        let out = attn.infer_packed(&store, &x, &[]).unwrap();
        assert_eq!(out.shape(), (3, 4));
    }
}
