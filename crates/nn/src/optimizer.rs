//! Gradient-descent optimizers operating on a [`ParamStore`].

use crate::param::{ParamId, ParamStore};
use crate::Result;
use crowd_tensor::Matrix;

/// A first-order optimizer that applies `(ParamId, gradient)` pairs to a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update step. Gradients are the output of
    /// [`GraphBinding::gradients`](crate::param::GraphBinding::gradients).
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Clips a gradient to the given global L2 norm; returns the (possibly scaled) gradient.
fn clip(grad: &Matrix, max_norm: Option<f32>) -> Matrix {
    match max_norm {
        Some(max) if grad.norm() > max && max > 0.0 => grad.scale(max / grad.norm()),
        _ => grad.clone(),
    }
}

/// Plain stochastic gradient descent with optional momentum and gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    max_grad_norm: Option<f32>,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            max_grad_norm: None,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Enables per-parameter gradient-norm clipping.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.max_grad_norm = Some(max_norm);
        self
    }

    fn slot(&mut self, idx: usize) -> &mut Option<Matrix> {
        if self.velocity.len() <= idx {
            self.velocity.resize(idx + 1, None);
        }
        &mut self.velocity[idx]
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) -> Result<()> {
        for (pid, grad) in grads {
            let grad = clip(grad, self.max_grad_norm);
            let update = if self.momentum > 0.0 {
                let momentum = self.momentum;
                let slot = self.slot(pid.index());
                let v = match slot.take() {
                    Some(mut v) => {
                        v = v.scale(momentum);
                        v.add_assign(&grad)?;
                        v
                    }
                    None => grad.clone(),
                };
                *slot = Some(v.clone());
                v
            } else {
                grad
            };
            store.get_mut(*pid).add_scaled_assign(&update, -self.lr)?;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and optional gradient clipping. This is the
/// optimizer used for both Q-networks and the Greedy+NN baseline (paper Sec. VII-B1 uses a
/// learning rate of 0.001).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    max_grad_norm: Option<f32>,
    t: u64,
    first_moment: Vec<Option<Matrix>>,
    second_moment: Vec<Option<Matrix>>,
}

impl Adam {
    /// Creates Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            max_grad_norm: None,
            t: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Enables per-parameter gradient-norm clipping.
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn ensure(&mut self, idx: usize) {
        if self.first_moment.len() <= idx {
            self.first_moment.resize(idx + 1, None);
            self.second_moment.resize(idx + 1, None);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) -> Result<()> {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (pid, grad) in grads {
            let grad = clip(grad, self.max_grad_norm);
            let idx = pid.index();
            self.ensure(idx);
            let (rows, cols) = grad.shape();

            let m_prev = self.first_moment[idx]
                .take()
                .unwrap_or_else(|| Matrix::zeros(rows, cols));
            let v_prev = self.second_moment[idx]
                .take()
                .unwrap_or_else(|| Matrix::zeros(rows, cols));

            let mut m = m_prev.scale(self.beta1);
            m.add_scaled_assign(&grad, 1.0 - self.beta1)?;
            let grad_sq = grad.hadamard(&grad)?;
            let mut v = v_prev.scale(self.beta2);
            v.add_scaled_assign(&grad_sq, 1.0 - self.beta2)?;

            let param = store.get_mut(*pid);
            {
                let p = param.as_mut_slice();
                let ms = m.as_slice();
                let vs = v.as_slice();
                for i in 0..p.len() {
                    let m_hat = ms[i] / bc1;
                    let v_hat = vs[i] / bc2;
                    p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            }

            self.first_moment[idx] = Some(m);
            self.second_moment[idx] = Some(v);
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Checkpoint format: learning rate, momentum and clip threshold (raw f32 bits /
/// `Option<f32>`), then the per-parameter velocity slots as `Vec<Option<Matrix>>`.
/// Hyper-parameters are saved too — `set_learning_rate` decay makes them runtime state.
impl crowd_ckpt::SaveState for Sgd {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_f32(self.lr);
        w.put_f32(self.momentum);
        w.save(&self.max_grad_norm);
        w.save(&self.velocity);
    }
}

impl crowd_ckpt::LoadState for Sgd {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        self.lr = r.take_f32()?;
        self.momentum = r.take_f32()?;
        self.max_grad_norm = r.decode()?;
        self.velocity = r.decode()?;
        Ok(())
    }
}

/// Checkpoint format: learning rate, β₁, β₂, ε and the clip threshold (raw bits), the
/// step counter `t` (`u64`), then the first- and second-moment slot vectors
/// (`Vec<Option<Matrix>>`). Restoring `t` with the moments matters: Adam's bias
/// correction depends on it, so a resumed step `t+1` is bit-identical to the
/// uninterrupted one.
impl crowd_ckpt::SaveState for Adam {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_f32(self.lr);
        w.put_f32(self.beta1);
        w.put_f32(self.beta2);
        w.put_f32(self.eps);
        w.save(&self.max_grad_norm);
        w.put_u64(self.t);
        w.save(&self.first_moment);
        w.save(&self.second_moment);
    }
}

impl crowd_ckpt::LoadState for Adam {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        self.lr = r.take_f32()?;
        self.beta1 = r.take_f32()?;
        self.beta2 = r.take_f32()?;
        self.eps = r.take_f32()?;
        self.max_grad_norm = r.decode()?;
        self.t = r.take_u64()?;
        self.first_moment = r.decode()?;
        self.second_moment = r.decode()?;
        if self.first_moment.len() != self.second_moment.len() {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "adam moments",
                detail: format!(
                    "{} first-moment slots vs {} second-moment slots",
                    self.first_moment.len(),
                    self.second_moment.len()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;

    fn quadratic_grad(store: &ParamStore, id: ParamId) -> Matrix {
        // Gradient of f(w) = ||w - 3||^2 is 2(w - 3).
        store.get(id).map(|v| 2.0 * (v - 3.0))
    }

    #[test]
    fn checkpointed_adam_resumes_bit_identically() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        // Train a few steps, snapshot, train on: the continuation from the restored
        // state must match the uninterrupted run to the bit (moments + t + params).
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::filled(2, 2, -4.0));
        let mut opt = Adam::new(0.05).with_grad_clip(3.0);
        for _ in 0..10 {
            let g = quadratic_grad(&store, id);
            opt.step(&mut store, &[(id, g)]).unwrap();
        }
        let mut snap = Snapshot::new();
        snap.put("store", &store);
        snap.put("adam", &opt);
        let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();

        let mut resumed_store = ParamStore::new();
        resumed_store.register("w", Matrix::zeros(2, 2));
        let mut resumed_opt = Adam::new(0.05); // clip comes from the snapshot
        file.load_into("store", &mut resumed_store).unwrap();
        file.load_into("adam", &mut resumed_opt).unwrap();
        assert_eq!(resumed_opt.steps(), 10);

        for _ in 0..25 {
            let g = quadratic_grad(&store, id);
            opt.step(&mut store, &[(id, g)]).unwrap();
            let g = quadratic_grad(&resumed_store, id);
            resumed_opt.step(&mut resumed_store, &[(id, g)]).unwrap();
        }
        for (a, b) in store
            .get(id)
            .as_slice()
            .iter()
            .zip(resumed_store.get(id).as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn checkpointed_sgd_momentum_resumes_bit_identically() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::filled(1, 3, 8.0));
        let mut opt = Sgd::new(0.02).with_momentum(0.9);
        for _ in 0..5 {
            let g = quadratic_grad(&store, id);
            opt.step(&mut store, &[(id, g)]).unwrap();
        }
        let mut snap = Snapshot::new();
        snap.put("sgd", &opt);
        let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();
        let mut resumed = Sgd::new(0.0);
        file.load_into("sgd", &mut resumed).unwrap();
        assert_eq!(resumed.learning_rate(), 0.02);
        let mut resumed_store = store.clone();
        for _ in 0..10 {
            let g = quadratic_grad(&store, id);
            opt.step(&mut store, &[(id, g)]).unwrap();
            let g = quadratic_grad(&resumed_store, id);
            resumed.step(&mut resumed_store, &[(id, g)]).unwrap();
        }
        assert_eq!(store.get(id), resumed_store.get(id));
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::zeros(2, 2));
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&store, id);
            opt.step(&mut store, &[(id, g)]).unwrap();
        }
        assert!(store
            .get(id)
            .as_slice()
            .iter()
            .all(|v| (v - 3.0).abs() < 1e-3));
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::zeros(1, 4));
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..300 {
            let g = quadratic_grad(&store, id);
            opt.step(&mut store, &[(id, g)]).unwrap();
        }
        assert!(store
            .get(id)
            .as_slice()
            .iter()
            .all(|v| (v - 3.0).abs() < 1e-2));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::filled(3, 1, -5.0));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&store, id);
            opt.step(&mut store, &[(id, g)]).unwrap();
        }
        assert_eq!(opt.steps(), 500);
        assert!(store
            .get(id)
            .as_slice()
            .iter()
            .all(|v| (v - 3.0).abs() < 1e-2));
    }

    #[test]
    fn gradient_clipping_limits_update_magnitude() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::zeros(1, 1));
        let mut opt = Sgd::new(1.0).with_grad_clip(1.0);
        let huge = Matrix::filled(1, 1, 1000.0);
        opt.step(&mut store, &[(id, huge)]).unwrap();
        // Without clipping the step would be -1000; clipped it is -1.
        assert!((store.get(id).get(0, 0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn adam_handles_multiple_params_with_distinct_state() {
        let mut store = ParamStore::new();
        let a = store.register("a", Matrix::zeros(1, 1));
        let b = store.register("b", Matrix::filled(1, 1, 10.0));
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let ga = quadratic_grad(&store, a);
            let gb = quadratic_grad(&store, b);
            opt.step(&mut store, &[(a, ga), (b, gb)]).unwrap();
        }
        assert!((store.get(a).get(0, 0) - 3.0).abs() < 0.05);
        assert!((store.get(b).get(0, 0) - 3.0).abs() < 0.05);
    }
}
