//! Trainable parameter storage decoupled from any particular autograd tape.

use crowd_autograd::{Graph, VarId};
use crowd_tensor::Matrix;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index; stable for the lifetime of the store.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Param {
    name: String,
    value: Matrix,
}

/// A flat collection of named trainable matrices.
///
/// Layers register their parameters here at construction time and look the values up on every
/// forward pass. The double-DQN target network is a second `ParamStore` refreshed with
/// [`ParamStore::copy_from`].
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let id = ParamId(self.params.len());
        self.params.push(Param {
            name: name.into(),
            value,
        });
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameter is registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Immutable access to a parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to a parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterates over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| (ParamId(i), p.name.as_str(), &p.value))
    }

    /// Hard-copies every parameter value from `other`. Both stores must have been built by
    /// constructing the same layers in the same order (same shapes at the same indices);
    /// this is how the target network θ̃ ← θ sync of double DQN is implemented.
    ///
    /// # Panics
    ///
    /// Panics if the two stores have a different number of parameters or mismatched shapes —
    /// that is a programming error, not a runtime condition.
    pub fn copy_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.params.len(),
            other.params.len(),
            "copy_from: param count mismatch"
        );
        for (dst, src) in self.params.iter_mut().zip(other.params.iter()) {
            assert_eq!(
                dst.value.shape(),
                src.value.shape(),
                "copy_from: shape mismatch for {}",
                dst.name
            );
            dst.value = src.value.clone();
        }
    }

    /// Polyak (soft) update `θ̃ ← τ·θ + (1-τ)·θ̃`; exposed for experimentation even though the
    /// paper uses hard copies every 100 iterations.
    pub fn soft_update_from(&mut self, other: &ParamStore, tau: f32) {
        assert_eq!(self.params.len(), other.params.len());
        for (dst, src) in self.params.iter_mut().zip(other.params.iter()) {
            let blended = dst
                .value
                .scale(1.0 - tau)
                .add(&src.value.scale(tau))
                .expect("soft_update_from: shape mismatch");
            dst.value = blended;
        }
    }

    /// Sum of squared weights; useful for L2 diagnostics and tests.
    pub fn squared_norm(&self) -> f32 {
        self.params.iter().map(|p| p.value.squared_norm()).sum()
    }
}

/// Checkpoint format: parameter count (`u64`), then per parameter its registration name
/// (length-prefixed string) and value matrix. Names and shapes ride along as load-time
/// validation: restoring into a store built by constructing different layers (or the
/// same layers in a different order) is config drift, and fails with a typed error
/// instead of silently training the wrong weights.
impl crowd_ckpt::SaveState for ParamStore {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_usize(self.params.len());
        for p in &self.params {
            w.put_str(&p.name);
            w.save(&p.value);
        }
    }
}

/// Loading into an **empty** store adopts the saved layout wholesale (registering every
/// parameter from the stream); loading into a populated store overwrites values in place
/// after validating count, names and shapes.
impl crowd_ckpt::LoadState for ParamStore {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let count = r.take_len("param store", 1)?;
        if self.params.is_empty() {
            for _ in 0..count {
                let name = r.take_str()?;
                let value: Matrix = r.decode()?;
                self.register(name, value);
            }
            return Ok(());
        }
        if count != self.params.len() {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "param store",
                detail: format!(
                    "snapshot holds {count} parameters, the live store {}",
                    self.params.len()
                ),
            });
        }
        for p in &mut self.params {
            let name = r.take_str()?;
            let value: Matrix = r.decode()?;
            if name != p.name || value.shape() != p.value.shape() {
                return Err(crowd_ckpt::CkptError::Corrupt {
                    what: "param store",
                    detail: format!(
                        "snapshot parameter {name:?} {:?} does not match live parameter {:?} {:?}",
                        value.shape(),
                        p.name,
                        p.value.shape()
                    ),
                });
            }
            p.value = value;
        }
        Ok(())
    }
}

/// Per-forward-pass mapping from [`ParamId`] to the tape node holding that parameter's value.
///
/// A fresh binding is created for each forward pass (each new [`Graph`]); after `backward`,
/// [`GraphBinding::gradients`] collects `(ParamId, gradient)` pairs for the optimizer.
#[derive(Debug, Default)]
pub struct GraphBinding {
    bound: Vec<(ParamId, VarId)>,
}

impl GraphBinding {
    /// Creates an empty binding.
    pub fn new() -> Self {
        GraphBinding::default()
    }

    /// Returns the tape node for `id`, inserting the parameter value as a differentiable leaf
    /// the first time it is requested in this graph.
    pub fn bind(&mut self, graph: &mut Graph, store: &ParamStore, id: ParamId) -> VarId {
        if let Some(&(_, var)) = self.bound.iter().find(|(p, _)| *p == id) {
            return var;
        }
        let var = graph.leaf(store.get(id).clone());
        self.bound.push((id, var));
        var
    }

    /// Pre-binds `id` to an existing tape node, so every later [`GraphBinding::bind`] for it
    /// returns `var` instead of inserting a fresh leaf. This ties a layer's parameter to a
    /// node the caller controls — e.g. a `crowd_autograd::gradcheck` leaf, so a finite
    /// difference check can perturb a layer's weights through the layer's own `forward`
    /// path, or a shared node when two layers must use identical weights on one tape.
    ///
    /// The preset wins only if it happens before the first `bind` of `id`; presetting an
    /// already-bound parameter is a programming error.
    ///
    /// # Panics
    ///
    /// Panics when `id` is already bound in this graph.
    pub fn preset(&mut self, id: ParamId, var: VarId) {
        assert!(
            self.bound.iter().all(|(p, _)| *p != id),
            "preset: parameter {} is already bound",
            id.index()
        );
        self.bound.push((id, var));
    }

    /// Number of parameters bound so far.
    pub fn len(&self) -> usize {
        self.bound.len()
    }

    /// True when nothing has been bound.
    pub fn is_empty(&self) -> bool {
        self.bound.is_empty()
    }

    /// Collects `(param, gradient)` pairs after a backward pass. Parameters that did not
    /// receive a gradient (e.g. unused heads) get a zero matrix of the right shape.
    pub fn gradients(&self, graph: &Graph) -> Vec<(ParamId, Matrix)> {
        self.bound
            .iter()
            .map(|&(pid, vid)| {
                let grad = graph.grad(vid).cloned().unwrap_or_else(|| {
                    let v = graph.value(vid);
                    Matrix::zeros(v.rows(), v.cols())
                });
                (pid, grad)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_tensor::Rng;

    #[test]
    fn checkpoint_into_empty_and_populated_stores() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        let mut rng = Rng::seed_from(5);
        let mut store = ParamStore::new();
        store.register("a", Matrix::randn(2, 3, &mut rng));
        store.register("b", Matrix::randn(1, 4, &mut rng));
        let mut snap = Snapshot::new();
        snap.put("params", &store);
        let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();

        // Empty target adopts the saved layout.
        let mut empty = ParamStore::new();
        file.load_into("params", &mut empty).unwrap();
        assert_eq!(empty.len(), 2);
        assert_eq!(empty.name(ParamId(1)), "b");
        for ((_, _, x), (_, _, y)) in store.iter().zip(empty.iter()) {
            for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // A matching populated target is overwritten in place.
        let mut twin = ParamStore::new();
        twin.register("a", Matrix::zeros(2, 3));
        twin.register("b", Matrix::zeros(1, 4));
        file.load_into("params", &mut twin).unwrap();
        assert_eq!(twin.get(ParamId(0)), store.get(ParamId(0)));

        // Mismatched layout (different name) is config drift → typed error.
        let mut drifted = ParamStore::new();
        drifted.register("a", Matrix::zeros(2, 3));
        drifted.register("c", Matrix::zeros(1, 4));
        assert!(file.load_into("params", &mut drifted).is_err());

        // Mismatched shape as well.
        let mut reshaped = ParamStore::new();
        reshaped.register("a", Matrix::zeros(3, 2));
        reshaped.register("b", Matrix::zeros(1, 4));
        assert!(file.load_into("params", &mut reshaped).is_err());
    }

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::ones(2, 3));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_weights(), 6);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.get(id).shape(), (2, 3));
        store.get_mut(id).set(0, 0, 5.0);
        assert_eq!(store.get(id).get(0, 0), 5.0);
    }

    #[test]
    fn copy_from_syncs_values() {
        let mut rng = Rng::seed_from(1);
        let mut a = ParamStore::new();
        let mut b = ParamStore::new();
        let ida = a.register("w", Matrix::randn(3, 3, &mut rng));
        let idb = b.register("w", Matrix::zeros(3, 3));
        b.copy_from(&a);
        assert_eq!(b.get(idb), a.get(ida));
    }

    #[test]
    #[should_panic(expected = "param count mismatch")]
    fn copy_from_panics_on_count_mismatch() {
        let a = ParamStore::new();
        let mut b = ParamStore::new();
        b.register("w", Matrix::zeros(1, 1));
        b.copy_from(&a);
    }

    #[test]
    fn soft_update_blends() {
        let mut a = ParamStore::new();
        let mut b = ParamStore::new();
        a.register("w", Matrix::filled(1, 1, 10.0));
        let idb = b.register("w", Matrix::filled(1, 1, 0.0));
        b.soft_update_from(&a, 0.1);
        assert!((b.get(idb).get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn binding_reuses_nodes_and_collects_grads() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::filled(1, 2, 3.0));
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let v1 = binding.bind(&mut g, &store, id);
        let v2 = binding.bind(&mut g, &store, id);
        assert_eq!(v1, v2);
        assert_eq!(binding.len(), 1);

        let loss = g.squared_sum(v1);
        g.backward(loss).unwrap();
        let grads = binding.gradients(&g);
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1.as_slice(), &[6.0, 6.0]);
    }

    #[test]
    fn preset_ties_param_to_external_leaf() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::filled(1, 2, 3.0));
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        // The external leaf deliberately carries a different value than the store: bind
        // must return it untouched, proving the store value is bypassed.
        let external = g.leaf(Matrix::filled(1, 2, 5.0));
        binding.preset(id, external);
        let bound = binding.bind(&mut g, &store, id);
        assert_eq!(bound, external);
        assert_eq!(g.value(bound).as_slice(), &[5.0, 5.0]);
        let loss = g.squared_sum(bound);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(external).unwrap().as_slice(), &[10.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn preset_after_bind_panics() {
        let mut store = ParamStore::new();
        let id = store.register("w", Matrix::ones(1, 1));
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let bound = binding.bind(&mut g, &store, id);
        binding.preset(id, bound);
    }

    #[test]
    fn unused_bound_param_gets_zero_grad() {
        let mut store = ParamStore::new();
        let used = store.register("used", Matrix::ones(1, 1));
        let unused = store.register("unused", Matrix::ones(2, 2));
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let u = binding.bind(&mut g, &store, used);
        let _nu = binding.bind(&mut g, &store, unused);
        let loss = g.squared_sum(u);
        g.backward(loss).unwrap();
        let grads = binding.gradients(&g);
        let unused_grad = &grads.iter().find(|(p, _)| *p == unused).unwrap().1;
        assert_eq!(unused_grad.as_slice(), &[0.0; 4]);
    }
}
