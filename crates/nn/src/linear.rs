//! Fully-connected layers: plain [`Linear`] and the paper's row-wise feed-forward
//! [`RowwiseFF`] (`rFF(X) = relu(XW + b)`, Fig. 3, implemented with a small leaky slope so
//! units cannot die under the DQN's bootstrapped targets).

use crate::param::{GraphBinding, ParamId, ParamStore};
use crate::Result;
use crowd_autograd::{Graph, VarId};
use crowd_tensor::{Matrix, Rng};

/// An affine layer `Y = X W + b` applied row-wise (every row of `X` is an item).
///
/// Because the transformation of each row is independent of every other row, stacking these
/// layers preserves the permutation-invariance required by the paper's set representation
/// (Appendix, Proof 1).
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer in `store` with Xavier-initialised weights and zero bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        let weight = store.register(
            format!("{name}.weight"),
            Matrix::xavier(in_dim, out_dim, rng),
        );
        let bias = store.register(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Linear {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the affine map on the tape. `x` must be `n x in_dim`; the result is
    /// `n x out_dim`.
    pub fn forward(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        binding: &mut GraphBinding,
        x: VarId,
    ) -> Result<VarId> {
        let w = binding.bind(graph, store, self.weight);
        let b = binding.bind(graph, store, self.bias);
        let xw = graph.matmul(x, w)?;
        graph.add_row_broadcast(xw, b)
    }

    /// Forward pass outside any tape (inference only); avoids graph overhead when gradients
    /// are not needed, e.g. when evaluating the frozen target network.
    pub fn infer(&self, store: &ParamStore, x: &Matrix) -> Result<Matrix> {
        self.infer_par(store, x, crowd_tensor::ThreadPool::serial())
    }

    /// [`Linear::infer`] with a row-sharded matmul over `pool` — the batched-inference
    /// path, where `x` is a packed `[Σ pool sizes, in_dim]` buffer large enough to split.
    /// Bit-identical to the serial pass at any thread count
    /// (`crowd_tensor::Matrix::matmul_par`).
    pub fn infer_par(
        &self,
        store: &ParamStore,
        x: &Matrix,
        pool: crowd_tensor::ThreadPool,
    ) -> Result<Matrix> {
        let xw = x.matmul_par(store.get(self.weight), pool)?;
        xw.add_row_broadcast(store.get(self.bias))
    }
}

/// Negative-side slope of the leaky rectifier used by [`RowwiseFF`].
///
/// A plain ReLU lets the DQN's large bootstrapped TD targets kill first-layer units
/// outright (both inputs of a pair land in the flat region and the Q function collapses to
/// a row-independent constant — observed in `crowd-rl-core`'s learner tests); the small
/// leak keeps a gradient path open without noticeably changing the forward pass.
pub const LEAKY_SLOPE: f32 = 0.01;

/// The paper's row-wise feed-forward block: `rFF(X) = relu(X W + b)` (leaky variant).
#[derive(Debug, Clone)]
pub struct RowwiseFF {
    linear: Linear,
}

impl RowwiseFF {
    /// Registers a new rFF block.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        RowwiseFF {
            linear: Linear::new(store, name, in_dim, out_dim, rng),
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.linear.in_dim()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.linear.out_dim()
    }

    /// Applies `leaky_relu(XW + b)` on the tape, composed from primitive ops:
    /// `leaky(z) = relu(z) - slope * relu(-z)`.
    pub fn forward(
        &self,
        graph: &mut Graph,
        store: &ParamStore,
        binding: &mut GraphBinding,
        x: VarId,
    ) -> Result<VarId> {
        let affine = self.linear.forward(graph, store, binding, x)?;
        let pos = graph.relu(affine);
        let negated = graph.scale(affine, -1.0);
        let neg = graph.relu(negated);
        let leak = graph.scale(neg, LEAKY_SLOPE);
        graph.sub(pos, leak)
    }

    /// Gradient-free forward pass.
    pub fn infer(&self, store: &ParamStore, x: &Matrix) -> Result<Matrix> {
        self.infer_par(store, x, crowd_tensor::ThreadPool::serial())
    }

    /// [`RowwiseFF::infer`] with the affine map's matmul sharded over `pool`; bit-identical
    /// to the serial pass (the activation is element-wise).
    pub fn infer_par(
        &self,
        store: &ParamStore,
        x: &Matrix,
        pool: crowd_tensor::ThreadPool,
    ) -> Result<Matrix> {
        Ok(self
            .linear
            .infer_par(store, x, pool)?
            .map(|v| if v > 0.0 { v } else { LEAKY_SLOPE * v }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_autograd::Graph;

    #[test]
    fn linear_shapes_and_registration() {
        let mut rng = Rng::seed_from(0);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "l", 5, 3, &mut rng);
        assert_eq!(store.len(), 2);
        assert_eq!(layer.in_dim(), 5);
        assert_eq!(layer.out_dim(), 3);

        let x = Matrix::randn(7, 5, &mut rng);
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(x.clone());
        let y = layer.forward(&mut g, &store, &mut binding, xv).unwrap();
        assert_eq!(g.value(y).shape(), (7, 3));
        // Tape forward and inference forward agree.
        let inferred = layer.infer(&store, &x).unwrap();
        for (a, b) in g.value(y).as_slice().iter().zip(inferred.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rowwise_ff_is_a_leaky_rectifier() {
        let mut rng = Rng::seed_from(1);
        let mut store = ParamStore::new();
        let ff = RowwiseFF::new(&mut store, "ff", 4, 6, &mut rng);
        let x = Matrix::randn(3, 4, &mut rng);
        let out = ff.infer(&store, &x).unwrap();
        assert_eq!(out.shape(), (3, 6));
        // Negative side is attenuated by the leaky slope, so outputs hug zero from below.
        let pre = ff.linear.infer(&store, &x).unwrap();
        for (&z, &v) in pre.as_slice().iter().zip(out.as_slice()) {
            let expected = if z > 0.0 { z } else { LEAKY_SLOPE * z };
            assert!((v - expected).abs() < 1e-6);
        }
        // Tape forward agrees with inference (covers the composite leaky construction).
        let mut g = crowd_autograd::Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(x.clone());
        let y = ff.forward(&mut g, &store, &mut binding, xv).unwrap();
        for (a, b) in g.value(y).as_slice().iter().zip(out.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rowwise_ff_is_permutation_invariant() {
        // Swapping input rows swaps output rows identically (Proof 1 of the paper).
        let mut rng = Rng::seed_from(2);
        let mut store = ParamStore::new();
        let ff = RowwiseFF::new(&mut store, "ff", 4, 4, &mut rng);
        let a = Matrix::randn(1, 4, &mut rng);
        let b = Matrix::randn(1, 4, &mut rng);
        let ab = a.concat_rows(&b).unwrap();
        let ba = b.concat_rows(&a).unwrap();
        let out_ab = ff.infer(&store, &ab).unwrap();
        let out_ba = ff.infer(&store, &ba).unwrap();
        assert_eq!(out_ab.row(0), out_ba.row(1));
        assert_eq!(out_ab.row(1), out_ba.row(0));
    }

    #[test]
    fn linear_gradient_flows_into_params() {
        let mut rng = Rng::seed_from(3);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let xv = g.constant(Matrix::randn(4, 3, &mut rng));
        let y = layer.forward(&mut g, &store, &mut binding, xv).unwrap();
        let loss = g.squared_sum(y);
        g.backward(loss).unwrap();
        let grads = binding.gradients(&g);
        assert_eq!(grads.len(), 2);
        assert!(grads.iter().any(|(_, m)| m.norm() > 0.0));
    }
}
