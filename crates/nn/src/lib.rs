//! Neural-network building blocks on top of [`crowd_autograd`].
//!
//! This crate provides what the paper's models need and nothing more:
//!
//! * a [`ParamStore`] holding named trainable matrices outside any particular tape, so a
//!   target network Q̃ is simply a second store copied from θ (double Q-learning, Sec. IV-D);
//! * [`Linear`] / [`RowwiseFF`] layers — the "row-wise Linear Layer" rFF(X) = relu(XW + b)
//!   of Fig. 3;
//! * [`MultiHeadSelfAttention`] — the attention layer of Fig. 4 with additive masking for
//!   zero-padded rows, plus the packed batched-inference path
//!   ([`MultiHeadSelfAttention::infer_packed`]) that runs attention for `N` sessions over
//!   one `[Σ pool sizes, dim]` buffer with per-session [`PoolSegment`] offsets;
//! * [`Mlp`] — the two-hidden-layer feed-forward regressor used by the Greedy+NN baseline;
//! * [`Sgd`] and [`Adam`] optimizers with optional gradient clipping.
//!
//! # One gradient step
//!
//! ```
//! use crowd_nn::{Adam, GraphBinding, Linear, Optimizer, ParamStore};
//! use crowd_autograd::Graph;
//! use crowd_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "lin", 4, 1, &mut rng);
//! let mut opt = Adam::new(0.01);
//!
//! // One gradient step on a toy regression target.
//! let x = Matrix::randn(8, 4, &mut rng);
//! let target = Matrix::zeros(8, 1);
//! let mut g = Graph::new();
//! let mut binding = GraphBinding::new();
//! let xv = g.constant(x);
//! let y = layer.forward(&mut g, &store, &mut binding, xv).unwrap();
//! let loss = g.masked_mse(y, &target, &Matrix::ones(8, 1)).unwrap();
//! g.backward(loss).unwrap();
//! opt.step(&mut store, &binding.gradients(&g)).unwrap();
//! ```
//!
//! # Packed attention for batched inference
//!
//! The row-wise Q/K/V and output projections of [`MultiHeadSelfAttention`] run as stacked
//! matmuls over a packed buffer; scores and softmax stay within each session's
//! [`PoolSegment`], so sessions never attend to each other and every block comes out
//! bit-identical to a per-session pass:
//!
//! ```
//! use crowd_nn::{MultiHeadSelfAttention, ParamStore, PoolSegment};
//! use crowd_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(3);
//! let mut store = ParamStore::new();
//! let attn = MultiHeadSelfAttention::new(&mut store, "attn", 8, 2, &mut rng);
//!
//! // Two sessions with 3 and 5 available tasks, packed back to back.
//! let a = Matrix::randn(3, 8, &mut rng);
//! let b = Matrix::randn(5, 8, &mut rng);
//! let packed = Matrix::vstack(&[&a, &b]).unwrap();
//! let segments = [
//!     PoolSegment { start: 0, rows: 3, real_rows: 3 },
//!     PoolSegment { start: 3, rows: 5, real_rows: 5 },
//! ];
//! let out = attn.infer_packed(&store, &packed, &segments).unwrap();
//!
//! // Each block equals the standalone pass over that session alone.
//! assert_eq!(out.slice_rows(0, 3).unwrap(), attn.infer(&store, &a, None).unwrap());
//! assert_eq!(out.slice_rows(3, 8).unwrap(), attn.infer(&store, &b, None).unwrap());
//! ```

pub mod attention;
pub mod linear;
pub mod mlp;
pub mod optimizer;
pub mod param;

pub use attention::{MultiHeadSelfAttention, PoolSegment};
pub use linear::{Linear, RowwiseFF};
pub use mlp::Mlp;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use param::{GraphBinding, ParamId, ParamStore};

/// Result alias shared with the numeric substrate.
pub type Result<T> = crowd_tensor::Result<T>;
