//! Neural-network building blocks on top of [`crowd_autograd`].
//!
//! This crate provides what the paper's models need and nothing more:
//!
//! * a [`ParamStore`] holding named trainable matrices outside any particular tape, so a
//!   target network Q̃ is simply a second store copied from θ (double Q-learning, Sec. IV-D);
//! * [`Linear`] / [`RowwiseFF`] layers — the "row-wise Linear Layer" rFF(X) = relu(XW + b)
//!   of Fig. 3;
//! * [`MultiHeadSelfAttention`] — the attention layer of Fig. 4 with additive masking for
//!   zero-padded rows;
//! * [`Mlp`] — the two-hidden-layer feed-forward regressor used by the Greedy+NN baseline;
//! * [`Sgd`] and [`Adam`] optimizers with optional gradient clipping.
//!
//! ```
//! use crowd_nn::{Adam, GraphBinding, Linear, Optimizer, ParamStore};
//! use crowd_autograd::Graph;
//! use crowd_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(0);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "lin", 4, 1, &mut rng);
//! let mut opt = Adam::new(0.01);
//!
//! // One gradient step on a toy regression target.
//! let x = Matrix::randn(8, 4, &mut rng);
//! let target = Matrix::zeros(8, 1);
//! let mut g = Graph::new();
//! let mut binding = GraphBinding::new();
//! let xv = g.constant(x);
//! let y = layer.forward(&mut g, &store, &mut binding, xv).unwrap();
//! let loss = g.masked_mse(y, &target, &Matrix::ones(8, 1)).unwrap();
//! g.backward(loss).unwrap();
//! opt.step(&mut store, &binding.gradients(&g)).unwrap();
//! ```

pub mod attention;
pub mod linear;
pub mod mlp;
pub mod optimizer;
pub mod param;

pub use attention::MultiHeadSelfAttention;
pub use linear::{Linear, RowwiseFF};
pub use mlp::Mlp;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use param::{GraphBinding, ParamId, ParamStore};

/// Result alias shared with the numeric substrate.
pub type Result<T> = crowd_tensor::Result<T>;
