//! A small multi-layer perceptron regressor.
//!
//! The paper's Greedy+NN baseline (Sec. VII-A3) "inputs the worker and task features into a
//! neural network of two hidden layers to predict the completion rate"; this type is that
//! network. It owns its parameters and optimizer, so callers just `fit` on minibatches and
//! `predict` scores.

use crate::linear::{Linear, RowwiseFF};
use crate::optimizer::{Adam, Optimizer};
use crate::param::{GraphBinding, ParamStore};
use crate::Result;
use crowd_autograd::Graph;
use crowd_tensor::{Matrix, Rng};

/// Feed-forward regressor: `input -> [hidden, relu]* -> linear -> scalar per row`.
#[derive(Debug)]
pub struct Mlp {
    store: ParamStore,
    hidden: Vec<RowwiseFF>,
    head: Linear,
    optimizer: Adam,
    input_dim: usize,
}

impl Mlp {
    /// Builds an MLP with the given hidden layer widths (e.g. `&[64, 64]` for the paper's
    /// two-hidden-layer baseline) and a single scalar output per input row.
    pub fn new(input_dim: usize, hidden_dims: &[usize], learning_rate: f32, rng: &mut Rng) -> Self {
        let mut store = ParamStore::new();
        let mut hidden = Vec::with_capacity(hidden_dims.len());
        let mut prev = input_dim;
        for (i, &width) in hidden_dims.iter().enumerate() {
            hidden.push(RowwiseFF::new(
                &mut store,
                &format!("hidden{i}"),
                prev,
                width,
                rng,
            ));
            prev = width;
        }
        let head = Linear::new(&mut store, "head", prev, 1, rng);
        Mlp {
            store,
            hidden,
            head,
            optimizer: Adam::new(learning_rate),
            input_dim,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Total number of trainable scalars.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Predicts one score per row of `x` (shape `n x input_dim` → `n`-element vector).
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f32>> {
        let mut h = x.clone();
        for layer in &self.hidden {
            h = layer.infer(&self.store, &h)?;
        }
        let out = self.head.infer(&self.store, &h)?;
        Ok(out.col(0))
    }

    /// Runs one gradient step on a minibatch of `(features, target)` rows and returns the
    /// batch mean-squared error before the update.
    pub fn fit_batch(&mut self, x: &Matrix, targets: &[f32]) -> Result<f32> {
        debug_assert_eq!(x.rows(), targets.len());
        let mut g = Graph::new();
        let mut binding = GraphBinding::new();
        let mut h = g.constant(x.clone());
        for layer in &self.hidden {
            h = layer.forward(&mut g, &self.store, &mut binding, h)?;
        }
        let pred = self.head.forward(&mut g, &self.store, &mut binding, h)?;
        let target = Matrix::col_vector(targets);
        let mask = Matrix::ones(targets.len(), 1);
        let loss = g.masked_mse(pred, &target, &mask)?;
        let loss_value = g.value(loss).get(0, 0);
        g.backward(loss)?;
        let grads = binding.gradients(&g);
        self.optimizer.step(&mut self.store, &grads)?;
        Ok(loss_value)
    }

    /// Trains for `epochs` passes over the dataset with the given minibatch size, shuffling
    /// between epochs. Returns the final epoch's mean loss; returns 0.0 for an empty dataset.
    pub fn fit(
        &mut self,
        x: &Matrix,
        targets: &[f32],
        epochs: usize,
        batch_size: usize,
        rng: &mut Rng,
    ) -> Result<f32> {
        if x.rows() == 0 {
            return Ok(0.0);
        }
        debug_assert_eq!(x.rows(), targets.len());
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size.max(1)) {
                let mut rows = Vec::with_capacity(chunk.len());
                let mut ys = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    rows.push(x.row(i).to_vec());
                    ys.push(targets[i]);
                }
                let batch = Matrix::from_rows(&rows)?;
                epoch_loss += self.fit_batch(&batch, &ys)?;
                batches += 1;
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f32;
        }
        Ok(last_epoch_loss)
    }
}

/// Checkpointing: an [`Mlp`]'s dynamic state is its parameter store plus the Adam
/// optimizer's moments and step count. The architecture (input dimension, hidden
/// widths) is written as a validation header, so restoring into a differently-shaped
/// scaffold is a typed [`CkptError::Corrupt`](crowd_ckpt::CkptError::Corrupt) instead
/// of silent weight corruption; the scaffold's initial weights are fully overwritten
/// by the (shape-validated) [`ParamStore`] load.
impl crowd_ckpt::SaveState for Mlp {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_usize(self.input_dim);
        w.put_usize(self.hidden.len());
        for layer in &self.hidden {
            w.put_usize(layer.out_dim());
        }
        crowd_ckpt::SaveState::save_state(&self.store, w);
        crowd_ckpt::SaveState::save_state(&self.optimizer, w);
    }
}

impl crowd_ckpt::LoadState for Mlp {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let input_dim = r.take_usize()?;
        let layers = r.take_len("mlp hidden widths", 8)?;
        let mut widths = Vec::with_capacity(layers);
        for _ in 0..layers {
            widths.push(r.take_usize()?);
        }
        let own: Vec<usize> = self.hidden.iter().map(RowwiseFF::out_dim).collect();
        if input_dim != self.input_dim || widths != own {
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "MLP architecture",
                detail: format!(
                    "snapshot is {input_dim}->{widths:?}, restore target is {}->{own:?}",
                    self.input_dim
                ),
            });
        }
        crowd_ckpt::LoadState::load_state(&mut self.store, r)?;
        crowd_ckpt::LoadState::load_state(&mut self.optimizer, r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_ckpt::{LoadState, SaveState};

    #[test]
    fn shapes_and_weight_count() {
        let mut rng = Rng::seed_from(0);
        let mlp = Mlp::new(6, &[8, 8], 0.01, &mut rng);
        assert_eq!(mlp.input_dim(), 6);
        // 6*8+8 + 8*8+8 + 8*1+1 = 56 + 72 + 9 = 137.
        assert_eq!(mlp.num_weights(), 137);
        let x = Matrix::randn(5, 6, &mut rng);
        assert_eq!(mlp.predict(&x).unwrap().len(), 5);
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = Rng::seed_from(1);
        let mut mlp = Mlp::new(3, &[16, 16], 0.01, &mut rng);
        // Target: y = 2*x0 - x1 + 0.5*x2.
        let n = 256;
        let x = Matrix::rand_uniform(n, 3, -1.0, 1.0, &mut rng);
        let y: Vec<f32> = (0..n)
            .map(|i| 2.0 * x.get(i, 0) - x.get(i, 1) + 0.5 * x.get(i, 2))
            .collect();
        let final_loss = mlp.fit(&x, &y, 60, 32, &mut rng).unwrap();
        assert!(final_loss < 0.05, "final loss {final_loss}");

        // Generalises to unseen points.
        let x_test = Matrix::rand_uniform(64, 3, -1.0, 1.0, &mut rng);
        let preds = mlp.predict(&x_test).unwrap();
        let mut mse = 0.0;
        for (i, pred) in preds.iter().enumerate() {
            let truth = 2.0 * x_test.get(i, 0) - x_test.get(i, 1) + 0.5 * x_test.get(i, 2);
            mse += (pred - truth).powi(2);
        }
        mse /= preds.len() as f32;
        assert!(mse < 0.1, "test mse {mse}");
    }

    #[test]
    fn learns_a_nonlinear_decision_signal() {
        let mut rng = Rng::seed_from(2);
        let mut mlp = Mlp::new(2, &[16, 16], 0.02, &mut rng);
        // Target: completion probability is high only when both features are positive —
        // mirrors "worker likes category AND award is high".
        let n = 300;
        let x = Matrix::rand_uniform(n, 2, -1.0, 1.0, &mut rng);
        let y: Vec<f32> = (0..n)
            .map(|i| {
                if x.get(i, 0) > 0.0 && x.get(i, 1) > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        mlp.fit(&x, &y, 80, 32, &mut rng).unwrap();
        let both_pos = mlp
            .predict(&Matrix::from_vec(1, 2, vec![0.7, 0.8]).unwrap())
            .unwrap()[0];
        let both_neg = mlp
            .predict(&Matrix::from_vec(1, 2, vec![-0.7, -0.8]).unwrap())
            .unwrap()[0];
        assert!(both_pos > both_neg + 0.3, "pos {both_pos} neg {both_neg}");
    }

    #[test]
    fn checkpoint_roundtrip_continues_bit_identically() {
        let mut rng = Rng::seed_from(4);
        let mut trained = Mlp::new(3, &[8, 8], 0.01, &mut rng);
        let x = Matrix::rand_uniform(32, 3, -1.0, 1.0, &mut rng);
        let y: Vec<f32> = (0..32).map(|i| x.get(i, 0) - x.get(i, 1)).collect();
        trained.fit(&x, &y, 4, 8, &mut rng).unwrap();

        let mut w = crowd_ckpt::StateWriter::new();
        trained.save_state(&mut w);
        let bytes = w.into_bytes();

        // The scaffold's RNG (and therefore its initial weights) are deliberately
        // different: the load must overwrite every parameter and moment.
        let mut scaffold_rng = Rng::seed_from(999);
        let mut restored = Mlp::new(3, &[8, 8], 0.5, &mut scaffold_rng);
        let mut r = crowd_ckpt::StateReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish("mlp state").unwrap();

        let probe = Matrix::rand_uniform(8, 3, -1.0, 1.0, &mut rng);
        let (a, b) = (
            trained.predict(&probe).unwrap(),
            restored.predict(&probe).unwrap(),
        );
        for (va, vb) in a.iter().zip(&b) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        // Training continues identically too (optimizer moments restored).
        let la = trained.fit_batch(&probe, &[0.0; 8]).unwrap();
        let lb = restored.fit_batch(&probe, &[0.0; 8]).unwrap();
        assert_eq!(la.to_bits(), lb.to_bits());
    }

    #[test]
    fn checkpoint_restore_rejects_a_mismatched_architecture() {
        let mut rng = Rng::seed_from(5);
        let narrow = Mlp::new(3, &[8], 0.01, &mut rng);
        let mut w = crowd_ckpt::StateWriter::new();
        narrow.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut wide = Mlp::new(3, &[16], 0.01, &mut rng);
        assert!(matches!(
            wide.load_state(&mut crowd_ckpt::StateReader::new(&bytes)),
            Err(crowd_ckpt::CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_fit_is_a_noop() {
        let mut rng = Rng::seed_from(3);
        let mut mlp = Mlp::new(4, &[8], 0.01, &mut rng);
        let loss = mlp.fit(&Matrix::zeros(0, 4), &[], 5, 16, &mut rng).unwrap();
        assert_eq!(loss, 0.0);
    }
}
