//! Update-time tracking (paper Table I and Fig. 10(d)).

use std::time::{Duration, Instant};

/// Records how long a policy spends updating its model, either per feedback (RL methods) or
/// per retraining call (supervised methods), and reports the average.
#[derive(Debug, Clone, Default)]
pub struct UpdateTimer {
    total: Duration,
    count: u64,
}

impl UpdateTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        UpdateTimer::default()
    }

    /// Times a closure and records its duration.
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(start.elapsed());
        result
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, elapsed: Duration) {
        self.total += elapsed;
        self.count += 1;
    }

    /// Number of recorded updates.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total time spent updating.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Average update time in seconds (0 when nothing was recorded).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total.as_secs_f64() / self.count as f64
        }
    }
}

/// Checkpoint format: accumulated total (seconds `u64` + nanos `u32`), then the count
/// (`u64`). Wall time is not part of any bit-identity contract, but restoring it keeps
/// resumed efficiency reports (Table I means) continuous with the pre-kill run.
impl crowd_ckpt::SaveState for UpdateTimer {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_duration(self.total);
        w.put_u64(self.count);
    }
}

impl crowd_ckpt::LoadState for UpdateTimer {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        self.total = r.take_duration()?;
        self.count = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrips_totals() {
        use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};
        let mut t = UpdateTimer::new();
        t.record(Duration::from_micros(1_234_567));
        t.record(Duration::from_nanos(89));
        let mut w = StateWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = UpdateTimer::new();
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.count(), 2);
        assert_eq!(restored.total(), t.total());
    }

    #[test]
    fn empty_timer_reports_zero() {
        let t = UpdateTimer::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean_seconds(), 0.0);
    }

    #[test]
    fn record_accumulates() {
        let mut t = UpdateTimer::new();
        t.record(Duration::from_millis(10));
        t.record(Duration::from_millis(30));
        assert_eq!(t.count(), 2);
        assert!((t.mean_seconds() - 0.02).abs() < 1e-6);
        assert_eq!(t.total(), Duration::from_millis(40));
    }

    #[test]
    fn time_closure_returns_value_and_records() {
        let mut t = UpdateTimer::new();
        let out = t.time(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert_eq!(t.count(), 1);
        assert!(t.mean_seconds() > 0.0);
    }
}
