//! Evaluation measures from the paper (Sec. VII-A2) plus update-time tracking (Table I).
//!
//! Worker-benefit measures:
//! * **CR** — completion rate when one task is assigned per arrival (Eq. 8);
//! * **kCR** — position-discounted completion rate of a top-k list (Eq. 10);
//! * **nDCG-CR** — position-discounted completion rate of the full ranked list (Eq. 9).
//!
//! Requester-benefit measures:
//! * **QG** — cumulative task quality gain (Eq. 11);
//! * **kQG** / **nDCG-QG** — position-discounted quality gains (Eq. 12/13).
//!
//! The accumulator keeps per-month breakdowns so the month-by-month curves of Fig. 7/8 can be
//! reproduced, and a [`UpdateTimer`] records per-feedback model update latency for Table I.

pub mod timing;

pub use timing::UpdateTimer;

use crowd_sim::FeedbackView;

/// Discount applied to a completion at 0-based `position` in a ranked list:
/// `1 / log2(1 + r)` with `r` the 1-based rank, as in the paper's nDCG definitions.
pub fn position_discount(position: usize) -> f32 {
    1.0 / ((position as f32 + 2.0).log2())
}

/// One arrival's contribution to the metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sample {
    month: usize,
    completed: bool,
    /// 0-based rank of the completed task within the shown list (0 when assigned directly).
    position: usize,
    quality_gain: f32,
    /// Whether the decision was a single assignment (CR/QG) or a list (kCR/nDCG-CR/...).
    single: bool,
}

/// Accumulates the paper's six measures, globally and per month.
#[derive(Debug, Clone, Default)]
pub struct MetricsAccumulator {
    samples: Vec<Sample>,
    /// Length `k` used by the top-k measures (the paper's kCR/kQG).
    top_k: usize,
}

impl MetricsAccumulator {
    /// Creates an accumulator using list length `top_k` for the kCR/kQG measures.
    pub fn new(top_k: usize) -> Self {
        MetricsAccumulator {
            samples: Vec::new(),
            top_k: top_k.max(1),
        }
    }

    /// Number of recorded arrivals (the "number of total timestamps" denominator).
    pub fn timestamps(&self) -> usize {
        self.samples.len()
    }

    /// The `k` used by the top-k measures.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Records one arrival's feedback. `month` is the evaluation month index (0-based,
    /// relative to the start of the evaluation window). Takes the borrowed view so the hot
    /// loop records metrics without materialising owned feedback; owned records can be
    /// passed via [`crowd_sim::PolicyFeedback::view`].
    pub fn record(&mut self, month: usize, feedback: &FeedbackView<'_>) {
        let single = feedback.shown.len() <= 1;
        let (completed, position) = match feedback.completed {
            Some((_, pos)) => (true, pos),
            None => (false, 0),
        };
        self.samples.push(Sample {
            month,
            completed,
            position,
            quality_gain: feedback.quality_gain,
            single,
        });
    }

    fn filtered(&self, month: Option<usize>) -> impl Iterator<Item = &Sample> {
        self.samples
            .iter()
            .filter(move |s| month.is_none_or(|m| s.month == m))
    }

    /// Completion rate (Eq. 8): completions divided by arrivals. For single assignments a
    /// completion counts fully; for lists it counts only when the completed task was ranked
    /// first (the strictest reading, so CR is comparable across modes).
    pub fn completion_rate(&self, month: Option<usize>) -> f32 {
        let mut n = 0usize;
        let mut hits = 0.0f32;
        for s in self.filtered(month) {
            n += 1;
            if s.completed && (s.single || s.position == 0) {
                hits += 1.0;
            }
        }
        if n == 0 {
            0.0
        } else {
            hits / n as f32
        }
    }

    /// Top-k completion rate (Eq. 10): discounted completions within the first `k` positions.
    pub fn k_completion_rate(&self, month: Option<usize>) -> f32 {
        let mut n = 0usize;
        let mut gain = 0.0f32;
        for s in self.filtered(month) {
            n += 1;
            if s.completed && s.position < self.top_k {
                gain += position_discount(s.position);
            }
        }
        if n == 0 {
            0.0
        } else {
            gain / n as f32
        }
    }

    /// nDCG completion rate (Eq. 9): discounted completions anywhere in the list.
    pub fn ndcg_completion_rate(&self, month: Option<usize>) -> f32 {
        let mut n = 0usize;
        let mut gain = 0.0f32;
        for s in self.filtered(month) {
            n += 1;
            if s.completed {
                gain += position_discount(s.position);
            }
        }
        if n == 0 {
            0.0
        } else {
            gain / n as f32
        }
    }

    /// Cumulative quality gain (Eq. 11). Counts the gain whenever a task was completed (for
    /// single assignments) or completed at rank 0 (for lists), mirroring `completion_rate`.
    pub fn quality_gain(&self, month: Option<usize>) -> f32 {
        self.filtered(month)
            .filter(|s| s.completed && (s.single || s.position == 0))
            .map(|s| s.quality_gain)
            .sum()
    }

    /// Top-k quality gain (Eq. 13): position-discounted gains within the first `k` positions.
    pub fn k_quality_gain(&self, month: Option<usize>) -> f32 {
        self.filtered(month)
            .filter(|s| s.completed && s.position < self.top_k)
            .map(|s| s.quality_gain * position_discount(s.position))
            .sum()
    }

    /// nDCG quality gain (Eq. 12): position-discounted gains anywhere in the list.
    pub fn ndcg_quality_gain(&self, month: Option<usize>) -> f32 {
        self.filtered(month)
            .filter(|s| s.completed)
            .map(|s| s.quality_gain * position_discount(s.position))
            .sum()
    }

    /// Months covered (0-based max month index + 1); 0 when nothing is recorded.
    pub fn months(&self) -> usize {
        self.samples.iter().map(|s| s.month + 1).max().unwrap_or(0)
    }

    /// Cumulative worker-benefit measures up to and including `month` — the running curves of
    /// Fig. 7 are cumulative over the evaluation window.
    pub fn cumulative_worker_row(&self, month: usize) -> (f32, f32, f32) {
        let mut acc = MetricsAccumulator::new(self.top_k);
        acc.samples = self
            .samples
            .iter()
            .copied()
            .filter(|s| s.month <= month)
            .collect();
        (
            acc.completion_rate(None),
            acc.k_completion_rate(None),
            acc.ndcg_completion_rate(None),
        )
    }

    /// Per-month requester-benefit measures (Fig. 8 reports the quality gain of each month
    /// separately).
    pub fn monthly_requester_row(&self, month: usize) -> (f32, f32, f32) {
        (
            self.quality_gain(Some(month)),
            self.k_quality_gain(Some(month)),
            self.ndcg_quality_gain(Some(month)),
        )
    }

    /// Final summary over the whole evaluation window: (CR, kCR, nDCG-CR, QG, kQG, nDCG-QG).
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            cr: self.completion_rate(None),
            k_cr: self.k_completion_rate(None),
            ndcg_cr: self.ndcg_completion_rate(None),
            qg: self.quality_gain(None),
            k_qg: self.k_quality_gain(None),
            ndcg_qg: self.ndcg_quality_gain(None),
            timestamps: self.timestamps(),
        }
    }
}

/// Checkpoint format: `top_k` (`u64`), then the samples — per sample the month (`u64`),
/// completed flag, 0-based position (`u64`), quality gain (f32 raw bits) and
/// single-assignment flag. Every metric is recomputed from the samples, so restoring
/// them restores every aggregate bit for bit.
impl crowd_ckpt::SaveState for MetricsAccumulator {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_usize(self.top_k);
        w.put_usize(self.samples.len());
        for s in &self.samples {
            w.put_usize(s.month);
            w.put_bool(s.completed);
            w.put_usize(s.position);
            w.put_f32(s.quality_gain);
            w.put_bool(s.single);
        }
    }
}

impl crowd_ckpt::LoadState for MetricsAccumulator {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        self.top_k = r.take_usize()?;
        let n = r.take_len("metric samples", 1)?;
        self.samples = Vec::with_capacity(n);
        for _ in 0..n {
            self.samples.push(Sample {
                month: r.take_usize()?,
                completed: r.take_bool()?,
                position: r.take_usize()?,
                quality_gain: r.take_f32()?,
                single: r.take_bool()?,
            });
        }
        Ok(())
    }
}

/// Final values of all six measures (the tables under Fig. 7 and Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSummary {
    /// Completion rate.
    pub cr: f32,
    /// Top-k completion rate.
    pub k_cr: f32,
    /// nDCG completion rate.
    pub ndcg_cr: f32,
    /// Cumulative quality gain.
    pub qg: f32,
    /// Top-k quality gain.
    pub k_qg: f32,
    /// nDCG quality gain.
    pub ndcg_qg: f32,
    /// Number of evaluated arrivals.
    pub timestamps: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::{PolicyFeedback, TaskId, WorkerId};

    fn feedback(shown: usize, completed_at: Option<usize>, gain: f32) -> PolicyFeedback {
        let shown_ids: Vec<TaskId> = (0..shown as u32).map(TaskId).collect();
        PolicyFeedback {
            time: 0,
            worker_id: WorkerId(0),
            worker_quality: 0.5,
            shown: shown_ids.clone(),
            completed: completed_at.map(|p| (shown_ids[p], p)),
            quality_gain: if completed_at.is_some() { gain } else { 0.0 },
            worker_feature_before: vec![],
            worker_feature_after: vec![],
        }
    }

    #[test]
    fn checkpoint_restores_every_aggregate_bit_for_bit() {
        use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};
        let mut m = MetricsAccumulator::new(3);
        for i in 0..20 {
            m.record(
                i % 4,
                &feedback(
                    7,
                    if i % 3 == 0 { Some(i % 5) } else { None },
                    0.17 * i as f32,
                )
                .view(),
            );
        }
        let mut w = StateWriter::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = MetricsAccumulator::new(99); // top_k overwritten by the load
        restored.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(restored.top_k(), 3);
        let a = m.summary();
        let b = restored.summary();
        assert_eq!(a.timestamps, b.timestamps);
        for (x, y) in [
            (a.cr, b.cr),
            (a.k_cr, b.k_cr),
            (a.ndcg_cr, b.ndcg_cr),
            (a.qg, b.qg),
            (a.k_qg, b.k_qg),
            (a.ndcg_qg, b.ndcg_qg),
        ] {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn discount_follows_log_rank() {
        assert!((position_discount(0) - 1.0).abs() < 1e-6);
        assert!((position_discount(1) - 1.0 / 3.0f32.log2()).abs() < 1e-6);
        assert!(position_discount(0) > position_discount(1));
        assert!(position_discount(1) > position_discount(9));
    }

    #[test]
    fn single_assignment_cr_and_qg() {
        let mut m = MetricsAccumulator::new(5);
        m.record(0, &feedback(1, Some(0), 0.4).view());
        m.record(0, &feedback(1, None, 0.0).view());
        m.record(0, &feedback(1, Some(0), 0.6).view());
        m.record(0, &feedback(1, None, 0.0).view());
        assert!((m.completion_rate(None) - 0.5).abs() < 1e-6);
        assert!((m.quality_gain(None) - 1.0).abs() < 1e-6);
        assert_eq!(m.timestamps(), 4);
    }

    #[test]
    fn list_measures_discount_by_position() {
        let mut m = MetricsAccumulator::new(2);
        m.record(0, &feedback(10, Some(0), 1.0).view()); // full credit
        m.record(0, &feedback(10, Some(3), 1.0).view()); // outside top-2, still counts for nDCG
        m.record(0, &feedback(10, None, 0.0).view());
        // CR counts only rank-0 completions for lists.
        assert!((m.completion_rate(None) - 1.0 / 3.0).abs() < 1e-6);
        // kCR with k=2: only the first completion counts, discounted by 1.0.
        assert!((m.k_completion_rate(None) - 1.0 / 3.0).abs() < 1e-6);
        // nDCG-CR counts both, the second discounted by 1/log2(5).
        let expected = (1.0 + 1.0 / 5.0f32.log2()) / 3.0;
        assert!((m.ndcg_completion_rate(None) - expected).abs() < 1e-6);
        // Quality versions mirror the same weighting on the gains.
        assert!((m.k_quality_gain(None) - 1.0).abs() < 1e-6);
        assert!((m.ndcg_quality_gain(None) - (1.0 + 1.0 / 5.0f32.log2())).abs() < 1e-6);
    }

    #[test]
    fn per_month_and_cumulative_breakdowns() {
        let mut m = MetricsAccumulator::new(3);
        m.record(0, &feedback(1, Some(0), 1.0).view());
        m.record(0, &feedback(1, None, 0.0).view());
        m.record(1, &feedback(1, Some(0), 2.0).view());
        assert_eq!(m.months(), 2);
        assert!((m.completion_rate(Some(0)) - 0.5).abs() < 1e-6);
        assert!((m.completion_rate(Some(1)) - 1.0).abs() < 1e-6);
        assert!((m.quality_gain(Some(1)) - 2.0).abs() < 1e-6);
        let (cr_m0, _, _) = m.cumulative_worker_row(0);
        let (cr_m1, _, _) = m.cumulative_worker_row(1);
        assert!((cr_m0 - 0.5).abs() < 1e-6);
        assert!((cr_m1 - 2.0 / 3.0).abs() < 1e-6);
        let (qg_m1, _, _) = m.monthly_requester_row(1);
        assert!((qg_m1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = MetricsAccumulator::new(5);
        let s = m.summary();
        assert_eq!(s.cr, 0.0);
        assert_eq!(s.qg, 0.0);
        assert_eq!(s.timestamps, 0);
        assert_eq!(m.months(), 0);
    }

    #[test]
    fn summary_matches_individual_measures() {
        let mut m = MetricsAccumulator::new(4);
        for i in 0..10 {
            m.record(
                i % 3,
                &feedback(6, if i % 2 == 0 { Some(i % 4) } else { None }, 0.3).view(),
            );
        }
        let s = m.summary();
        assert!((s.cr - m.completion_rate(None)).abs() < 1e-6);
        assert!((s.k_cr - m.k_completion_rate(None)).abs() < 1e-6);
        assert!((s.ndcg_qg - m.ndcg_quality_gain(None)).abs() < 1e-6);
        assert_eq!(s.timestamps, 10);
    }
}
