//! The storage abstraction every disk touch in this crate goes through — and the
//! deterministic fault-injection backend that makes "the disk failed at exactly op N"
//! a replayable test input.
//!
//! [`snapshot`](crate::snapshot) and [`wal`](crate::wal) never call `std::fs` directly;
//! they take an [`Fs`] handle and issue numbered operations through it. The default
//! backend ([`Fs::real`]) forwards to the real filesystem. The injectable backend
//! ([`Fs::faulty`]) wraps it with a global **operation counter**: every create, write,
//! fsync, rename, read, … increments the counter, and a [`FaultPlan`] decides — purely
//! from the counter value and the operation's [`OpClass`] — whether that operation
//! fails, writes short, returns corrupted bytes, or stalls. Two runs of the same
//! workload over the same plan inject the same fault at the same site, which is what
//! lets `tests/fault_injection.rs` sweep "fail at I/O op N" for *every* N the way the
//! recovery suite already sweeps torn-tail byte offsets.
//!
//! Injected failures surface as ordinary [`std::io::Error`]s (and therefore as
//! [`CkptError::Io`](crate::CkptError::Io) upstream) whose message names the op index
//! and class — a failed sweep case always says exactly which site it poisoned.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What kind of storage operation is being issued — the granularity at which faults
/// are targeted and counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Creating (and truncating) a file for writing.
    CreateFile,
    /// Opening an existing file for read/write.
    OpenFile,
    /// Reading a whole file into memory.
    Read,
    /// Listing a directory.
    ReadDir,
    /// Appending/writing bytes to an open file.
    Write,
    /// `fdatasync` on an open file.
    SyncData,
    /// `fsync` on an open file.
    SyncAll,
    /// Truncating/extending an open file.
    SetLen,
    /// Renaming a path (the atomic-publish step).
    Rename,
    /// Deleting a file.
    RemoveFile,
    /// Creating a directory chain.
    CreateDir,
    /// Syncing a directory so renames in it survive power loss.
    SyncDir,
}

/// What an armed fault does to the operation it fires on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Pick the most realistic failure for the op's class: a [`OpClass::Write`] becomes
    /// a short write (half the bytes land, then an error), an [`OpClass::Read`] returns
    /// silently corrupted bytes, everything else fails outright.
    Auto,
    /// The operation fails with an injected [`std::io::Error`]; nothing is persisted.
    Fail,
    /// A write persists only the first half of its bytes, then errors — the torn-write
    /// shape a power cut produces.
    ShortWrite,
    /// A read succeeds but one byte of the returned data is flipped — silent media rot
    /// that only checksums can catch. Non-read classes fall back to [`FaultKind::Fail`].
    CorruptRead,
    /// The operation succeeds after sleeping this long (tail-latency injection, e.g. a
    /// slow fsync). Not an error: the workload proceeds.
    Latency(Duration),
}

/// One targeting rule of a [`FaultPlan`]: fire `kind` on operations whose global index
/// lies in `[from_op, to_op)` and whose class matches (when constrained).
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// First global op index the rule arms at.
    pub from_op: u64,
    /// Exclusive end of the armed window (`u64::MAX` = forever).
    pub to_op: u64,
    /// Restrict to one [`OpClass`]; `None` matches any.
    pub class: Option<OpClass>,
    /// What firing does.
    pub kind: FaultKind,
    /// Fire at most once, then disarm (lets a retry succeed — the self-healing tests
    /// rely on it). `false` fires on every matching op.
    pub once: bool,
}

/// A deterministic schedule of storage faults, keyed by the global operation counter.
///
/// Plans are pure data: the same plan over the same workload injects the same faults.
/// Compose with the builder-style `with_*` methods.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// Seeded chaos: `(seed, permille)` — each op fires an [`FaultKind::Auto`] fault
    /// with probability `permille/1000`, decided by a hash of `(seed, op index)`.
    chaos: Option<(u64, u32)>,
}

impl FaultPlan {
    /// No faults: the backend only counts operations (the sweep's baseline pass).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fail exactly global op `n`, once, with the class-appropriate fault
    /// ([`FaultKind::Auto`]). The workhorse of the fail-at-every-op sweep.
    pub fn fail_op(n: u64) -> FaultPlan {
        FaultPlan::none().with_rule(FaultRule {
            from_op: n,
            to_op: n + 1,
            class: None, // any class: Auto resolves the kind at fire time
            kind: FaultKind::Auto,
            once: true,
        })
    }

    /// Fail every matching op in `[from_op, to_op)` — a sustained outage window (the
    /// degraded-mode tests use this to keep a log down across several rounds).
    pub fn fail_ops(from_op: u64, to_op: u64, class: Option<OpClass>) -> FaultPlan {
        FaultPlan::none().with_rule(FaultRule {
            from_op,
            to_op,
            class,
            kind: FaultKind::Fail,
            once: false,
        })
    }

    /// Add `latency` to every operation of `class` (e.g. a persistently slow fsync).
    pub fn slow(class: OpClass, latency: Duration) -> FaultPlan {
        FaultPlan::none().with_rule(FaultRule {
            from_op: 0,
            to_op: u64::MAX,
            class: Some(class),
            kind: FaultKind::Latency(latency),
            once: false,
        })
    }

    /// Seeded chaos: every op fails (class-appropriately) with probability
    /// `permille/1000`, decided deterministically from `(seed, op index)`.
    pub fn seeded(seed: u64, permille: u32) -> FaultPlan {
        FaultPlan {
            rules: Vec::new(),
            chaos: Some((seed, permille.min(1000))),
        }
    }

    /// Appends a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }
}

/// Mutable injection state shared by an injected [`Fs`], its open files, and the
/// [`FaultProbe`] a test holds.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rule_fired: Vec<bool>,
    next_op: u64,
    fired: Vec<(u64, OpClass)>,
}

impl FaultState {
    /// Counts the op and decides what, if anything, to inject. `Latency` is resolved
    /// here (the caller just proceeds); error-shaped kinds are returned resolved
    /// against the class (`Auto` → short write / corrupt read / fail).
    fn on_op(&mut self, class: OpClass) -> Option<FaultKind> {
        let op = self.next_op;
        self.next_op += 1;
        let kind = self.match_op(op, class)?;
        let resolved = resolve(kind, class);
        if let FaultKind::Latency(wait) = resolved {
            self.fired.push((op, class));
            std::thread::sleep(wait);
            return None;
        }
        self.fired.push((op, class));
        Some(resolved)
    }

    fn match_op(&mut self, op: u64, class: OpClass) -> Option<FaultKind> {
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if self.rule_fired[i] && rule.once {
                continue;
            }
            if op < rule.from_op || op >= rule.to_op {
                continue;
            }
            if rule.class.is_some_and(|c| c != class) {
                continue;
            }
            self.rule_fired[i] = true;
            return Some(rule.kind);
        }
        if let Some((seed, permille)) = self.plan.chaos {
            if mix(seed, op) % 1000 < permille as u64 {
                return Some(FaultKind::Auto);
            }
        }
        None
    }
}

/// SplitMix64-style avalanche of `(seed, op)` — the chaos plan's coin flip.
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn resolve(kind: FaultKind, class: OpClass) -> FaultKind {
    match kind {
        FaultKind::Auto => match class {
            OpClass::Write => FaultKind::ShortWrite,
            OpClass::Read => FaultKind::CorruptRead,
            _ => FaultKind::Fail,
        },
        FaultKind::ShortWrite if class != OpClass::Write => FaultKind::Fail,
        FaultKind::CorruptRead if class != OpClass::Read => FaultKind::Fail,
        other => other,
    }
}

fn injected_error(op: u64, class: OpClass) -> io::Error {
    io::Error::other(format!("injected {class:?} fault at storage op {op}"))
}

/// An open file behind the [`Storage`] abstraction. Only the operations the snapshot
/// and WAL writers actually issue are modelled.
pub trait StorageFile: Send {
    /// Writes all of `buf` at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`.
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync`.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Seeks to the end of the file, returning the new position.
    fn seek_end(&mut self) -> io::Result<u64>;
}

/// A filesystem backend: the real one, or an injected one counting and poisoning ops.
pub trait Storage: Send + Sync {
    /// Short backend name for `Debug` output.
    fn label(&self) -> &'static str;
    /// Creates (truncating) a file open for read/write.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Opens an existing file for read/write without truncating.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Renames `from` to `to` (atomic within a directory on POSIX).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists a directory's entries as `(file name, full path)`, unsorted.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>>;
    /// Fsyncs a directory so renames inside it survive power loss. Backends return
    /// `Ok` on platforms where directories cannot be opened for syncing (the operation
    /// is then meaningless), but a *failed* sync on a platform that supports it is an
    /// error the caller decides how to treat (see [`DirSyncPolicy`]).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// True when `path` exists (metadata probe; never counted or poisoned).
    fn exists(&self, path: &Path) -> bool;
}

/// How a writer treats a directory-fsync failure after publishing a rename.
///
/// Historically the WAL swallowed these (`let _ = d.sync_all()`), which could
/// acknowledge a sealed segment whose *name* was not yet durable. The default is now
/// strict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirSyncPolicy {
    /// A failed directory sync is an error: the rename may not survive power loss, so
    /// nothing that depends on it may be acknowledged. The default.
    #[default]
    Strict,
    /// Ignore directory-sync failures (callers that can tolerate losing the rename on
    /// power loss, e.g. best-effort tooling).
    BestEffort,
}

// ---------------------------------------------------------------------------
// Real backend

/// The passthrough backend: `std::fs`, no counting, no faults.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

struct RealFile(File);

impl StorageFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_end(&mut self) -> io::Result<u64> {
        self.0.seek(SeekFrom::End(0))
    }
}

impl Storage for RealFs {
    fn label(&self) -> &'static str {
        "real"
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                out.push((name.to_string(), entry.path()));
            }
        }
        Ok(out)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Platforms where a directory cannot be opened simply skip the sync; a sync
        // that *fails* after opening is a real durability signal and propagates.
        match File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting backend

struct FaultFs {
    inner: RealFs,
    state: Arc<Mutex<FaultState>>,
}

struct FaultFile {
    inner: Box<dyn StorageFile>,
    state: Arc<Mutex<FaultState>>,
}

/// Counts the op under the lock and resolves the injection decision. `Fail` surfaces
/// here as the injected error; `ShortWrite`/`CorruptRead` come back with their op index
/// for the caller to enact.
fn gate(state: &Mutex<FaultState>, class: OpClass) -> io::Result<Option<(u64, FaultKind)>> {
    let mut s = state.lock().expect("fault state poisoned");
    let op = s.next_op; // on_op increments; capture first for the error message
    match s.on_op(class) {
        Some(FaultKind::Fail) => Err(injected_error(op, class)),
        Some(special) => Ok(Some((op, special))), // ShortWrite / CorruptRead
        None => Ok(None),
    }
}

impl StorageFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match gate(&self.state, OpClass::Write)? {
            Some((op, FaultKind::ShortWrite)) => {
                // Persist half the bytes, then fail — a torn append on real media.
                self.inner.write_all(&buf[..buf.len() / 2])?;
                Err(injected_error(op, OpClass::Write))
            }
            _ => self.inner.write_all(buf),
        }
    }
    fn sync_data(&mut self) -> io::Result<()> {
        gate(&self.state, OpClass::SyncData)?;
        self.inner.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        gate(&self.state, OpClass::SyncAll)?;
        self.inner.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        gate(&self.state, OpClass::SetLen)?;
        self.inner.set_len(len)
    }
    fn seek_end(&mut self) -> io::Result<u64> {
        // Position bookkeeping, not media I/O: never counted or poisoned.
        self.inner.seek_end()
    }
}

impl Storage for FaultFs {
    fn label(&self) -> &'static str {
        "fault"
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        gate(&self.state, OpClass::CreateFile)?;
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            state: self.state.clone(),
        }))
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        gate(&self.state, OpClass::OpenFile)?;
        let inner = self.inner.open_rw(path)?;
        Ok(Box::new(FaultFile {
            inner,
            state: self.state.clone(),
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let corrupt = matches!(
            gate(&self.state, OpClass::Read)?,
            Some((_, FaultKind::CorruptRead))
        );
        let mut bytes = self.inner.read(path)?;
        if corrupt && !bytes.is_empty() {
            // Flip one mid-file byte: silent rot the CRCs must catch.
            let at = bytes.len() / 2;
            bytes[at] ^= 0x40;
        }
        Ok(bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        gate(&self.state, OpClass::Rename)?;
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        gate(&self.state, OpClass::RemoveFile)?;
        self.inner.remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        gate(&self.state, OpClass::CreateDir)?;
        self.inner.create_dir_all(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
        gate(&self.state, OpClass::ReadDir)?;
        self.inner.read_dir(dir)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        gate(&self.state, OpClass::SyncDir)?;
        self.inner.sync_dir(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// A test's window into a running injected backend: how many ops the workload issued
/// and which ones were poisoned.
#[derive(Clone)]
pub struct FaultProbe {
    state: Arc<Mutex<FaultState>>,
}

impl FaultProbe {
    /// Global operations counted so far (the sweep bound: a clean counting pass
    /// establishes `N`, then every op index in `0..N` is poisoned in turn).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state poisoned").next_op
    }

    /// Every fault fired so far, as `(op index, class)` in firing order.
    pub fn fired(&self) -> Vec<(u64, OpClass)> {
        self.state
            .lock()
            .expect("fault state poisoned")
            .fired
            .clone()
    }
}

impl fmt::Debug for FaultProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock().expect("fault state poisoned");
        f.debug_struct("FaultProbe")
            .field("ops", &s.next_op)
            .field("fired", &s.fired.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The handle

/// A cheap, cloneable handle to a [`Storage`] backend. Everything in this crate that
/// touches disk takes one; [`Fs::default`] is the real filesystem.
#[derive(Clone)]
pub struct Fs {
    backend: Arc<dyn Storage>,
}

impl Fs {
    /// The real filesystem.
    pub fn real() -> Fs {
        Fs {
            backend: Arc::new(RealFs),
        }
    }

    /// A fault-injecting filesystem executing `plan`, plus the probe that reports the
    /// op count and fired faults. Clones of the returned `Fs` (and files opened
    /// through it) share one op counter.
    pub fn faulty(plan: FaultPlan) -> (Fs, FaultProbe) {
        let rule_fired = vec![false; plan.rules.len()];
        let state = Arc::new(Mutex::new(FaultState {
            plan,
            rule_fired,
            next_op: 0,
            fired: Vec::new(),
        }));
        let fs = Fs {
            backend: Arc::new(FaultFs {
                inner: RealFs,
                state: state.clone(),
            }),
        };
        (fs, FaultProbe { state })
    }

    /// See [`Storage::create`].
    pub fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.backend.create(path)
    }
    /// See [`Storage::open_rw`].
    pub fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.backend.open_rw(path)
    }
    /// See [`Storage::read`].
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.backend.read(path)
    }
    /// See [`Storage::rename`].
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.backend.rename(from, to)
    }
    /// See [`Storage::remove_file`].
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.backend.remove_file(path)
    }
    /// See [`Storage::create_dir_all`].
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.backend.create_dir_all(path)
    }
    /// See [`Storage::read_dir`].
    pub fn read_dir(&self, dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
        self.backend.read_dir(dir)
    }
    /// See [`Storage::sync_dir`].
    pub fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.backend.sync_dir(dir)
    }
    /// See [`Storage::exists`].
    pub fn exists(&self, path: &Path) -> bool {
        self.backend.exists(path)
    }
}

impl Default for Fs {
    fn default() -> Fs {
        Fs::real()
    }
}

impl fmt::Debug for Fs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fs({})", self.backend.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "crowd-io-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A small fixed workload: create, write, sync, rename, read back.
    fn workload(fs: &Fs, dir: &Path) -> io::Result<Vec<u8>> {
        let tmp = dir.join("file.tmp");
        let path = dir.join("file.bin");
        let mut f = fs.create(&tmp)?;
        f.write_all(b"0123456789abcdef")?;
        f.sync_all()?;
        drop(f);
        fs.rename(&tmp, &path)?;
        fs.sync_dir(dir)?;
        fs.read(&path)
    }

    #[test]
    fn counting_mode_is_transparent_and_counts_every_op() {
        let dir = tmp_dir("count");
        let real = workload(&Fs::real(), &dir).unwrap();
        let (fs, probe) = Fs::faulty(FaultPlan::none());
        let injected = workload(&fs, &dir).unwrap();
        assert_eq!(real, injected, "counting mode must not alter behaviour");
        // create + write + sync_all + rename + sync_dir + read = 6 counted ops.
        assert_eq!(probe.ops(), 6);
        assert!(probe.fired().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_op_poisons_exactly_one_site_and_is_deterministic() {
        let dir = tmp_dir("sweep");
        let (_, probe) = {
            let (fs, probe) = Fs::faulty(FaultPlan::none());
            workload(&fs, &dir).unwrap();
            (fs, probe)
        };
        let total = probe.ops();
        for n in 0..total {
            let (fs, probe) = Fs::faulty(FaultPlan::fail_op(n));
            let first = workload(&fs, &dir);
            assert_eq!(
                probe.fired().len(),
                1,
                "fault at op {n} must fire exactly once"
            );
            assert_eq!(probe.fired()[0].0, n);
            // Read-time corruption (the final op) succeeds with damaged bytes; every
            // other site surfaces as an error.
            let read_site = total - 1;
            if n == read_site {
                assert_ne!(first.unwrap(), b"0123456789abcdef".to_vec());
            } else {
                let err = first.expect_err("poisoned op must error");
                assert!(err.to_string().contains(&format!("op {n}")), "{err}");
            }
            // The once-rule is spent: the same workload now succeeds cleanly.
            let healed = workload(&fs, &dir).unwrap();
            assert_eq!(healed, b"0123456789abcdef".to_vec());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_persists_a_prefix_then_errors() {
        let dir = tmp_dir("short");
        let (fs, _) = Fs::faulty(FaultPlan::fail_op(1)); // op 0 = create, op 1 = write
        let tmp = dir.join("torn.bin");
        let mut f = fs.create(&tmp).unwrap();
        let err = f.write_all(b"0123456789abcdef").unwrap_err();
        assert!(err.to_string().contains("Write"), "{err}");
        drop(f);
        assert_eq!(std::fs::read(&tmp).unwrap(), b"01234567".to_vec());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latency_rules_slow_but_do_not_fail() {
        let dir = tmp_dir("slow");
        let (fs, probe) = Fs::faulty(FaultPlan::slow(OpClass::SyncAll, Duration::from_millis(5)));
        let start = std::time::Instant::now();
        let bytes = workload(&fs, &dir).unwrap();
        assert_eq!(bytes, b"0123456789abcdef".to_vec());
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(probe.fired().len(), 1, "one sync_all in the workload");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_chaos_is_deterministic() {
        let dir = tmp_dir("chaos");
        let run = |seed: u64| {
            let (fs, probe) = Fs::faulty(FaultPlan::seeded(seed, 400));
            let result = workload(&fs, &dir).map_err(|e| e.to_string());
            let _ = std::fs::remove_file(dir.join("file.tmp"));
            let _ = std::fs::remove_file(dir.join("file.bin"));
            (result, probe.fired())
        };
        assert_eq!(run(7), run(7), "same seed, same faults");
        let mut seeds_differ = false;
        for seed in 0..16 {
            if run(seed) != run(7) {
                seeds_differ = true;
            }
        }
        assert!(seeds_differ, "different seeds must eventually differ");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn outage_window_fails_until_it_ends() {
        let (fs, probe) = Fs::faulty(FaultPlan::fail_ops(0, 3, None));
        let dir = tmp_dir("window");
        let p = dir.join("x");
        assert!(fs.create(&p).is_err()); // op 0
        assert!(fs.create(&p).is_err()); // op 1
        assert!(fs.create(&p).is_err()); // op 2
        assert!(fs.create(&p).is_ok()); // op 3: window over
        assert_eq!(probe.fired().len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
