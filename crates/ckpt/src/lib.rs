//! Bit-exact checkpoint/resume for the crowd-RL workspace: a hand-rolled, versioned,
//! little-endian binary snapshot format with per-section CRC32 integrity, and the
//! [`SaveState`] / [`LoadState`] / [`DecodeState`] traits the rest of the workspace
//! implements on top of it.
//!
//! The offline build container has no `serde` (no crates.io access), so the format is
//! written by hand and specified byte by byte in `docs/CHECKPOINT_FORMAT.md` at the
//! repository root — precisely enough that a foreign-language loader could be written
//! from the document alone. The contract that makes the format worth having is **bit-exact
//! resumption**: floats are stored as raw IEEE-754 bits, RNGs as their word states, and
//! every stateful component of the stack (network parameters, Adam moments, prioritized
//! replay with its sum tree, exploration schedules, arrival statistics, the platform
//! replay cursor) round-trips exactly, so a training run that is checkpointed, killed
//! and resumed in a fresh process is **bit-identical** to one that never stopped
//! (`tests/checkpoint_equivalence.rs`, at `CROWD_THREADS=1` and `4`).
//!
//! Complementing the point-in-time snapshots, the [`wal`] module frames append-only
//! record-batch logs — CRC-checked segments with atomic rotation and torn-tail
//! detection — which the `crowd-serve` decision log builds on
//! (`docs/DECISION_LOG_FORMAT.md` at the repository root).
//!
//! Both disk paths run through the [`io`] module's [`Fs`] storage abstraction: the
//! default backend is the real filesystem, and [`Fs::faulty`] swaps in a deterministic
//! fault injector (seeded, operation-counter-keyed [`FaultPlan`]s of short writes,
//! fsync failures, rename failures, read-time corruption and latency) so the test
//! suites can prove that a fault at *any* numbered I/O site yields either bit-identical
//! recovery or a typed error — never silent divergence.
//!
//! # Layering
//!
//! This crate is the *leaf* of the workspace graph — it depends on nothing, and every
//! other crate depends on it to implement the traits for its own types:
//!
//! * `crowd-tensor`: `Rng` word states, `Matrix` raw bits;
//! * `crowd-nn`: `ParamStore`, `Adam` / `Sgd` moment buffers;
//! * `crowd-rl-kit`: `SumTree` (full node array — see below), `ReplayBuffer`,
//!   `PrioritizedReplay`, `EpsilonGreedy` / `GaussianQNoise` schedule positions;
//! * `crowd-sim`: the `Platform` replay state (event cursor, quality/completion arrays,
//!   behaviour RNG) and the `Policy` checkpoint hooks;
//! * `crowd-rl-core`: `DqnLearner`, `DdqnAgent`, `ArrivalStats`, stored transitions;
//! * `crowd-metrics`: metric accumulators and timers;
//! * `crowd-experiments`: `Session::checkpoint` / `Session::resume_from` and the
//!   per-member `SessionBatch` snapshots.
//!
//! # In-memory roundtrip: `ParamStore` and `Adam`
//!
//! Parameters and optimizer moments restore to the **bit**, not to a tolerance:
//!
//! ```
//! use crowd_ckpt::{Snapshot, SnapshotFile};
//! use crowd_nn::{Adam, Optimizer, ParamStore};
//! use crowd_tensor::{Matrix, Rng};
//!
//! // A store with one trained-on parameter, so Adam owns real moment buffers.
//! let mut rng = Rng::seed_from(7);
//! let mut store = ParamStore::new();
//! let w = store.register("layer.w", Matrix::randn(4, 3, &mut rng));
//! let mut opt = Adam::new(0.001);
//! let grad = store.get(w).scale(0.5);
//! opt.step(&mut store, &[(w, grad)]).unwrap();
//!
//! // Save both into named sections of one snapshot (all in memory).
//! let mut snap = Snapshot::new();
//! snap.put("params", &store);
//! snap.put("adam", &opt);
//! let bytes = snap.to_bytes();
//!
//! // Load into freshly constructed twins — an empty store adopts the saved layout.
//! let file = SnapshotFile::from_bytes(bytes).unwrap();
//! let mut restored = ParamStore::new();
//! file.load_into("params", &mut restored).unwrap();
//! let mut restored_opt = Adam::new(0.001);
//! file.load_into("adam", &mut restored_opt).unwrap();
//!
//! assert_eq!(restored.len(), store.len());
//! for ((_, name, a), (_, _, b)) in store.iter().zip(restored.iter()) {
//!     for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
//!         assert_eq!(x.to_bits(), y.to_bits(), "{name} must restore bit-exactly");
//!     }
//! }
//! assert_eq!(restored_opt.steps(), 1);
//! ```
//!
//! And a damaged snapshot is a **typed error**, never a panic or a half-load:
//!
//! ```
//! use crowd_ckpt::{CkptError, Snapshot, SnapshotFile};
//! use crowd_tensor::Rng;
//!
//! let mut snap = Snapshot::new();
//! snap.put("rng", &Rng::seed_from(3));
//! let mut bytes = snap.to_bytes();
//! let last = bytes.len() - 1;
//! bytes[last] ^= 0xFF; // flip a payload byte
//! assert!(matches!(
//!     SnapshotFile::from_bytes(bytes),
//!     Err(CkptError::CrcMismatch { .. })
//! ));
//! ```
//!
//! # Quickstart: checkpointing a Table-1 run
//!
//! The `table1_efficiency` binary (crate `crowd-experiments`) wires the subsystem into
//! the paper's efficiency experiment:
//!
//! ```text
//! # snapshot every 500 evaluated arrivals to table1.ckpt (atomic rename on each write)
//! cargo run --release --bin table1_efficiency -- --checkpoint-every 500
//!
//! # kill it mid-replay, then continue exactly where it stopped:
//! cargo run --release --bin table1_efficiency -- --resume table1.ckpt
//! ```
//!
//! The resumed sweep reproduces the uninterrupted sweep's numbers bit for bit — the same
//! guarantee `tests/checkpoint_equivalence.rs` proves for the session layer.
//!
//! # Why `SumTree` saves its internal nodes
//!
//! A naïve reimplementation would persist only the leaf priorities and rebuild the tree
//! on load. That is *not* bit-exact: internal node sums accumulate `+=` deltas in the
//! historical order of `set` calls, so a rebuilt tree can differ in the last ulp of
//! `total()` — enough to flip a prefix-sum descent and derail every subsequent sampling
//! decision. The format therefore stores the full node array verbatim. The same
//! reasoning applies wherever an f32/f64 accumulation order is part of the live state.

pub mod crc32;
pub mod error;
pub mod io;
pub mod rw;
pub mod snapshot;
pub mod wal;

pub use crc32::crc32;
pub use error::{CkptError, Result};
pub use io::{DirSyncPolicy, FaultKind, FaultPlan, FaultProbe, FaultRule, Fs, OpClass};
pub use rw::{StateReader, StateWriter};
pub use snapshot::{Snapshot, SnapshotFile, FORMAT_VERSION, MAGIC};
pub use wal::{SegmentScan, SegmentWriter, WalDir, WAL_MAGIC, WAL_VERSION};

use std::time::Duration;

/// Serialises a component's dynamic state into a [`StateWriter`].
///
/// Implementations must write **only** state that cannot be reconstructed from
/// configuration (weights, RNG words, counters, buffers — not shapes, names or
/// hyper-parameters, except where those serve as load-time validation), and must write
/// floats via the raw-bits primitives so roundtrips are bit-exact.
pub trait SaveState {
    /// Appends this component's state to `w`.
    fn save_state(&self, w: &mut StateWriter);
}

/// Restores a component **in place** from a [`StateReader`].
///
/// The target is an already-constructed object (built from the same configuration that
/// built the saved one); `load_state` overwrites its dynamic state and validates
/// structural invariants (shapes, capacities, parameter names) against the stream,
/// returning [`CkptError::Corrupt`] on mismatch rather than half-loading.
pub trait LoadState {
    /// Overwrites this component's state from `r`.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<()>;
}

/// Decodes an owned value from a [`StateReader`] — for element types that are built
/// from the stream rather than restored into (stored transitions, history records).
pub trait DecodeState: Sized {
    /// Reads one value of `Self` from `r`.
    fn decode_state(r: &mut StateReader<'_>) -> Result<Self>;
}

/// Anything decodable is loadable in place by wholesale replacement.
impl<T: DecodeState> LoadState for T {
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<()> {
        *self = T::decode_state(r)?;
        Ok(())
    }
}

macro_rules! scalar_state {
    ($ty:ty, $put:ident, $take:ident) => {
        impl SaveState for $ty {
            fn save_state(&self, w: &mut StateWriter) {
                w.$put(*self);
            }
        }
        impl DecodeState for $ty {
            fn decode_state(r: &mut StateReader<'_>) -> Result<Self> {
                r.$take()
            }
        }
    };
}

scalar_state!(u8, put_u8, take_u8);
scalar_state!(u16, put_u16, take_u16);
scalar_state!(u32, put_u32, take_u32);
scalar_state!(u64, put_u64, take_u64);
scalar_state!(usize, put_usize, take_usize);
scalar_state!(f32, put_f32, take_f32);
scalar_state!(f64, put_f64, take_f64);
scalar_state!(bool, put_bool, take_bool);
scalar_state!(Duration, put_duration, take_duration);

impl SaveState for String {
    fn save_state(&self, w: &mut StateWriter) {
        w.put_str(self);
    }
}

impl DecodeState for String {
    fn decode_state(r: &mut StateReader<'_>) -> Result<Self> {
        r.take_str()
    }
}

impl SaveState for str {
    fn save_state(&self, w: &mut StateWriter) {
        w.put_str(self);
    }
}

impl<T: SaveState> SaveState for Vec<T> {
    fn save_state(&self, w: &mut StateWriter) {
        w.put_usize(self.len());
        for item in self {
            item.save_state(w);
        }
    }
}

impl<T: DecodeState> DecodeState for Vec<T> {
    fn decode_state(r: &mut StateReader<'_>) -> Result<Self> {
        // Every encodable element occupies at least one byte, so the length guard bounds
        // the allocation by the bytes actually present.
        let len = r.take_len("vec", 1)?;
        (0..len).map(|_| T::decode_state(r)).collect()
    }
}

impl<T: SaveState> SaveState for Option<T> {
    fn save_state(&self, w: &mut StateWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.save_state(w);
            }
        }
    }
}

impl<T: DecodeState> DecodeState for Option<T> {
    fn decode_state(r: &mut StateReader<'_>) -> Result<Self> {
        if r.take_bool()? {
            Ok(Some(T::decode_state(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: SaveState, B: SaveState> SaveState for (A, B) {
    fn save_state(&self, w: &mut StateWriter) {
        self.0.save_state(w);
        self.1.save_state(w);
    }
}

impl<A: DecodeState, B: DecodeState> DecodeState for (A, B) {
    fn decode_state(r: &mut StateReader<'_>) -> Result<Self> {
        Ok((A::decode_state(r)?, B::decode_state(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: SaveState + DecodeState + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = StateWriter::new();
        value.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = T::decode_state(&mut r).unwrap();
        assert_eq!(back, value);
        r.finish("roundtrip").unwrap();
    }

    #[test]
    fn std_type_roundtrips() {
        roundtrip(42u8);
        roundtrip(7u16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(123usize);
        roundtrip(-1.5f32);
        roundtrip(std::f64::consts::E);
        roundtrip(true);
        roundtrip(Duration::from_nanos(1_234_567_891));
        roundtrip("snapshot".to_string());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(9u64));
        roundtrip((3u32, "pair".to_string()));
        roundtrip(Vec::<(u64, f32)>::new());
    }

    #[test]
    fn loadstate_blanket_replaces_in_place() {
        let mut w = StateWriter::new();
        77u64.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut target = 0u64;
        let mut r = StateReader::new(&bytes);
        target.load_state(&mut r).unwrap();
        assert_eq!(target, 77);
    }

    #[test]
    fn nested_collections_roundtrip() {
        roundtrip(vec![vec![1.0f32, 2.0], vec![], vec![f32::MIN]]);
        roundtrip(vec![(1u64, vec![0.5f64]), (2, vec![])]);
        roundtrip(Some(vec!["a".to_string(), String::new()]));
    }
}
