//! The snapshot container: magic, format version, section table with per-section CRC32,
//! then the concatenated section payloads.
//!
//! [`Snapshot`] is the write side (named sections built from [`SaveState`] impls or raw
//! payload bytes); [`SnapshotFile`] is the fully validated read side. `from_bytes`
//! validates *everything* — magic, version, table bounds, per-section CRCs — before
//! returning, so by the time a caller loads state the bytes are known-good and a load
//! can only fail on logical mismatches (shape/config drift), never on silent damage.
//!
//! The byte-level layout is specified in `docs/CHECKPOINT_FORMAT.md` at the repository
//! root, down to every field the writer emits.

use crate::crc32::crc32;
use crate::error::{CkptError, Result};
use crate::io::Fs;
use crate::rw::{StateReader, StateWriter};
use crate::{DecodeState, LoadState, SaveState};
use std::ops::Range;
use std::path::Path;

/// The eight magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"CRWDCKPT";

/// The single format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed header (magic + version + section count).
const HEADER_LEN: usize = 8 + 4 + 4;

/// Fixed bytes of one section-table entry beyond the name: offset (8) + len (8) + crc (4).
const ENTRY_FIXED_LEN: usize = 8 + 8 + 4;

/// A snapshot under construction: an ordered list of named sections.
#[derive(Debug, Default)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no section has been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Serialises `state` into a new section named `name`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate section name or a name longer than 65535 bytes — both are
    /// programming errors in the caller, not runtime conditions.
    pub fn put(&mut self, name: &str, state: &impl SaveState) {
        let mut w = StateWriter::new();
        state.save_state(&mut w);
        self.put_raw(name, w.into_bytes());
    }

    /// Adds a section from pre-built payload bytes (same constraints as
    /// [`Snapshot::put`]).
    pub fn put_raw(&mut self, name: &str, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section {name:?}"
        );
        assert!(
            name.len() <= u16::MAX as usize,
            "section name longer than 65535 bytes"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// Encodes the snapshot: header, section table, then the payloads in section order,
    /// contiguous and gap-free.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_len: usize = self
            .sections
            .iter()
            .map(|(name, _)| 2 + name.len() + ENTRY_FIXED_LEN)
            .sum();
        let mut out = Vec::with_capacity(
            HEADER_LEN + table_len + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = HEADER_LEN + table_len;
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len();
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Writes the snapshot to `path` atomically: the bytes go to `<path>.tmp` first and
    /// are renamed into place, so a crash mid-write can never leave a truncated file at
    /// the checkpoint path (the stale-but-complete previous snapshot survives instead).
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<()> {
        self.write_to_in(&Fs::real(), path)
    }

    /// [`Snapshot::write_to`] through an explicit storage backend — the fault-injection
    /// suites swap in [`Fs::faulty`] here to poison any numbered I/O site of the write.
    /// After the rename the containing directory is synced so the publish survives
    /// power loss; a failed directory sync is an error (the stale previous snapshot is
    /// still intact, so the caller lost nothing by being told).
    pub fn write_to_in(&self, fs: &Fs, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        // Append ".tmp" to the whole name (`x.ckpt` → `x.ckpt.tmp`); `with_extension`
        // would *replace* the extension and collide with an unrelated `x.tmp`.
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        {
            let mut file = fs.create(&tmp)?;
            file.write_all(&self.to_bytes())?;
            file.sync_all()?;
        }
        fs.rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            fs.sync_dir(parent)?;
        }
        Ok(())
    }
}

/// A parsed, fully CRC-verified snapshot.
#[derive(Debug)]
pub struct SnapshotFile {
    bytes: Vec<u8>,
    sections: Vec<(String, Range<usize>)>,
}

impl SnapshotFile {
    /// Reads and validates a snapshot file from disk.
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        SnapshotFile::read_in(&Fs::real(), path)
    }

    /// [`SnapshotFile::read`] through an explicit storage backend (fault-injection
    /// suites poison the read to prove corruption is always a typed error).
    pub fn read_in(fs: &Fs, path: impl AsRef<Path>) -> Result<Self> {
        SnapshotFile::from_bytes(fs.read(path.as_ref())?)
    }

    /// Validates `bytes` as a snapshot: magic, version, section-table bounds and every
    /// section's CRC32. Nothing is loaded until all validation passes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
            let mut found = [0u8; 8];
            let n = bytes.len().min(8);
            found[..n].copy_from_slice(&bytes[..n]);
            return Err(CkptError::BadMagic { found });
        }
        let mut header = StateReader::new(&bytes[8..HEADER_LEN]);
        let version = header.take_u32()?;
        if version != FORMAT_VERSION {
            return Err(CkptError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = header.take_u32()? as usize;

        let mut table = StateReader::new(&bytes[HEADER_LEN..]);
        let mut sections: Vec<(String, Range<usize>)> = Vec::new();
        for _ in 0..count {
            let name_len = table.take_u16()? as usize;
            let name_bytes = table.take_bytes(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|e| CkptError::Corrupt {
                    what: "section name",
                    detail: format!("not valid UTF-8: {e}"),
                })?
                .to_string();
            let offset = table.take_u64()?;
            let len = table.take_u64()?;
            let crc = table.take_u32()?;
            let start = usize::try_from(offset).map_err(|_| CkptError::Corrupt {
                what: "section offset",
                detail: format!("offset {offset} exceeds the host pointer width"),
            })?;
            let end = usize::try_from(len)
                .ok()
                .and_then(|l| start.checked_add(l))
                .ok_or_else(|| CkptError::Corrupt {
                    what: "section length",
                    detail: format!("section {name:?} length {len} overflows"),
                })?;
            if end > bytes.len() {
                return Err(CkptError::Truncated {
                    what: "section payload",
                    needed: end,
                    available: bytes.len(),
                });
            }
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(CkptError::Corrupt {
                    what: "section table",
                    detail: format!("duplicate section name {name:?}"),
                });
            }
            let computed = crc32(&bytes[start..end]);
            if computed != crc {
                return Err(CkptError::CrcMismatch {
                    section: name,
                    stored: crc,
                    computed,
                });
            }
            sections.push((name, start..end));
        }
        Ok(SnapshotFile { bytes, sections })
    }

    /// Names of every section, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// True when a section with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    /// A reader positioned at the start of the named section's payload.
    pub fn reader(&self, name: &str) -> Result<StateReader<'_>> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, range)| StateReader::new(&self.bytes[range.clone()]))
            .ok_or_else(|| CkptError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Restores `target` in place from the named section, requiring the load to consume
    /// the section exactly (leftover bytes mean format skew and fail loudly).
    pub fn load_into(&self, name: &str, target: &mut impl LoadState) -> Result<()> {
        let mut r = self.reader(name)?;
        target.load_state(&mut r)?;
        r.finish("section payload")
    }

    /// Decodes an owned value from the named section (same exact-consumption rule as
    /// [`SnapshotFile::load_into`]).
    pub fn decode<T: DecodeState>(&self, name: &str) -> Result<T> {
        let mut r = self.reader(name)?;
        let value = T::decode_state(&mut r)?;
        r.finish("section payload")?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::new();
        let mut w = StateWriter::new();
        w.put_u64(99);
        w.put_f32_slice(&[1.5, -2.5]);
        snap.put_raw("alpha", w.into_bytes());
        snap.put_raw("beta", vec![7, 8, 9]);
        snap
    }

    #[test]
    fn roundtrip_preserves_sections() {
        let bytes = sample().to_bytes();
        let file = SnapshotFile::from_bytes(bytes).unwrap();
        assert_eq!(file.section_names().collect::<Vec<_>>(), ["alpha", "beta"]);
        assert!(file.contains("alpha") && !file.contains("gamma"));
        let mut r = file.reader("alpha").unwrap();
        assert_eq!(r.take_u64().unwrap(), 99);
        assert_eq!(r.take_f32_vec().unwrap(), vec![1.5, -2.5]);
        r.finish("alpha").unwrap();
        assert_eq!(
            file.reader("beta").unwrap().take_bytes(3).unwrap(),
            [7, 8, 9]
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotFile::from_bytes(bytes),
            Err(CkptError::BadMagic { .. })
        ));
        // A short random file is also "bad magic", never a panic.
        assert!(matches!(
            SnapshotFile::from_bytes(vec![1, 2, 3]),
            Err(CkptError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match SnapshotFile::from_bytes(bytes) {
            Err(CkptError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = SnapshotFile::from_bytes(bytes[..cut].to_vec())
                .expect_err(&format!("truncation at {cut} bytes must fail"));
            assert!(
                matches!(
                    err,
                    CkptError::BadMagic { .. }
                        | CkptError::Truncated { .. }
                        | CkptError::CrcMismatch { .. }
                        | CkptError::Corrupt { .. }
                ),
                "unexpected error at cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn any_payload_byte_flip_is_a_crc_mismatch() {
        let snap = sample();
        let clean = snap.to_bytes();
        // Payloads start after header + table; flip every payload byte in turn.
        let payload_start = clean.len() - (8 + 4 * 2 + 3); // alpha (8 + 2 f32s + len) + beta (3)
        for pos in payload_start..clean.len() {
            let mut damaged = clean.clone();
            damaged[pos] ^= 0x40;
            assert!(
                matches!(
                    SnapshotFile::from_bytes(damaged),
                    Err(CkptError::CrcMismatch { .. })
                ),
                "flip at byte {pos} was not caught by a CRC"
            );
        }
    }

    #[test]
    fn duplicate_sections_rejected_on_read_and_panic_on_write() {
        // Hand-craft a duplicate table by encoding the same section twice.
        let mut snap = Snapshot::new();
        snap.put_raw("dup", vec![1]);
        let mut bytes = snap.to_bytes();
        // Bump the count to 2 and append a copy of the single table entry, fixing offsets
        // is unnecessary: duplication is detected before payload validation of the copy.
        bytes[12..16].copy_from_slice(&2u32.to_le_bytes());
        let entry = bytes[HEADER_LEN..HEADER_LEN + 2 + 3 + ENTRY_FIXED_LEN].to_vec();
        bytes.splice(
            HEADER_LEN + 2 + 3 + ENTRY_FIXED_LEN..HEADER_LEN + 2 + 3 + ENTRY_FIXED_LEN,
            entry,
        );
        // Offsets now point into shifted data, so either Corrupt (duplicate) or a CRC
        // error is acceptable; both are typed, neither panics.
        assert!(SnapshotFile::from_bytes(bytes).is_err());

        let result = std::panic::catch_unwind(|| {
            let mut s = Snapshot::new();
            s.put_raw("x", vec![]);
            s.put_raw("x", vec![]);
        });
        assert!(result.is_err(), "duplicate put_raw must panic");
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join("crowd_ckpt_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        let snap = sample();
        snap.write_to(&path).unwrap();
        let file = SnapshotFile::read(&path).unwrap();
        assert_eq!(file.section_names().count(), 2);
        // The tmp name appends to the full name — the *.ckpt.tmp gitignore pattern and
        // the "<path>.tmp" doc depend on it — and must be gone after the rename.
        assert!(
            !dir.join("roundtrip.ckpt.tmp").exists(),
            "tmp file left behind"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_section_is_typed() {
        let file = SnapshotFile::from_bytes(sample().to_bytes()).unwrap();
        assert!(matches!(
            file.reader("nope"),
            Err(CkptError::MissingSection { .. })
        ));
    }
}
