//! The byte-level primitives: [`StateWriter`] appends little-endian fields to an
//! in-memory section payload, [`StateReader`] consumes them with bounds checks on every
//! read.
//!
//! All multi-byte integers are little-endian. Floats are stored as their raw IEEE-754
//! bits (`f32::to_bits` / `f64::to_bits`), **never** through text or any lossy path, so a
//! save→load roundtrip reproduces every value bit for bit — including NaN payloads and
//! signed zeros. Variable-length data (strings, slices, vectors) is prefixed with a `u64`
//! element count; the reader validates the count against the bytes actually remaining
//! *before* allocating, so a corrupt length cannot trigger an out-of-memory abort.

use crate::error::{CkptError, Result};
use crate::{DecodeState, LoadState, SaveState};
use std::time::Duration;

/// Append-only little-endian writer for one section payload.
///
/// Writing is infallible (the buffer is in memory); all failure handling lives on the
/// read side.
#[derive(Debug, Default, Clone)]
pub struct StateWriter {
    buf: Vec<u8>,
    canonical: bool,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// An empty writer in **canonical** mode: [`put_duration`](StateWriter::put_duration)
    /// writes `Duration::ZERO` instead of the measured value.
    ///
    /// Checkpoints carry accumulated wall-clock measurements (learner wall time, session
    /// timing) so a resumed run reports cumulative timings correctly — but wall time is
    /// *measurement* state, not *semantic* state: two executions of the same decision
    /// sequence land on identical parameters, RNG words and buffers while their clocks
    /// differ in every run. Canonical mode erases exactly that, so a canonical encoding
    /// is a **semantic fingerprint**: byte-equality ⇔ the policies behave identically
    /// from here on. `tests/serve_equivalence.rs` and `tests/serve_recovery.rs` compare
    /// live servers against log replays this way. Never feed a canonical encoding to a
    /// restore path that should preserve timings.
    pub fn canonical() -> Self {
        StateWriter {
            buf: Vec::new(),
            canonical: true,
        }
    }

    /// True when this writer was built with [`StateWriter::canonical`].
    pub fn is_canonical(&self) -> bool {
        self.canonical
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer into its payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (`0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of host width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` as its raw IEEE-754 bits.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its raw IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with **no** length prefix (used by the container layer).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a UTF-8 string: `u64` byte length, then the bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an `f32` slice: `u64` element count, then each element's raw bits.
    pub fn put_f32_slice(&mut self, values: &[f32]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_f32(v);
        }
    }

    /// Appends an `f64` slice: `u64` element count, then each element's raw bits.
    pub fn put_f64_slice(&mut self, values: &[f64]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_f64(v);
        }
    }

    /// Appends a `u32` slice: `u64` element count, then the values.
    pub fn put_u32_slice(&mut self, values: &[u32]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_u32(v);
        }
    }

    /// Appends a `u64` slice: `u64` element count, then the values.
    pub fn put_u64_slice(&mut self, values: &[u64]) {
        self.put_usize(values.len());
        for &v in values {
            self.put_u64(v);
        }
    }

    /// Appends a [`Duration`] as whole seconds (`u64`) plus subsecond nanos (`u32`) —
    /// exact for any duration `std` can represent. A [canonical](StateWriter::canonical)
    /// writer appends `Duration::ZERO` instead: wall-clock measurements are the one kind
    /// of state that is *expected* to differ between bit-identical executions.
    pub fn put_duration(&mut self, d: Duration) {
        let d = if self.canonical { Duration::ZERO } else { d };
        self.put_u64(d.as_secs());
        self.put_u32(d.subsec_nanos());
    }

    /// Appends a component's state via its [`SaveState`] impl (pure convenience so
    /// nested saves read left to right).
    pub fn save(&mut self, state: &impl SaveState) {
        state.save_state(self);
    }
}

/// Bounds-checked little-endian reader over one section payload.
///
/// Every `take_*` returns [`CkptError::Truncated`] instead of panicking when the bytes
/// run out, and length prefixes are validated against the remaining bytes before any
/// allocation.
#[derive(Debug, Clone)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the section.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take_raw(&mut self, what: &'static str, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                what,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take_raw("u8", 1)?[0])
    }

    /// Reads a bool byte; anything other than `0`/`1` is [`CkptError::Corrupt`].
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_raw("bool", 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Corrupt {
                what: "bool",
                detail: format!("byte {other:#04x} is neither 0 nor 1"),
            }),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16> {
        let b = self.take_raw("u16", 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take_raw("u32", 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take_raw("u64", 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and converts it to the host `usize`, erroring when it does not fit.
    pub fn take_usize(&mut self) -> Result<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| CkptError::Corrupt {
            what: "usize",
            detail: format!("value {v} exceeds the host pointer width"),
        })
    }

    /// Reads an `f32` from its raw bits.
    pub fn take_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads an `f64` from its raw bits.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take_raw("raw bytes", n)
    }

    /// Reads a `u64` element count and validates `count * elem_size` against the bytes
    /// remaining, so corrupt counts fail fast instead of driving a huge allocation.
    pub fn take_len(&mut self, what: &'static str, elem_size: usize) -> Result<usize> {
        let len = self.take_usize()?;
        let bytes = len
            .checked_mul(elem_size)
            .ok_or_else(|| CkptError::Corrupt {
                what,
                detail: format!("element count {len} overflows the byte budget"),
            })?;
        if bytes > self.remaining() {
            return Err(CkptError::Truncated {
                what,
                needed: bytes,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_len("string", 1)?;
        let bytes = self.take_raw("string bytes", len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| CkptError::Corrupt {
            what: "string",
            detail: format!("not valid UTF-8: {e}"),
        })
    }

    /// Reads a length-prefixed `f32` vector (raw bits).
    pub fn take_f32_vec(&mut self) -> Result<Vec<f32>> {
        let len = self.take_len("f32 slice", 4)?;
        (0..len).map(|_| self.take_f32()).collect()
    }

    /// Reads a length-prefixed `f64` vector (raw bits).
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.take_len("f64 slice", 8)?;
        (0..len).map(|_| self.take_f64()).collect()
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn take_u32_vec(&mut self) -> Result<Vec<u32>> {
        let len = self.take_len("u32 slice", 4)?;
        (0..len).map(|_| self.take_u32()).collect()
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn take_u64_vec(&mut self) -> Result<Vec<u64>> {
        let len = self.take_len("u64 slice", 8)?;
        (0..len).map(|_| self.take_u64()).collect()
    }

    /// Reads a [`Duration`] (`u64` seconds + `u32` nanos); nanos ≥ 10⁹ are corrupt.
    pub fn take_duration(&mut self) -> Result<Duration> {
        let secs = self.take_u64()?;
        let nanos = self.take_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(CkptError::Corrupt {
                what: "duration",
                detail: format!("subsecond nanos {nanos} out of range"),
            });
        }
        Ok(Duration::new(secs, nanos))
    }

    /// Restores a component in place via its [`LoadState`] impl (convenience mirror of
    /// [`StateWriter::save`]).
    pub fn load(&mut self, state: &mut impl LoadState) -> Result<()> {
        state.load_state(self)
    }

    /// Decodes an owned value via its [`DecodeState`] impl.
    pub fn decode<T: DecodeState>(&mut self) -> Result<T> {
        T::decode_state(self)
    }

    /// Asserts every byte was consumed; trailing bytes mean the writer and reader
    /// disagree about the layout (format skew), which must fail loudly.
    pub fn finish(&self, what: &'static str) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CkptError::Corrupt {
                what,
                detail: format!("{} trailing bytes after a complete load", self.remaining()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_bit_exact() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65535);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(42);
        w.put_f32(f32::NAN);
        w.put_f32(-0.0);
        w.put_f64(std::f64::consts::PI);
        w.put_duration(Duration::new(3, 999_999_999));

        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u16().unwrap(), 65535);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_usize().unwrap(), 42);
        assert_eq!(r.take_f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(r.take_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(
            r.take_f64().unwrap().to_bits(),
            std::f64::consts::PI.to_bits()
        );
        assert_eq!(r.take_duration().unwrap(), Duration::new(3, 999_999_999));
        r.finish("test").unwrap();
    }

    #[test]
    fn slices_and_strings_roundtrip() {
        let mut w = StateWriter::new();
        w.put_str("héllo");
        w.put_f32_slice(&[1.0, f32::INFINITY, -2.5]);
        w.put_f64_slice(&[0.1]);
        w.put_u32_slice(&[9, 8]);
        w.put_u64_slice(&[]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_str().unwrap(), "héllo");
        let f = r.take_f32_vec().unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f[1], f32::INFINITY);
        assert_eq!(r.take_f64_vec().unwrap(), vec![0.1]);
        assert_eq!(r.take_u32_vec().unwrap(), vec![9, 8]);
        assert!(r.take_u64_vec().unwrap().is_empty());
        r.finish("test").unwrap();
    }

    #[test]
    fn canonical_writer_zeroes_durations_and_nothing_else() {
        let encode = |w: &mut StateWriter| {
            w.put_u64(99);
            w.put_duration(Duration::new(7, 500));
            w.put_f32(1.25);
        };
        let mut measured = StateWriter::new();
        encode(&mut measured);
        let mut canonical = StateWriter::canonical();
        assert!(canonical.is_canonical());
        encode(&mut canonical);

        let bytes = canonical.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.take_u64().unwrap(), 99);
        assert_eq!(r.take_duration().unwrap(), Duration::ZERO);
        assert_eq!(r.take_f32().unwrap(), 1.25);
        r.finish("canonical").unwrap();

        // Same layout, differs only in the duration field.
        assert_eq!(bytes.len(), measured.len());
        assert_ne!(bytes, measured.into_bytes());
    }

    #[test]
    fn truncation_is_a_typed_error_not_a_panic() {
        let mut w = StateWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..3]);
        match r.take_u64() {
            Err(CkptError::Truncated {
                needed, available, ..
            }) => {
                assert_eq!(needed, 8);
                assert_eq!(available, 3);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_length_prefix_fails_before_allocating() {
        let mut w = StateWriter::new();
        w.put_u64(u64::MAX); // an absurd element count
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(r.take_f32_vec().is_err());
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut r = StateReader::new(&[2]);
        assert!(matches!(
            r.take_bool(),
            Err(CkptError::Corrupt { what: "bool", .. })
        ));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let r = StateReader::new(&[1, 2, 3]);
        assert!(matches!(
            r.finish("section"),
            Err(CkptError::Corrupt { .. })
        ));
    }
}
