//! Write-ahead-log framing: segmented, CRC-checked record-batch files.
//!
//! The snapshot format in [`crate::snapshot`] captures a *point-in-time* state; this
//! module is its streaming sibling — an append-only log of opaque record batches that a
//! crashed process replays to reconstruct the state it never snapshotted. The decision
//! log of the `crowd-serve` crate is the first user; the framing itself is generic (the
//! payload bytes are opaque to this layer) and specified byte by byte in
//! `docs/DECISION_LOG_FORMAT.md` at the repository root.
//!
//! # Layout
//!
//! A log is a directory of segment files named `segment-<index08>.wlog` with strictly
//! consecutive indices. A fresh log starts at segment 0; a *compacted* log (see the
//! `crowd-serve` decision log) may start at a later index, with a base snapshot
//! standing in for the deleted prefix — [`scan_dir`] checks consecutiveness and
//! reports the first index, and the caller decides whether a non-zero start is legal.
//! Each segment is:
//!
//! ```text
//! magic "CRWDWLOG" (8) | version u32 LE (4) | segment index u64 LE (8)   — 20-byte header
//! then zero or more record batches:
//! payload length u32 LE (4) | CRC-32/IEEE of payload u32 LE (4) | payload bytes
//! ```
//!
//! # Durability contract
//!
//! * **Atomic segment creation** — a segment is materialised by writing its header to
//!   `<name>.tmp`, syncing, then renaming to the final name. A crash mid-rotation leaves
//!   a `.tmp` file that readers ignore (and recovery deletes); a named segment therefore
//!   always has a complete, valid header.
//! * **Torn tails are detectable and safe** — an append that was cut by a crash leaves a
//!   trailing batch whose length field, payload bytes or CRC are incomplete.
//!   [`read_segment`] stops at the first such batch and reports the clean prefix length;
//!   callers truncate to it ([`SegmentWriter::resume`]) and continue appending. Because
//!   writers acknowledge work only *after* [`SegmentWriter::sync`] returns, a torn batch
//!   was by construction never acknowledged, so dropping it loses nothing that was
//!   promised.
//! * **Sealed segments must be clean** — only the highest-indexed segment may carry a
//!   torn tail (it was the active one when the process died). A torn or short batch in
//!   any earlier segment means bytes rotted *after* they were sealed, which replay-based
//!   recovery must not paper over; [`scan_dir`] callers treat it as corruption.

use crate::crc32::crc32;
use crate::error::{CkptError, Result};
use crate::io::{DirSyncPolicy, Fs, StorageFile};
use std::fmt;
use std::path::{Path, PathBuf};

/// First eight bytes of every segment file.
pub const WAL_MAGIC: [u8; 8] = *b"CRWDWLOG";

/// The single segment-format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;

/// Byte length of the fixed segment header (magic + version + segment index).
pub const SEGMENT_HEADER_LEN: u64 = 8 + 4 + 8;

/// Byte length of a record-batch header (payload length + CRC-32).
pub const BATCH_HEADER_LEN: u64 = 4 + 4;

/// File name of the segment with the given index (`segment-00000007.wlog`).
pub fn segment_file_name(index: u64) -> String {
    format!("segment-{index:08}.wlog")
}

/// Parses a segment file name back to its index; `None` for foreign files.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("segment-")?.strip_suffix(".wlog")?;
    if digits.len() < 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn encode_header(index: u64) -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut h = [0u8; SEGMENT_HEADER_LEN as usize];
    h[0..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&index.to_le_bytes());
    h
}

/// An open segment accepting record-batch appends.
///
/// The writer never buffers: every [`SegmentWriter::append`] issues the batch to the OS
/// in one `write_all`, and [`SegmentWriter::sync`] makes everything appended so far
/// durable. Acknowledge work to callers only after `sync` returns.
pub struct SegmentWriter {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    index: u64,
    len: u64,
}

impl fmt::Debug for SegmentWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentWriter")
            .field("path", &self.path)
            .field("index", &self.index)
            .field("len", &self.len)
            .finish()
    }
}

impl SegmentWriter {
    /// Creates segment `index` inside `dir` atomically on the real filesystem with the
    /// strict directory-sync policy (see [`SegmentWriter::create_in`]).
    pub fn create(dir: &Path, index: u64) -> Result<SegmentWriter> {
        SegmentWriter::create_in(&Fs::real(), dir, index, DirSyncPolicy::Strict)
    }

    /// Creates segment `index` inside `dir` atomically: the 20-byte header is written to
    /// `<name>.tmp`, synced, and renamed into place. Fails if the segment already
    /// exists. The containing directory is then fsynced so the rename itself survives
    /// power loss: under [`DirSyncPolicy::Strict`] (the default everywhere durability
    /// matters) a failed directory sync is an error — the segment *name* is part of
    /// what recovery reads, so acknowledging appends into a segment whose name might
    /// vanish would break the ack barrier. [`DirSyncPolicy::BestEffort`] restores the
    /// historical swallow-the-error behaviour for callers that can tolerate it.
    pub fn create_in(
        fs: &Fs,
        dir: &Path,
        index: u64,
        dir_sync: DirSyncPolicy,
    ) -> Result<SegmentWriter> {
        let path = dir.join(segment_file_name(index));
        if fs.exists(&path) {
            return Err(CkptError::Corrupt {
                what: "wal segment",
                detail: format!("{} already exists", path.display()),
            });
        }
        let tmp = dir.join(format!("{}.tmp", segment_file_name(index)));
        let mut file = fs.create(&tmp)?;
        file.write_all(&encode_header(index))?;
        file.sync_all()?;
        fs.rename(&tmp, &path)?;
        match dir_sync {
            DirSyncPolicy::Strict => fs.sync_dir(dir)?,
            DirSyncPolicy::BestEffort => {
                let _ = fs.sync_dir(dir);
            }
        }
        Ok(SegmentWriter {
            file,
            path,
            index,
            len: SEGMENT_HEADER_LEN,
        })
    }

    /// [`SegmentWriter::resume_in`] on the real filesystem.
    pub fn resume(path: &Path, index: u64, keep_len: u64) -> Result<SegmentWriter> {
        SegmentWriter::resume_in(&Fs::real(), path, index, keep_len)
    }

    /// Reopens an existing segment for appending, first truncating it to `keep_len`
    /// bytes (the clean-prefix length reported by [`read_segment`]) so a torn tail left
    /// by a crash is physically removed before new batches land after it.
    pub fn resume_in(fs: &Fs, path: &Path, index: u64, keep_len: u64) -> Result<SegmentWriter> {
        let mut file = fs.open_rw(path)?;
        file.set_len(keep_len)?;
        file.sync_all()?;
        file.seek_end()?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            index,
            len: keep_len,
        })
    }

    /// Truncates the file back to the clean length this writer has accounted for —
    /// the self-healing step after a failed [`SegmentWriter::append`]: a short write
    /// may have landed a partial frame on disk, and retrying the append without first
    /// removing it would leave garbage between valid batches. Safe to call at any
    /// time; a writer whose last append succeeded is a no-op truncate.
    pub fn truncate_to_len(&mut self) -> Result<()> {
        self.file.set_len(self.len)?;
        self.file.sync_data()?;
        self.file.seek_end()?;
        Ok(())
    }

    /// Rolls the writer's *accounted* clean length back to `len` without touching the
    /// file. For callers whose durability barrier failed after a physically complete
    /// append (`write_all` succeeded, `sync` did not): the frame's durability is
    /// unknown, so it must not be counted — rewind, then [`truncate_to_len`] physically
    /// removes it before the retry lands the batch exactly once.
    ///
    /// [`truncate_to_len`]: SegmentWriter::truncate_to_len
    ///
    /// # Panics
    ///
    /// Panics when `len` is ahead of the current accounted length or inside the header.
    pub fn rewind_to(&mut self, len: u64) {
        assert!(
            len >= SEGMENT_HEADER_LEN && len <= self.len,
            "rewind target {len} outside [{SEGMENT_HEADER_LEN}, {}]",
            self.len
        );
        self.len = len;
    }

    /// Appends one record batch (`len | crc32 | payload`). Not yet durable — call
    /// [`SegmentWriter::sync`] before acknowledging.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| CkptError::Corrupt {
            what: "wal batch",
            detail: format!("payload of {} bytes exceeds the u32 frame", payload.len()),
        })?;
        let mut frame = Vec::with_capacity(BATCH_HEADER_LEN as usize + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Makes every appended batch durable (`fdatasync`).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Current byte length of the segment (header plus all appended frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no batch has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len <= SEGMENT_HEADER_LEN
    }

    /// This segment's index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Everything [`read_segment`] found in one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Segment index stored in the header.
    pub index: u64,
    /// The CRC-verified record-batch payloads, in append order.
    pub batches: Vec<Vec<u8>>,
    /// Byte length of the clean prefix (header plus every complete batch); equals the
    /// file length when the segment is clean.
    pub clean_len: u64,
    /// Bytes past the clean prefix — a torn trailing batch ([`SegmentScan::is_torn`]).
    pub torn_bytes: u64,
}

impl SegmentScan {
    /// True when the file ends in an incomplete or CRC-damaged batch.
    pub fn is_torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// [`read_segment_in`] on the real filesystem.
pub fn read_segment(path: &Path) -> Result<SegmentScan> {
    read_segment_in(&Fs::real(), path)
}

/// Reads one segment: validates the header strictly (a named segment always has a
/// complete header — see the module docs on atomic creation), then collects batches
/// until the clean end of the file or the first torn/damaged frame.
pub fn read_segment_in(fs: &Fs, path: &Path) -> Result<SegmentScan> {
    let bytes = fs.read(path)?;
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return Err(CkptError::Truncated {
            what: "wal segment header",
            needed: SEGMENT_HEADER_LEN as usize,
            available: bytes.len(),
        });
    }
    if bytes[0..8] != WAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[0..8]);
        return Err(CkptError::BadMagic { found });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(CkptError::UnsupportedVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    let index = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));

    let mut batches = Vec::new();
    let mut offset = SEGMENT_HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break; // clean end
        }
        if remaining < BATCH_HEADER_LEN as usize {
            break; // torn: the batch header itself was cut
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let body = offset + BATCH_HEADER_LEN as usize;
        if len == 0 || remaining - (BATCH_HEADER_LEN as usize) < len {
            break; // torn: zeroed preallocation or cut payload
        }
        let payload = &bytes[body..body + len];
        if crc32(payload) != stored_crc {
            break; // torn: payload bytes landed partially
        }
        batches.push(payload.to_vec());
        offset = body + len;
    }
    Ok(SegmentScan {
        index,
        batches,
        clean_len: offset as u64,
        torn_bytes: (bytes.len() - offset) as u64,
    })
}

/// The segment inventory of a log directory.
#[derive(Debug, Default)]
pub struct WalDir {
    /// `(index, path)` of every segment, sorted by index; indices are verified to be
    /// strictly consecutive (a compacted log may start past 0 — see
    /// [`WalDir::first_index`]).
    pub segments: Vec<(u64, PathBuf)>,
    /// Leftover `.tmp` files from an interrupted rotation (readers ignore them; recovery
    /// deletes them).
    pub tmp_files: Vec<PathBuf>,
}

impl WalDir {
    /// Index of the first (lowest) segment, when any exist. A fresh log starts at 0;
    /// a compacted log starts wherever its base snapshot's suffix begins — callers
    /// that expect a full history must check this is 0.
    pub fn first_index(&self) -> Option<u64> {
        self.segments.first().map(|(index, _)| *index)
    }
}

/// [`scan_dir_in`] on the real filesystem.
pub fn scan_dir(dir: &Path) -> Result<WalDir> {
    scan_dir_in(&Fs::real(), dir)
}

/// Lists a log directory: segment files sorted and contiguity-checked (gaps are
/// corruption; a non-zero start is legal and left to the caller to validate), `.tmp`
/// leftovers separated out, foreign files ignored.
pub fn scan_dir_in(fs: &Fs, dir: &Path) -> Result<WalDir> {
    let mut out = WalDir::default();
    for (name, path) in fs.read_dir(dir)? {
        if name.ends_with(".tmp") {
            if name
                .strip_suffix(".tmp")
                .is_some_and(|stem| parse_segment_file_name(stem).is_some())
            {
                out.tmp_files.push(path);
            }
        } else if let Some(index) = parse_segment_file_name(&name) {
            out.segments.push((index, path));
        }
    }
    out.segments.sort_by_key(|(index, _)| *index);
    out.tmp_files.sort();
    let first = out.first_index().unwrap_or(0);
    for (pos, (index, path)) in out.segments.iter().enumerate() {
        if *index != first + pos as u64 {
            return Err(CkptError::Corrupt {
                what: "wal directory",
                detail: format!(
                    "segment indices are not consecutive: expected {}, found {} ({})",
                    first + pos as u64,
                    index,
                    path.display()
                ),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(segment_file_name(7), "segment-00000007.wlog");
        assert_eq!(parse_segment_file_name("segment-00000007.wlog"), Some(7));
        assert_eq!(
            parse_segment_file_name("segment-123456789.wlog"),
            Some(123_456_789)
        );
        assert_eq!(parse_segment_file_name("segment-0000000x.wlog"), None);
        assert_eq!(parse_segment_file_name("other.wlog"), None);
        assert_eq!(parse_segment_file_name("segment-00000007.wlog.tmp"), None);
    }

    #[test]
    fn append_and_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        assert!(w.is_empty());
        w.append(b"first").unwrap();
        w.append(&[0xAB; 300]).unwrap();
        w.sync().unwrap();
        assert_eq!(w.len(), SEGMENT_HEADER_LEN + 2 * BATCH_HEADER_LEN + 5 + 300);

        let scan = read_segment(w.path()).unwrap();
        assert_eq!(scan.index, 0);
        assert!(!scan.is_torn());
        assert_eq!(scan.clean_len, w.len());
        assert_eq!(scan.batches, vec![b"first".to_vec(), vec![0xAB; 300]]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_torn_tail_cut_point_drops_only_the_last_batch() {
        let dir = tmp_dir("torn");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append(b"keep-me").unwrap();
        w.append(b"torn-away").unwrap();
        w.sync().unwrap();
        let full = std::fs::read(w.path()).unwrap();
        let clean_prefix = SEGMENT_HEADER_LEN as usize + BATCH_HEADER_LEN as usize + 7;

        for cut in clean_prefix..full.len() {
            std::fs::write(w.path(), &full[..cut]).unwrap();
            let scan = read_segment(w.path()).unwrap();
            assert_eq!(scan.batches, vec![b"keep-me".to_vec()], "cut at {cut}");
            assert_eq!(scan.clean_len, clean_prefix as u64, "cut at {cut}");
            assert_eq!(scan.is_torn(), cut > clean_prefix, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_damage_ends_the_clean_prefix() {
        let dir = tmp_dir("crc");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append(b"good").unwrap();
        w.append(b"flipped").unwrap();
        w.sync().unwrap();
        let mut bytes = std::fs::read(w.path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(w.path(), &bytes).unwrap();
        let scan = read_segment(w.path()).unwrap();
        assert_eq!(scan.batches, vec![b"good".to_vec()]);
        assert!(scan.is_torn());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_truncates_the_torn_tail_before_appending() {
        let dir = tmp_dir("resume");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append(b"stable").unwrap();
        w.sync().unwrap();
        let path = w.path().to_path_buf();
        let clean = w.len();
        drop(w);
        // Simulate a torn append past the clean prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]); // half a batch header + garbage
        std::fs::write(&path, &bytes).unwrap();

        let mut w = SegmentWriter::resume(&path, 0, clean).unwrap();
        w.append(b"after-crash").unwrap();
        w.sync().unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(
            scan.batches,
            vec![b"stable".to_vec(), b"after-crash".to_vec()]
        );
        assert!(!scan.is_torn());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_validation_is_strict() {
        let dir = tmp_dir("header");
        let path = dir.join(segment_file_name(0));
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(CkptError::Truncated { .. })
        ));
        std::fs::write(&path, b"NOTAWLOGxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(CkptError::BadMagic { .. })
        ));
        let mut h = encode_header(0).to_vec();
        h[8] = 99;
        std::fs::write(&path, &h).unwrap();
        assert!(matches!(
            read_segment(&path),
            Err(CkptError::UnsupportedVersion { found: 99, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_dir_sorts_checks_contiguity_and_separates_tmp() {
        let dir = tmp_dir("scan");
        SegmentWriter::create(&dir, 0).unwrap();
        SegmentWriter::create(&dir, 1).unwrap();
        std::fs::write(dir.join("segment-00000002.wlog.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(
            scan.segments.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(scan.first_index(), Some(0));
        assert_eq!(scan.tmp_files.len(), 1);

        // A gap is corruption.
        std::fs::remove_file(dir.join(segment_file_name(1))).unwrap();
        SegmentWriter::create(&dir, 2).unwrap();
        assert!(matches!(scan_dir(&dir), Err(CkptError::Corrupt { .. })));

        // A non-zero *start* is legal (compacted log): the caller checks first_index.
        std::fs::remove_file(dir.join(segment_file_name(0))).unwrap();
        SegmentWriter::create(&dir, 3).unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(
            scan.segments.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(scan.first_index(), Some(2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_to_len_heals_a_partial_frame_between_appends() {
        use crate::io::{FaultPlan, Fs};
        let dir = tmp_dir("heal");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append(b"durable").unwrap();
        w.sync().unwrap();
        let path = w.path().to_path_buf();
        let clean_len = w.len();
        drop(w);

        // Resume through an injected fs and poison the first append's write: resume_in
        // issues OpenFile(0), SetLen(1), SyncAll(2), so the append's write is op 3 and
        // lands as a short write (half the frame persists, then an error).
        let (fs, probe) = Fs::faulty(FaultPlan::fail_op(3));
        let mut w = SegmentWriter::resume_in(&fs, &path, 0, clean_len).unwrap();
        let err = w.append(b"torn-frame-payload").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(probe.fired().len(), 1);
        let on_disk = std::fs::read(&path).unwrap().len() as u64;
        assert!(on_disk > clean_len, "short write left partial bytes");

        // Heal, retry, and the segment holds exactly the acknowledged batches.
        w.truncate_to_len().unwrap();
        w.append(b"after-heal").unwrap();
        w.sync().unwrap();
        let scan = read_segment(&path).unwrap();
        assert_eq!(
            scan.batches,
            vec![b"durable".to_vec(), b"after-heal".to_vec()]
        );
        assert!(!scan.is_torn());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_overwrite() {
        let dir = tmp_dir("overwrite");
        SegmentWriter::create(&dir, 0).unwrap();
        assert!(matches!(
            SegmentWriter::create(&dir, 0),
            Err(CkptError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
