//! The typed error surface of the checkpoint loader.
//!
//! Every failure mode a reader can hit — wrong file, wrong version, damaged bytes,
//! format skew — maps to a distinct [`CkptError`] variant. The loader **never panics and
//! never half-loads**: validation (magic, version, table bounds, per-section CRCs)
//! happens before any state is touched, and in-place loads run against a fully
//! CRC-verified section.

use std::fmt;

/// Result alias for every fallible checkpoint operation.
pub type Result<T> = std::result::Result<T, CkptError>;

/// Everything that can go wrong saving or loading a snapshot.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — it is not a snapshot at all.
    BadMagic {
        /// The first eight bytes actually found (zero-padded when the file is shorter).
        found: [u8; 8],
    },
    /// The file announces a format version this build cannot read (e.g. a snapshot
    /// written by a future version of the workspace).
    UnsupportedVersion {
        /// Version stored in the file header.
        found: u32,
        /// The single version this build supports ([`crate::FORMAT_VERSION`]).
        supported: u32,
    },
    /// The byte stream ended before a read completed (truncated file or section).
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's stored CRC32 does not match the checksum of its payload bytes.
    CrcMismatch {
        /// Name of the damaged section.
        section: String,
        /// CRC stored in the section table.
        stored: u32,
        /// CRC computed over the payload actually present.
        computed: u32,
    },
    /// The bytes decoded but violate the format's invariants (bad bool byte, non-UTF-8
    /// name, overlapping table entry, shape mismatch against the live object, …).
    Corrupt {
        /// What was being decoded.
        what: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A section the loader requires is absent from the snapshot.
    MissingSection {
        /// The requested section name.
        name: String,
    },
    /// The component does not support checkpointing (e.g. a policy without state
    /// serialisation); callers can treat this as "skip" rather than "fail".
    Unsupported {
        /// What lacks checkpoint support.
        what: &'static str,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic bytes {found:02x?})")
            }
            CkptError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            CkptError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot while reading {what}: needed {needed} bytes, {available} available"
            ),
            CkptError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "CRC mismatch in section {section:?}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::Corrupt { what, detail } => {
                write!(f, "corrupt snapshot while decoding {what}: {detail}")
            }
            CkptError::MissingSection { name } => {
                write!(f, "snapshot has no section named {name:?}")
            }
            CkptError::Unsupported { what } => {
                write!(f, "{what} does not support checkpointing")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CkptError::CrcMismatch {
            section: "env".to_string(),
            stored: 1,
            computed: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("env") && msg.contains("0x00000001"), "{msg}");
        assert!(CkptError::BadMagic { found: [0; 8] }
            .to_string()
            .contains("not a snapshot"));
        assert!(CkptError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
    }

    #[test]
    fn io_errors_wrap_with_source() {
        let e: CkptError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, CkptError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
