//! Long-lived dedicated worker threads, complementing the [`ThreadPool`].
//!
//! The pool in this crate serves *compute bursts*: a `par_chunks`/`par_join` call
//! borrows the caller's data, fans it out over the persistent pool's parked workers
//! and waits for every shard before returning. An online serving loop is the opposite
//! shape — one thread that lives for the whole process, owns mutable state outright
//! (the policy, the decision log) and blocks on an ingress queue between bursts.
//! [`spawn_dedicated`] is the workspace-standard way to start such a thread (the
//! persistent pool itself uses it for its workers):
//!
//! * the thread is **named** (`crowd-<name>`), so profilers, `top -H` and panic
//!   messages attribute its work;
//! * it gets a **fixed large stack** ([`DEDICATED_STACK_BYTES`]): the serve batch
//!   worker runs packed Q-network forward passes whose autograd graphs recurse, and a
//!   dedicated thread must not depend on the platform's default-stack lottery;
//! * it is the **anchor for processor affinity**: `std` exposes no pinning API and the
//!   offline container has no `libc` crate, so true core pinning is not available here —
//!   but because the batch worker is one long-lived named thread (rather than work
//!   hopping across a pool), the OS scheduler already keeps it cache-warm on one core,
//!   and an operator can pin it externally (`taskset -p`) by name.
//!
//! The spawned closure still owns its data (`'static` + `Send`); communicate with the
//! thread through channels and collect its final value through the returned
//! [`JoinHandle`]. A dedicated thread is **not** a pool worker, so nested
//! [`ThreadPool`] calls made inside it parallelise as usual — the serve batch worker
//! hands its pool to the policy so one micro-batch forward pass can itself shard
//! across cores. (Only calls made from *inside a pool shard* run inline; see the
//! [crate docs](crate), "Nesting".)
//!
//! [`ThreadPool`]: crate::ThreadPool

use std::thread::JoinHandle;

/// Stack reserved for dedicated workers (16 MiB — deep autograd graphs plus headroom).
pub const DEDICATED_STACK_BYTES: usize = 16 * 1024 * 1024;

/// Spawns a named, large-stack, long-lived worker thread running `f` to completion.
///
/// The thread is named `crowd-<name>`; names longer than the platform limit (15 bytes
/// on Linux) are truncated by the OS, so keep `name` short. Returns the ordinary
/// [`JoinHandle`]; a panic inside `f` surfaces at `join` exactly like
/// [`std::thread::spawn`].
///
/// # Errors
///
/// Propagates the OS error when the thread cannot be created (resource exhaustion).
///
/// # Examples
///
/// ```
/// let handle = crowd_parallel::spawn_dedicated("doc-worker", || 6 * 7).unwrap();
/// assert_eq!(handle.join().unwrap(), 42);
/// ```
pub fn spawn_dedicated<T, F>(name: &str, f: F) -> std::io::Result<JoinHandle<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("crowd-{name}"))
        .stack_size(DEDICATED_STACK_BYTES)
        .spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_named_and_returns_its_value() {
        let handle = spawn_dedicated("test-w", || {
            std::thread::current().name().map(str::to_string)
        })
        .unwrap();
        let name = handle.join().unwrap();
        assert_eq!(name.as_deref(), Some("crowd-test-w"));
    }

    #[test]
    fn worker_panic_surfaces_at_join() {
        let handle = spawn_dedicated("test-p", || panic!("boom")).unwrap();
        assert!(handle.join().is_err());
    }

    #[test]
    fn nested_pool_calls_work_inside_a_dedicated_thread() {
        let handle = spawn_dedicated("test-n", || {
            let pool = crate::ThreadPool::new(3);
            let mut xs = [1u64, 2, 3, 4, 5];
            let sums = pool.par_chunks(&mut xs, 1, |_off, chunk| chunk.iter().sum::<u64>());
            sums.iter().sum::<u64>()
        })
        .unwrap();
        assert_eq!(handle.join().unwrap(), 15);
    }
}
