//! Deterministic multi-threaded execution for the crowd-RL workspace: a persistent
//! worker pool behind a [`ThreadPool::par_chunks`] / [`ThreadPool::par_join`] surface.
//!
//! # Design
//!
//! The build environment is offline, so no external thread-pool crate (rayon, crossbeam)
//! is available; everything here is `std`. A [`ThreadPool`] is a *handle*, not a set of
//! OS threads: it is just a thread count, and every parallel call dispatches through the
//! process-wide [`PersistentPool`] — long-lived parked workers fed closures over
//! channels (see the [`persistent`] module for the full design). A call shards the work,
//! runs the first shard on the calling thread, sends the tail shards to parked workers,
//! and blocks on a completion latch before returning. That keeps the pool
//!
//! * **scoped** — shard closures borrow the caller's data; the dispatch layer erases the
//!   lifetime to cross the worker channels, which is sound because every call waits for
//!   all of its shards before returning (the `thread::scope` guarantee, without the
//!   per-call spawns — see [`PersistentPool::scoped_run`]);
//! * **panic-correct** — every shard runs to completion, then a shard panic is re-raised
//!   on the calling thread (caller's shard first, then lowest shard index), and the
//!   workers themselves survive, so a panic inside a shard propagates exactly like a
//!   panic in a serial loop and the pool stays usable (tested below);
//! * **cheap to thread through APIs** — the handle is `Copy` (it is just a thread count),
//!   so layers pass it by value without lifetime plumbing.
//!
//! Workers spawn lazily on first use and are then reused warm: a parallel call costs a
//! channel send and a wake per tail shard (single-digit microseconds), not a
//! `thread::spawn`/join per worker (tens of microseconds). Callers still parallelise
//! *chunky* work — a round of session stepping, one large stacked matmul, one gradient
//! update per branch, a deep batch of per-shard platform events
//! (`crowd-sim::ShardedEnv`), or a `SessionBatch` round's env-only advance — and the
//! tensor layer gates its row-sharded kernels on a minimum work size so small matrices
//! never pay even a dispatch (see `crowd-tensor`'s `matmul_par`).
//!
//! **Nesting**: a `par_*` call made from *inside* a shard (i.e. on a pool worker) runs
//! its shards inline on that worker, in shard order — bit-identical by the serial/
//! parallel contract, and immune to pool-saturation deadlock. Threads created with
//! [`spawn_dedicated`] are not pool workers; their `par_*` calls parallelise normally.
//!
//! # Determinism
//!
//! Parallelism in this workspace is **deterministic by construction**, never by locking:
//! work is sharded so that every unit owns its inputs and outputs (a session owns its
//! policy and RNG, a matmul shard owns its output rows, a learner owns its replay memory
//! and sampling RNG), so results are bit-identical at any thread count. The pool supports
//! that discipline by only offering *structured* parallelism over disjoint data:
//!
//! * [`ThreadPool::par_chunks`] splits one mutable slice into contiguous shards whose
//!   boundaries depend only on the length, the granule and the thread count — never on
//!   timing — and returns the per-shard results in shard order;
//! * [`ThreadPool::par_join`] runs two independent closures and returns both results in
//!   argument order.
//!
//! There is no work stealing, no shared queue, and no unordered reduction anywhere.
//!
//! ```
//! use crowd_parallel::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let mut xs = [1u64, 2, 3, 4, 5, 6, 7];
//! // Each shard doubles its elements and reports its own sum: deterministic shards,
//! // deterministic per-shard results, in shard order.
//! let sums = pool.par_chunks(&mut xs, 1, |_offset, chunk| {
//!     chunk.iter_mut().for_each(|x| *x *= 2);
//!     chunk.iter().sum::<u64>()
//! });
//! assert_eq!(xs, [2, 4, 6, 8, 10, 12, 14]);
//! assert_eq!(sums.iter().sum::<u64>(), 56);
//!
//! let (a, b) = pool.par_join(|| 2 + 2, || "both".len());
//! assert_eq!((a, b), (4, 4));
//! ```

pub mod dedicated;
pub mod persistent;

pub use dedicated::{spawn_dedicated, DEDICATED_STACK_BYTES};
pub use persistent::PersistentPool;

use std::num::NonZeroUsize;

/// A deterministic worker-pool handle over the process-wide [`PersistentPool`].
///
/// See the [crate docs](crate) for the design; the handle itself is just a thread count
/// and is `Copy`, so it can be threaded by value from the session layer down to the
/// tensor kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: NonZeroUsize,
}

impl Default for ThreadPool {
    /// The default pool is serial — parallelism is always opt-in.
    fn default() -> Self {
        ThreadPool::serial()
    }
}

impl ThreadPool {
    /// A pool running `threads` workers per parallel call. `threads == 0` is clamped to 1.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: NonZeroUsize::new(threads.max(1)).expect("clamped to at least 1"),
        }
    }

    /// The serial pool: every `par_*` call degenerates to an inline loop on the calling
    /// thread, with no scope opened and no thread spawned.
    pub fn serial() -> Self {
        ThreadPool::new(1)
    }

    /// A pool sized to the machine's available parallelism (1 when it cannot be queried).
    pub fn available() -> Self {
        ThreadPool::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// A pool sized from the `CROWD_THREADS` environment variable, falling back to
    /// [`ThreadPool::available`] when the variable is unset or unparseable. This is the
    /// standard way the experiment binaries, the examples and CI pick their thread count.
    pub fn from_env() -> Self {
        match std::env::var("CROWD_THREADS") {
            Ok(value) => Self::parse(&value).unwrap_or_else(Self::available),
            Err(_) => Self::available(),
        }
    }

    /// Parses a thread-count string (`"4"` → 4 workers); `None` when unparseable or zero.
    pub fn parse(value: &str) -> Option<Self> {
        value
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .map(ThreadPool::new)
    }

    /// Number of workers a parallel call may use (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// True when every `par_*` call runs inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads.get() == 1
    }

    /// Deterministic shard boundaries: splits `len` elements — in whole multiples of
    /// `granule` — into at most [`ThreadPool::threads`] contiguous, near-equal ranges.
    /// Boundaries depend only on `(len, granule, threads)`, never on timing. `granule`
    /// is clamped to at least 1; a `len` that is not a multiple of `granule` puts the
    /// remainder in the last shard.
    fn shard_bounds(&self, len: usize, granule: usize) -> Vec<(usize, usize)> {
        let granule = granule.max(1);
        let units = len / granule;
        let shards = self.threads().min(units.max(if len > 0 { 1 } else { 0 }));
        let mut bounds = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let end_unit = units * (s + 1) / shards;
            // The last shard absorbs the sub-granule remainder.
            let end = if s + 1 == shards {
                len
            } else {
                end_unit * granule
            };
            if end > start {
                bounds.push((start, end));
                start = end;
            }
        }
        if start < len {
            // All-units-in-zero-shards corner (len < granule): one shard takes everything.
            bounds.push((start, len));
        }
        bounds
    }

    /// Splits `items` into at most [`ThreadPool::threads`] contiguous shards — each a
    /// whole multiple of `granule` elements (the last shard absorbs any remainder) — and
    /// runs `f(offset, shard)` on every shard in parallel, where `offset` is the index of
    /// the shard's first element within `items`. Returns the per-shard results **in shard
    /// order**.
    ///
    /// Shard boundaries are a pure function of `(items.len(), granule, threads)`, so a
    /// deterministic `f` makes the whole call deterministic; and because the shards are
    /// disjoint `&mut` sub-slices, `f` needs no synchronisation. Zero items run nothing;
    /// a single shard (serial pool, or fewer granules than threads would each get one)
    /// runs inline on the calling thread without touching the pool; a call from inside a
    /// pool worker runs every shard inline in shard order (see the [crate docs](crate),
    /// "Nesting").
    ///
    /// # Panics
    ///
    /// A panic inside any shard is re-raised on the calling thread after every shard has
    /// completed (the [`PersistentPool::scoped_run`] contract, matching what
    /// `std::thread::scope` guaranteed), so it propagates exactly like a panic in the
    /// equivalent serial loop and the pool stays usable afterwards.
    pub fn par_chunks<T, R, F>(&self, items: &mut [T], granule: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut [T]) -> R + Sync,
    {
        let bounds = self.shard_bounds(items.len(), granule);
        if bounds.is_empty() {
            return Vec::new();
        }
        if bounds.len() == 1 {
            return vec![f(0, items)];
        }
        // Split into disjoint &mut shards up front (pure slice arithmetic, no threads).
        let mut shards: Vec<(usize, &mut [T])> = Vec::with_capacity(bounds.len());
        let mut rest = items;
        let mut consumed = 0;
        for &(start, end) in &bounds {
            let (head, tail) = rest.split_at_mut(end - consumed);
            debug_assert_eq!(consumed, start);
            shards.push((start, head));
            rest = tail;
            consumed = end;
        }
        if persistent::on_worker_thread() {
            // Nested call from inside a pool job: same shards, run inline in shard
            // order — bit-identical and saturation-proof (crate docs, "Nesting").
            return shards
                .into_iter()
                .map(|(offset, chunk)| f(offset, chunk))
                .collect();
        }
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(bounds.len(), || None);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = shards
            .into_iter()
            .zip(slots.iter_mut())
            .map(|((offset, chunk), slot)| -> Box<dyn FnOnce() + Send + '_> {
                Box::new(move || *slot = Some(f(offset, chunk)))
            })
            .collect();
        PersistentPool::global().scoped_run(tasks);
        slots
            .into_iter()
            .map(|slot| slot.expect("scoped_run completed every shard"))
            .collect()
    }

    /// Runs `a` and `b` in parallel (on the calling thread and one pool worker) and
    /// returns `(a(), b())`. On a serial pool — or when called from inside a pool
    /// worker (see the [crate docs](crate), "Nesting") — they run back to back, `a`
    /// first: the same order a sequential caller would use, so serial and parallel
    /// execution differ only in wall clock, never in which closure runs.
    ///
    /// # Panics
    ///
    /// A panic in either closure is re-raised on the calling thread after both sides
    /// have completed; when both panic, `a`'s panic wins (it ran on the caller).
    pub fn par_join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
    {
        if self.is_serial() || persistent::on_worker_thread() {
            let ra = a();
            let rb = b();
            (ra, rb)
        } else {
            let (mut ra, mut rb) = (None, None);
            {
                let (ra, rb) = (&mut ra, &mut rb);
                PersistentPool::global().scoped_run(vec![
                    Box::new(move || *ra = Some(a())),
                    Box::new(move || *rb = Some(b())),
                ]);
            }
            (
                ra.expect("scoped_run completed the caller side"),
                rb.expect("scoped_run completed the worker side"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_clamped_and_reported() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::new(8).threads(), 8);
        assert!(ThreadPool::serial().is_serial());
        assert!(!ThreadPool::new(2).is_serial());
        assert!(ThreadPool::available().threads() >= 1);
        assert_eq!(ThreadPool::default(), ThreadPool::serial());
    }

    #[test]
    fn parse_accepts_positive_integers_only() {
        assert_eq!(ThreadPool::parse("4"), Some(ThreadPool::new(4)));
        assert_eq!(ThreadPool::parse(" 2 "), Some(ThreadPool::new(2)));
        assert_eq!(ThreadPool::parse("0"), None);
        assert_eq!(ThreadPool::parse("-1"), None);
        assert_eq!(ThreadPool::parse("many"), None);
        assert_eq!(ThreadPool::parse(""), None);
    }

    #[test]
    fn shard_bounds_are_deterministic_and_cover_everything() {
        for threads in [1usize, 2, 3, 8, 16] {
            let pool = ThreadPool::new(threads);
            for len in [0usize, 1, 2, 7, 16, 100] {
                for granule in [1usize, 3, 5] {
                    let bounds = pool.shard_bounds(len, granule);
                    assert_eq!(bounds, pool.shard_bounds(len, granule), "non-deterministic");
                    // Contiguous cover of 0..len with at most `threads` shards.
                    assert!(bounds.len() <= threads.max(1));
                    let mut expected_start = 0;
                    for &(start, end) in &bounds {
                        assert_eq!(start, expected_start);
                        assert!(end > start);
                        expected_start = end;
                    }
                    assert_eq!(expected_start, len);
                    // Every boundary except the last is granule-aligned.
                    for &(_, end) in bounds.iter().rev().skip(1) {
                        assert_eq!(end % granule, 0, "len {len} granule {granule}");
                    }
                }
            }
        }
    }

    #[test]
    fn par_chunks_on_zero_items_runs_nothing() {
        let pool = ThreadPool::new(4);
        let mut empty: [u32; 0] = [];
        let results: Vec<u32> = pool.par_chunks(&mut empty, 1, |_, chunk| {
            assert!(!chunk.is_empty(), "must not be called on empty input");
            0
        });
        assert!(results.is_empty());
    }

    #[test]
    fn par_chunks_on_one_item_runs_inline() {
        let pool = ThreadPool::new(8);
        let caller = std::thread::current().id();
        let mut one = [41u32];
        let results = pool.par_chunks(&mut one, 1, |offset, chunk| {
            chunk[0] += 1;
            // A single shard must not pay a thread spawn.
            assert_eq!(std::thread::current().id(), caller);
            offset
        });
        assert_eq!(one, [42]);
        assert_eq!(results, vec![0]);
    }

    #[test]
    fn par_chunks_with_more_threads_than_items_gives_each_item_a_shard() {
        let pool = ThreadPool::new(16);
        let mut items = [0u32; 5];
        let results = pool.par_chunks(&mut items, 1, |offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (offset + i) as u32 * 10;
            }
            chunk.len()
        });
        assert_eq!(items, [0, 10, 20, 30, 40]);
        assert_eq!(results.len(), 5, "one shard per item, not per thread");
        assert!(results.iter().all(|&n| n == 1));
    }

    #[test]
    fn par_chunks_results_come_back_in_shard_order() {
        let pool = ThreadPool::new(4);
        let mut items: Vec<usize> = (0..23).collect();
        let offsets = pool.par_chunks(&mut items, 1, |offset, chunk| {
            // Each shard sees exactly its own contiguous window.
            for (i, &x) in chunk.iter().enumerate() {
                assert_eq!(x, offset + i);
            }
            offset
        });
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted, "results must be in shard order");
        assert_eq!(offsets[0], 0);
    }

    #[test]
    fn par_chunks_respects_the_granule() {
        let pool = ThreadPool::new(3);
        // 10 rows of width 4; shards must never split a row.
        let mut flat = vec![0f32; 40];
        pool.par_chunks(&mut flat, 4, |offset, chunk| {
            assert_eq!(offset % 4, 0, "shard start must be row-aligned");
            let row0 = offset / 4;
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (row0 + i / 4) as f32;
            }
        });
        for row in 0..10 {
            for col in 0..4 {
                assert_eq!(flat[row * 4 + col], row as f32);
            }
        }
    }

    #[test]
    fn par_chunks_propagates_a_worker_panic() {
        let pool = ThreadPool::new(4);
        let mut items = [0u8; 16];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_chunks(&mut items, 1, |offset, _chunk| {
                if offset > 0 {
                    panic!("worker shard failed");
                }
            });
        }));
        assert!(result.is_err(), "a worker panic must reach the caller");
        // The handle is stateless, so the pool stays usable after a propagated panic.
        let mut after = [1u32, 2, 3];
        let sums = pool.par_chunks(&mut after, 1, |_, c| c.iter().sum::<u32>());
        assert_eq!(sums.iter().sum::<u32>(), 6);
    }

    #[test]
    fn par_join_returns_both_results_in_argument_order() {
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let (a, b) = pool.par_join(|| "left".to_string(), || 7u64);
            assert_eq!(a, "left");
            assert_eq!(b, 7);
        }
    }

    #[test]
    fn par_join_propagates_panics_from_either_side() {
        let pool = ThreadPool::new(2);
        let spawned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_join(|| 1, || -> u32 { panic!("spawned side failed") })
        }));
        assert!(spawned.is_err());
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.par_join(|| -> u32 { panic!("caller side failed") }, || 1)
        }));
        assert!(caller.is_err());
    }

    #[test]
    fn from_env_selects_the_width_via_crowd_threads() {
        // The only test in the workspace that mutates CROWD_THREADS in-process (CI sets
        // it per job instead), so there is no racing reader.
        std::env::set_var("CROWD_THREADS", "3");
        assert_eq!(ThreadPool::from_env().threads(), 3);
        std::env::set_var("CROWD_THREADS", "not-a-number");
        assert_eq!(ThreadPool::from_env(), ThreadPool::available());
        std::env::remove_var("CROWD_THREADS");
        assert_eq!(ThreadPool::from_env(), ThreadPool::available());
    }

    #[test]
    fn repeated_par_chunks_calls_reuse_warm_global_workers() {
        let pool = ThreadPool::new(4);
        let mut items = vec![0u64; 64];
        pool.par_chunks(&mut items, 1, |offset, chunk| {
            chunk.iter_mut().for_each(|x| *x += offset as u64)
        });
        // Other tests share the global pool, so the only stable claim is an upper
        // bound: many repeat dispatches must not keep spawning threads.
        let after_warmup = PersistentPool::global().workers_spawned();
        for _ in 0..32 {
            pool.par_chunks(&mut items, 1, |offset, chunk| {
                chunk.iter_mut().for_each(|x| *x += offset as u64)
            });
        }
        let after_reuse = PersistentPool::global().workers_spawned();
        // Concurrent tests may legitimately grow the pool a little; 32 dispatches of
        // width 4 would have spawned ~96 workers under a spawn-per-call design.
        assert!(
            after_reuse <= after_warmup + 8,
            "warm dispatches must reuse parked workers ({after_warmup} -> {after_reuse})"
        );
    }

    #[test]
    fn nested_par_join_inside_par_chunks_runs_inline_on_workers() {
        let pool = ThreadPool::new(4);
        let mut items: Vec<u64> = (0..16).collect();
        let sums = pool.par_chunks(&mut items, 1, |offset, chunk| {
            let me = std::thread::current().id();
            let on_worker = persistent::on_worker_thread();
            let (left, right) = pool.par_join(
                || (std::thread::current().id(), chunk.iter().sum::<u64>()),
                || (std::thread::current().id(), offset as u64),
            );
            if on_worker {
                // Documented nesting contract: on a pool worker, nested calls stay
                // on that worker instead of re-entering the pool.
                assert_eq!(left.0, me);
                assert_eq!(right.0, me);
            }
            left.1 + right.1
        });
        // 4 deterministic shards of 4 items: item total (0+..+15 = 120) plus the
        // shard offsets (0 + 4 + 8 + 12 = 24).
        assert_eq!(sums.iter().sum::<u64>(), 144);
    }

    #[test]
    fn nested_par_chunks_inside_par_chunks_matches_the_serial_result() {
        let serial: Vec<u64> = (0..48).map(|v| v * 3 + 1).collect();
        let pool = ThreadPool::new(4);
        let mut items: Vec<u64> = (0..48).collect();
        pool.par_chunks(&mut items, 1, |offset, chunk| {
            // A second level of sharding over this shard's own data.
            pool.par_chunks(chunk, 1, |inner_offset, inner| {
                for (i, x) in inner.iter_mut().enumerate() {
                    let v = (offset + inner_offset + i) as u64;
                    *x = v * 3 + 1;
                }
            });
        });
        assert_eq!(items, serial);
    }

    #[test]
    fn par_chunks_mutations_match_the_serial_loop_at_any_thread_count() {
        let serial: Vec<u64> = (0..97).map(|x| x * x + 1).collect();
        for threads in [1usize, 2, 5, 8, 32] {
            let pool = ThreadPool::new(threads);
            let mut items: Vec<u64> = (0..97).collect();
            pool.par_chunks(&mut items, 1, |offset, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    let v = (offset + i) as u64;
                    *x = v * v + 1;
                }
            });
            assert_eq!(items, serial, "threads = {threads}");
        }
    }
}
