//! The persistent worker pool behind [`ThreadPool`](crate::ThreadPool): long-lived
//! parked threads fed lifetime-erased closures through per-worker channels, replacing
//! the per-call `std::thread::scope` spawns of earlier revisions.
//!
//! # Why persistent
//!
//! A scoped pool pays one `thread::spawn` + join per worker per parallel call — tens of
//! microseconds that dominate a `crowd-serve` micro-batch round or a single packed
//! matmul. A [`PersistentPool`] spawns each worker **once** (via
//! [`spawn_dedicated`](crate::spawn_dedicated): named, 16 MiB stack) and parks it on an
//! [`mpsc`](std::sync::mpsc) channel of boxed jobs; a parallel call afterwards costs a
//! channel send and a futex wake, not a clone-and-spawn of an OS thread.
//!
//! # How scoped dispatch stays safe
//!
//! [`PersistentPool::scoped_run`] accepts closures that **borrow the caller's stack**
//! (`Box<dyn FnOnce() + Send + 'a>`) and transmutes them to `'static` to fit through
//! the worker channels. The erasure is sound because `scoped_run` *always* blocks on a
//! completion latch before returning — even when a task panics (each job runs under
//! [`catch_unwind`] and reports its payload through the latch; the caller's own task is
//! caught the same way so the wait cannot be skipped by an unwind). No borrowed data
//! can therefore outlive the call frame that owns it, which is exactly the
//! `std::thread::scope` guarantee without the per-call spawns.
//!
//! # Semantics preserved from the scoped design
//!
//! * **Caller runs the first task inline** while workers chew on the tail, so a
//!   single-task call never touches a channel and the calling thread is never idle.
//! * **Panic propagation**: a panic in any task is re-raised on the calling thread
//!   after *every* task has finished — the caller's own task takes precedence, then
//!   the lowest-indexed panicking tail task — matching the old `thread::scope` joins.
//!   Workers survive job panics (the payload travels through the latch, not the
//!   thread), so the pool stays fully usable afterwards.
//! * **Determinism**: the pool only moves closures to threads; *which* worker runs a
//!   task can vary, but tasks own disjoint data and report results positionally, so
//!   results are bit-identical no matter how checkout and round-robin land.
//!
//! # Nesting
//!
//! Worker threads are flagged ([`on_worker_thread`]); a
//! [`ThreadPool`](crate::ThreadPool) call made *from inside a pool job* (e.g. a
//! session shard stepping a policy whose matmul is itself parallel) runs its shards
//! inline on that worker instead of re-entering the pool. Waiting on nested dispatch
//! from within a worker could deadlock a saturated pool; inline nested execution is
//! bit-identical anyway (that is the whole serial/parallel contract), so nesting
//! *works* — it just doesn't multiply threads. Dedicated threads
//! ([`spawn_dedicated`](crate::spawn_dedicated)) are not pool workers; pool calls made
//! from them parallelise normally.
//!
//! # Shutdown
//!
//! The process-wide pool ([`PersistentPool::global`]) lives for the whole process —
//! its parked workers cost a few KiB of resident stack each and die with the process.
//! An *owned* pool (unit tests, embedders) joins every worker on drop: dropping the
//! job senders ends each worker's receive loop, and `Drop` then joins the handles, so
//! no worker outlives the pool object. Dropping a pool while another thread still has
//! a `scoped_run` in flight blocks until that call completes.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A lifetime-erased job as it travels through a worker channel.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A panic payload carried from a worker back to the dispatching caller.
type Payload = Box<dyn Any + Send + 'static>;

/// Upper bound on workers the process-wide pool will ever spawn. A dispatch that wants
/// more parallelism than this (e.g. a 300-thread [`ThreadPool`](crate::ThreadPool)
/// handle over hundreds of shards) still completes every shard — excess tail tasks
/// queue round-robin on the existing workers — it just tops out at this much real
/// concurrency.
const GLOBAL_MAX_WORKERS: usize = 256;

thread_local! {
    /// True on threads whose whole life is the pool's worker loop.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is a persistent-pool worker — used by
/// [`ThreadPool`](crate::ThreadPool) to run nested parallel calls inline (see the
/// [module docs](self), "Nesting").
pub fn on_worker_thread() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// Completion latch for one `scoped_run` dispatch: counts outstanding tail tasks and
/// collects panic payloads with their task indices.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panics: Vec<(usize, Payload)>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panics: Vec::new(),
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, index: usize, panic: Option<Payload>) {
        let mut st = self.state.lock().expect("latch lock");
        if let Some(payload) = panic {
            st.panics.push((index, payload));
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task has completed; returns the panic payload of the
    /// lowest-indexed panicking task, if any.
    fn wait(&self) -> Option<Payload> {
        let mut st = self.state.lock().expect("latch lock");
        while st.remaining > 0 {
            st = self.done.wait(st).expect("latch wait");
        }
        st.panics.sort_by_key(|&(index, _)| index);
        if st.panics.is_empty() {
            None
        } else {
            Some(st.panics.remove(0).1)
        }
    }
}

/// One parked worker's job inlet. Checked out of the free list for the duration of a
/// dispatch, so a worker never interleaves two callers' jobs.
struct WorkerChan {
    sender: Sender<Job>,
}

struct PoolState {
    /// Workers not currently serving a dispatch.
    free: Vec<WorkerChan>,
    /// Total workers ever spawned by this pool (free + checked out).
    spawned: usize,
    /// Join handles, collected by `Drop`.
    handles: Vec<JoinHandle<()>>,
}

/// A set of long-lived parked worker threads with scoped, panic-propagating dispatch.
///
/// Most code never touches this type directly: [`ThreadPool`](crate::ThreadPool)
/// routes `par_chunks`/`par_join` through the process-wide instance
/// ([`PersistentPool::global`]). Owned instances exist for lifecycle control and
/// lifecycle *tests* — an owned pool joins all of its workers on drop.
pub struct PersistentPool {
    state: Mutex<PoolState>,
    max_workers: usize,
    /// Workers currently inside their receive loop; shared with the worker threads so
    /// tests can observe that drop really joined everyone.
    live: Arc<AtomicUsize>,
}

impl std::fmt::Debug for PersistentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPool")
            .field("max_workers", &self.max_workers)
            .field("spawned", &self.workers_spawned())
            .finish()
    }
}

impl PersistentPool {
    /// A pool that will lazily spawn up to `max_workers` parked workers on demand.
    pub fn new(max_workers: usize) -> Self {
        PersistentPool {
            state: Mutex::new(PoolState {
                free: Vec::new(),
                spawned: 0,
                handles: Vec::new(),
            }),
            max_workers: max_workers.max(1),
            live: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The process-wide pool every [`ThreadPool`](crate::ThreadPool) call dispatches
    /// through. Created on first use; its workers spawn lazily as parallel calls
    /// demand them and stay parked (never joined) for the life of the process.
    pub fn global() -> &'static PersistentPool {
        static GLOBAL: OnceLock<PersistentPool> = OnceLock::new();
        GLOBAL.get_or_init(|| PersistentPool::new(GLOBAL_MAX_WORKERS))
    }

    /// Workers this pool has spawned so far (parked or busy). Warm reuse means this
    /// stops growing once the pool has seen its widest dispatch.
    pub fn workers_spawned(&self) -> usize {
        self.state.lock().expect("pool lock").spawned
    }

    /// Workers currently inside their receive loop.
    pub fn live_workers(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Checks out up to `want` parked workers, lazily spawning while under
    /// `max_workers`. May return fewer (even zero) when the pool is saturated by
    /// concurrent dispatches or thread creation fails — callers must tolerate that by
    /// queueing more jobs per worker or running jobs inline.
    fn checkout(&self, want: usize) -> Vec<WorkerChan> {
        let mut st = self.state.lock().expect("pool lock");
        let mut out = Vec::with_capacity(want.min(self.max_workers));
        while out.len() < want {
            if let Some(worker) = st.free.pop() {
                out.push(worker);
            } else if st.spawned < self.max_workers {
                let (sender, receiver) = channel::<Job>();
                let name = format!("pool-{}", st.spawned);
                let live = Arc::clone(&self.live);
                match crate::spawn_dedicated(&name, move || {
                    IS_POOL_WORKER.with(|flag| flag.set(true));
                    live.fetch_add(1, Ordering::SeqCst);
                    // Jobs arrive pre-wrapped in catch_unwind, so the loop only ends
                    // when every sender is gone (pool drop).
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                    live.fetch_sub(1, Ordering::SeqCst);
                }) {
                    Ok(handle) => {
                        st.spawned += 1;
                        st.handles.push(handle);
                        out.push(WorkerChan { sender });
                    }
                    // Spawn failure (resource exhaustion): make do with what we have.
                    Err(_) => break,
                }
            } else {
                break;
            }
        }
        out
    }

    fn check_in(&self, workers: Vec<WorkerChan>) {
        self.state.lock().expect("pool lock").free.extend(workers);
    }

    /// Runs every task to completion, the first on the calling thread and the rest on
    /// checked-out workers (round-robin when the pool cannot supply one worker per
    /// task). Returns only after all tasks finished; a panic in any task is then
    /// re-raised on the caller (caller's task first, then lowest task index). Tasks may
    /// borrow the caller's stack — see the [module docs](self) for why the internal
    /// `'static` erasure is sound.
    pub fn scoped_run<'a>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        let mut tasks = tasks.into_iter();
        let Some(first) = tasks.next() else { return };
        let tail: Vec<_> = tasks.collect();
        if tail.is_empty() {
            return first();
        }
        let latch = Arc::new(Latch::new(tail.len()));
        let workers = self.checkout(tail.len());
        let mut jobs: Vec<Job> = Vec::with_capacity(tail.len());
        for (index, task) in tail.into_iter().enumerate() {
            // SAFETY: the job cannot outlive this call frame — `scoped_run` waits on
            // the latch below before returning on every path (including panics, which
            // are caught here and re-raised only after the wait), and each job signals
            // the latch after its closure finished or unwound.
            let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
            let latch = Arc::clone(&latch);
            jobs.push(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                latch.complete(index, result.err());
            }));
        }
        if workers.is_empty() {
            // Saturated pool (or spawn failure): run the tail inline. Same results,
            // same order guarantees, no parallelism.
            for job in jobs {
                job();
            }
        } else {
            for (i, job) in jobs.into_iter().enumerate() {
                workers[i % workers.len()]
                    .sender
                    .send(job)
                    .expect("persistent pool worker exited while checked out");
            }
        }
        let caller_result = catch_unwind(AssertUnwindSafe(first));
        let tail_panic = latch.wait();
        self.check_in(workers);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = tail_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for PersistentPool {
    /// Joins every worker: dropping the free-list senders ends each worker's receive
    /// loop. All workers must be checked in (no dispatch in flight) — concurrent
    /// `scoped_run` calls hold their workers' senders, and this join blocks until they
    /// return them by finishing.
    fn drop(&mut self) {
        let mut st = self.state.lock().expect("pool lock");
        st.free.clear();
        for handle in st.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn scoped_run_runs_every_task_and_borrows_the_stack() {
        let pool = PersistentPool::new(3);
        let mut cells = [0u32; 7];
        {
            let tasks = cells
                .iter_mut()
                .enumerate()
                .map(|(i, cell)| boxed(move || *cell = i as u32 + 1))
                .collect();
            pool.scoped_run(tasks);
        }
        assert_eq!(cells, [1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn workers_are_spawned_once_and_reused_warm() {
        let pool = PersistentPool::new(4);
        assert_eq!(pool.workers_spawned(), 0, "workers spawn lazily");
        let run = |pool: &PersistentPool| {
            let counter = AtomicU32::new(0);
            let tasks = (0..5)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            pool.scoped_run(tasks);
            assert_eq!(counter.load(Ordering::SeqCst), 5);
        };
        run(&pool);
        let after_first = pool.workers_spawned();
        assert!((1..=4).contains(&after_first));
        for _ in 0..10 {
            run(&pool);
        }
        assert_eq!(
            pool.workers_spawned(),
            after_first,
            "repeat dispatches must reuse the parked workers, not spawn"
        );
    }

    #[test]
    fn tail_task_panic_propagates_and_the_pool_stays_usable() {
        let pool = PersistentPool::new(2);
        let completed = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped_run(vec![
                boxed(|| {
                    completed.fetch_add(1, Ordering::SeqCst);
                }),
                boxed(|| panic!("tail task failed")),
                boxed(|| {
                    completed.fetch_add(1, Ordering::SeqCst);
                }),
            ]);
        }));
        assert!(result.is_err(), "the tail panic must reach the caller");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            2,
            "non-panicking tasks still ran to completion"
        );
        let spawned = pool.workers_spawned();
        // The worker survived the panic: the next dispatch reuses it and works.
        let ok = AtomicU32::new(0);
        pool.scoped_run(vec![
            boxed(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            }),
            boxed(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            }),
        ]);
        assert_eq!(ok.load(Ordering::SeqCst), 2);
        assert_eq!(pool.workers_spawned(), spawned, "no replacement spawns");
    }

    #[test]
    fn caller_task_panic_wins_over_tail_panics() {
        let pool = PersistentPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped_run(vec![
                boxed(|| panic!("caller task failed")),
                boxed(|| panic!("tail task failed")),
            ]);
        }));
        let payload = result.expect_err("must panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload is the literal");
        assert_eq!(message, "caller task failed");
    }

    #[test]
    fn drop_joins_every_worker() {
        let pool = PersistentPool::new(3);
        pool.scoped_run((0..6).map(|_| boxed(|| {})).collect());
        assert!(pool.workers_spawned() >= 1);
        let live = Arc::clone(&pool.live);
        drop(pool);
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "drop must join all workers, leaving none live"
        );
    }

    #[test]
    fn oversubscribed_dispatch_round_robins_on_a_small_pool() {
        let pool = PersistentPool::new(2);
        let counter = AtomicU32::new(0);
        // 40 tasks through at most 2 workers + the caller.
        let tasks = (0..40)
            .map(|_| {
                boxed(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.scoped_run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 40);
        assert!(pool.workers_spawned() <= 2);
    }

    #[test]
    fn empty_and_single_task_dispatches_stay_inline() {
        let pool = PersistentPool::new(4);
        pool.scoped_run(Vec::new());
        let caller = std::thread::current().id();
        let mut ran_on = None;
        pool.scoped_run(vec![boxed(|| ran_on = Some(std::thread::current().id()))]);
        assert_eq!(ran_on, Some(caller), "a single task must not pay a channel");
        assert_eq!(pool.workers_spawned(), 0);
    }

    #[test]
    fn worker_threads_are_flagged_and_the_caller_is_not() {
        assert!(!on_worker_thread());
        let pool = PersistentPool::new(2);
        let (flag_caller, flag_worker) = (AtomicU32::new(9), AtomicU32::new(9));
        pool.scoped_run(vec![
            boxed(|| flag_caller.store(on_worker_thread() as u32, Ordering::SeqCst)),
            boxed(|| flag_worker.store(on_worker_thread() as u32, Ordering::SeqCst)),
        ]);
        assert_eq!(flag_caller.load(Ordering::SeqCst), 0);
        assert_eq!(flag_worker.load(Ordering::SeqCst), 1);
    }
}
