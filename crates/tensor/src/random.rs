//! Deterministic random number generation and the handful of distributions the simulator and
//! network initialisers need (uniform, normal, Beta, categorical, exponential, geometric-like
//! histogram sampling).
//!
//! Everything in the workspace threads a single [`Rng`] seeded from a `u64`, so every
//! experiment, test and benchmark is reproducible bit-for-bit on the same toolchain.

/// A self-contained xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
///
/// The build environment has no network access, so the `rand` crate is not available; this
/// generator is small, fast, and statistically strong enough for simulation workloads. It is
/// NOT cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256pp { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Workspace-wide random number generator.
///
/// Wraps a self-contained xoshiro256++ core and adds the distribution helpers the paper's
/// simulator needs (normal via Box–Muller, Beta via Marsaglia–Tsang Gamma sampling,
/// categorical sampling from unnormalised weights), keeping the workspace dependency-free.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: Xoshiro256pp,
    /// Cached second value from Box–Muller so consecutive normal draws cost one transform.
    cached_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256pp::seed_from_u64(seed),
            cached_normal: None,
        }
    }

    /// Derives an independent child generator; useful to give components their own streams
    /// while keeping a single top-level seed.
    pub fn fork(&mut self) -> Rng {
        let seed = self.inner.next_u64();
        Rng::seed_from(seed)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f32 {
        // 24 high-quality mantissa bits → uniform in [0, 1).
        (self.inner.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            // Widening-multiply rejection-free mapping (Lemire); bias is negligible for the
            // simulation-sized `n` used here.
            (((self.inner.next_u64() as u128) * (n as u128)) >> 64) as usize
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo)
        }
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit() < p
    }

    /// Standard normal draw scaled to `mean` and `std`, using Box–Muller with caching.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        if let Some(z) = self.cached_normal.take() {
            return mean + std * z;
        }
        // Box–Muller transform.
        let mut u1 = self.unit();
        if u1 < 1e-12 {
            u1 = 1e-12;
        }
        let u2 = self.unit();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        let z0 = radius * theta.cos();
        let z1 = radius * theta.sin();
        self.cached_normal = Some(z1);
        mean + std * z0
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f32) -> f32 {
        let mut u = self.unit();
        if u < 1e-12 {
            u = 1e-12;
        }
        -u.ln() / rate.max(1e-12)
    }

    /// Gamma draw with shape `alpha > 0` and scale 1, via Marsaglia–Tsang (with the
    /// boosting trick for `alpha < 1`).
    pub fn gamma(&mut self, alpha: f32) -> f32 {
        if alpha < 1.0 {
            // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
            let u = self.unit().max(1e-12);
            return self.gamma(alpha + 1.0) * u.powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal(0.0, 1.0);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.unit().max(1e-12);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }

    /// Beta(`a`, `b`) draw in `[0, 1]`, used for latent worker qualities.
    pub fn beta(&mut self, a: f32, b: f32) -> f32 {
        let x = self.gamma(a);
        let y = self.gamma(b);
        if x + y <= 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }

    /// Samples an index from unnormalised non-negative weights. Returns `None` when all
    /// weights are zero or the slice is empty.
    pub fn categorical(&mut self, weights: &[f32]) -> Option<usize> {
        let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 || weights.is_empty() {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        Some(weights.len() - 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices uniformly from `0..n` (or all of them when `k >= n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// Raw `u64`, exposed so callers can derive child seeds.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Checkpoint format: the four xoshiro256++ state words (`u64` each), then the cached
/// Box–Muller second draw as `Option<f32>` raw bits. Restoring both reproduces the
/// generator's future stream bit for bit — including a pending `normal` half-pair.
impl crowd_ckpt::SaveState for Rng {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        for word in self.inner.s {
            w.put_u64(word);
        }
        crowd_ckpt::SaveState::save_state(&self.cached_normal, w);
    }
}

impl crowd_ckpt::LoadState for Rng {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.take_u64()?;
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point of xoshiro256++ (the generator would
            // emit zeros forever); no reachable seeding produces it, so it is corruption.
            return Err(crowd_ckpt::CkptError::Corrupt {
                what: "rng state",
                detail: "all four xoshiro256++ state words are zero".to_string(),
            });
        }
        self.inner = Xoshiro256pp { s };
        self.cached_normal = r.decode()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_ckpt::{LoadState, SaveState, StateReader, StateWriter};

    #[test]
    fn checkpoint_roundtrip_resumes_the_exact_stream() {
        let mut original = Rng::seed_from(123);
        // Drain an odd number of normals so a cached Box–Muller half-pair is pending —
        // the roundtrip must preserve it or the streams diverge by one draw.
        for _ in 0..7 {
            original.normal(0.0, 1.0);
        }
        let mut w = StateWriter::new();
        original.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Rng::seed_from(0);
        let mut r = StateReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish("rng").unwrap();

        for _ in 0..64 {
            assert_eq!(
                original.normal(0.0, 1.0).to_bits(),
                restored.normal(0.0, 1.0).to_bits()
            );
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn all_zero_rng_state_is_rejected() {
        let mut w = StateWriter::new();
        for _ in 0..4 {
            w.put_u64(0);
        }
        w.put_bool(false);
        let bytes = w.into_bytes();
        let mut target = Rng::seed_from(1);
        assert!(target.load_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = Rng::seed_from(3);
        let mut b = Rng::seed_from(3);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = Rng::seed_from(3);
        let mut fork = a.fork();
        let xs: Vec<f32> = (0..16).map(|_| a.unit()).collect();
        let ys: Vec<f32> = (0..16).map(|_| fork.unit()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = Rng::seed_from(11);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn below_and_range() {
        let mut rng = Rng::seed_from(5);
        assert_eq!(rng.below(0), 0);
        for _ in 0..200 {
            assert!(rng.below(7) < 7);
            let r = rng.range(3, 9);
            assert!((3..9).contains(&r));
        }
        assert_eq!(rng.range(5, 5), 5);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(42);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal(1.5, 2.0)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 1.5).abs() < 0.1, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.3, "var was {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from(9);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn beta_stays_in_unit_interval_and_centers() {
        let mut rng = Rng::seed_from(13);
        let n = 10_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.beta(2.0, 2.0)).collect();
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let mean = xs.iter().sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = Rng::seed_from(17);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.gamma(3.0)).sum::<f32>() / n as f32;
        assert!((mean - 3.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Rng::seed_from(23);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.categorical(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f32 / counts[1] as f32;
        assert!((ratio - 3.0).abs() < 0.5, "ratio was {ratio}");
        assert!(rng.categorical(&[]).is_none());
        assert!(rng.categorical(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(31);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from(37);
        let s = rng.sample_indices(20, 8);
        assert_eq!(s.len(), 8);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 8);
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(41);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }
}
