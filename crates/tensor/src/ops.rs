//! Numeric operations on [`Matrix`].
//!
//! The hot path of the whole workspace is `matmul` inside the Q-network forward/backward
//! pass. Both product kernels ([`Matrix::matmul`] and [`Matrix::matmul_transpose`]) run
//! through one register-blocked, 8-lane unrolled microkernel (`lane_tile`; the
//! `n % LANES` lane-remainder columns go through the row-blocked `col_tile`) — the
//! build container is offline and on stable Rust, so the "vectors" are plain `[f32; 8]`
//! accumulator arrays the optimiser keeps in SIMD registers. Everything else is
//! straightforward element-wise or row-wise code with explicit shape checks.
//!
//! # The accumulation-order contract
//!
//! Every output element of every product kernel is computed as
//!
//! ```text
//! c[i][j] = (((0.0 + a[i][0]·b[0][j]) + a[i][1]·b[1][j]) + …)   // p in increasing order
//! ```
//!
//! a **sequential sum over the inner dimension `p`, in increasing order, one separate
//! multiply-then-add per step** (no FMA, no split partial sums, no zero-skipping).
//! Vectorisation happens only *across* output elements — each lane of a register tile is
//! the accumulator of one distinct `c[i][j]` — so blocking over `i`/`j` can never change
//! any element's bits. This is the one accumulation order the whole workspace's
//! bit-identity story (parallel-, checkpoint-, batched- and serve-equivalence) rests on:
//!
//! * the row-sharded `_par` twins are bit-identical because shard boundaries only decide
//!   *which thread* computes an element, never the order of its sum;
//! * the retained scalar references [`Matrix::matmul_ref`] / [`Matrix::matmul_transpose_ref`]
//!   implement the same order with textbook loops, and `tests/kernel_equivalence.rs`
//!   pins `to_bits` equality between them and the blocked kernels over adversarial
//!   shapes and values;
//! * `benches/kernel_throughput.rs` measures the blocked kernels against those same
//!   references, so the fast path must stay *provably fast* as well as provably equal.
//!
//! See `ARCHITECTURE.md` ("Vectorised kernels + the persistent worker pool") for the
//! full story.

use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::Result;
use crowd_parallel::ThreadPool;

/// Minimum number of scalar multiply-adds (`m · k · n`) before the parallel matmul
/// kernels shard rows across threads. Dispatching to the persistent worker pool costs a
/// few microseconds per call (channel send + wake, no thread spawn since the pool keeps
/// its workers parked), so products below ~128k multiply-adds fall back to the serial
/// kernel — which is bit-identical anyway.
const PAR_MATMUL_MIN_MADDS: usize = 1 << 17;

/// Virtual SIMD width of the unrolled kernels: each register tile holds `LANES`
/// consecutive output columns per row, accumulated in a `[f32; LANES]` that the
/// optimiser maps onto vector registers (f32x8 = one AVX2 register).
const LANES: usize = 8;

/// Rows of the left operand per register tile. `TILE_ROWS · LANES` accumulators stay
/// live across the whole inner-dimension loop, and every loaded lane group of the right
/// operand is reused `TILE_ROWS` times.
const TILE_ROWS: usize = 4;

/// The shared register-tile microkernel of both product kernels: computes the
/// `RT × LANES` output block for the `RT` left rows `a_rows` against the `LANES` right
/// columns packed at stride `bstride` in `b` (`b[p * bstride + l]` is inner index `p`,
/// lane `l`). [`Matrix::matmul`] passes a window of the right operand directly
/// (`bstride = n`); [`Matrix::matmul_transpose`] passes a packed `k × LANES` panel
/// (`bstride = LANES`).
///
/// Each lane accumulates its element's products over `p` in increasing order with a
/// separate multiply-then-add per step — exactly the contract in the
/// [module docs](self), which is why the result is bit-identical to the scalar
/// references no matter how the drivers tile `i` and `j`.
#[inline(always)]
fn lane_tile<const RT: usize>(
    a_rows: [&[f32]; RT],
    b: &[f32],
    bstride: usize,
    k: usize,
) -> [[f32; LANES]; RT] {
    let mut acc = [[0.0f32; LANES]; RT];
    for p in 0..k {
        let bp = &b[p * bstride..p * bstride + LANES];
        for (accr, a_row) in acc.iter_mut().zip(a_rows.iter()) {
            let av = a_row[p];
            for (o, &bv) in accr.iter_mut().zip(bp.iter()) {
                *o += av * bv;
            }
        }
    }
    acc
}

/// Sequential dot product over `p` in increasing order — the scalar edge of the contract,
/// used by the retained scalar references.
#[inline(always)]
fn seq_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// Column tile: `RT` output elements of one output column, left rows `a_rows` against
/// the right-operand column `b[p * bstride + j]`. Each accumulator is one output
/// element folded over `p` in increasing order with a separate multiply-then-add per
/// step — the same contract as [`lane_tile`], vectorised across output *rows* instead
/// of columns. Used for the lane-remainder columns (`n % LANES` of them), where it
/// keeps `RT` independent dependency chains in flight and shares each loaded `b` value
/// across them, instead of walking one latency-bound dot per element.
#[inline(always)]
fn col_tile<const RT: usize>(
    a_rows: [&[f32]; RT],
    b: &[f32],
    bstride: usize,
    j: usize,
    k: usize,
) -> [f32; RT] {
    let mut acc = [0.0f32; RT];
    for p in 0..k {
        let bv = b[p * bstride + j];
        for (o, a_row) in acc.iter_mut().zip(a_rows.iter()) {
            *o += a_row[p] * bv;
        }
    }
    acc
}

/// Runs [`col_tile`] down output column `j_out` for all `rows` rows (4/2/1 row tiles),
/// reading the right-operand column from `b` at `b[p * bstride + j_b]`.
/// [`Matrix::matmul`] passes the right operand in place (`bstride = n`, `j_b = j_out`);
/// [`Matrix::matmul_transpose`] passes the contiguous `rhs` row (`bstride = 1`,
/// `j_b = 0`).
#[allow(clippy::too_many_arguments)] // internal kernel plumbing, not an API
#[inline(always)]
fn col_tiles(
    a: &[f32],
    k: usize,
    row0: usize,
    rows: usize,
    b: &[f32],
    bstride: usize,
    j_b: usize,
    out_rows: &mut [f32],
    n: usize,
    j_out: usize,
) {
    let a_row = |local: usize| &a[(row0 + local) * k..][..k];
    let mut store = |i: usize, acc: &[f32]| {
        for (r, &v) in acc.iter().enumerate() {
            out_rows[(i + r) * n + j_out] = v;
        }
    };
    let mut i = 0;
    while i + TILE_ROWS <= rows {
        let tile = col_tile::<TILE_ROWS>(std::array::from_fn(|r| a_row(i + r)), b, bstride, j_b, k);
        store(i, &tile);
        i += TILE_ROWS;
    }
    if i + 2 <= rows {
        let tile = col_tile::<2>(std::array::from_fn(|r| a_row(i + r)), b, bstride, j_b, k);
        store(i, &tile);
        i += 2;
    }
    if i < rows {
        let tile = col_tile::<1>([a_row(i)], b, bstride, j_b, k);
        store(i, &tile);
    }
}

/// Runs [`lane_tile`] over all `rows` output rows for one group of `LANES` output
/// columns starting at `j0`, tiling rows 4-at-a-time with 2/1-row tails. `b` is the
/// lane group's right-operand window (stride `bstride`), `out_rows` the shard's output
/// window of width `n` starting at absolute row `row0`.
#[allow(clippy::too_many_arguments)] // internal kernel plumbing, not an API
#[inline(always)]
fn row_tiles(
    a: &[f32],
    k: usize,
    row0: usize,
    rows: usize,
    b: &[f32],
    bstride: usize,
    out_rows: &mut [f32],
    n: usize,
    j0: usize,
) {
    let mut store = |i: usize, acc: &[[f32; LANES]]| {
        for (r, lanes) in acc.iter().enumerate() {
            out_rows[(i + r) * n + j0..][..LANES].copy_from_slice(lanes);
        }
    };
    let a_row = |local: usize| &a[(row0 + local) * k..][..k];
    let mut i = 0;
    while i + TILE_ROWS <= rows {
        let tile = lane_tile::<TILE_ROWS>(std::array::from_fn(|r| a_row(i + r)), b, bstride, k);
        store(i, &tile);
        i += TILE_ROWS;
    }
    if i + 2 <= rows {
        let tile = lane_tile::<2>(std::array::from_fn(|r| a_row(i + r)), b, bstride, k);
        store(i, &tile);
        i += 2;
    }
    if i < rows {
        let tile = lane_tile::<1>([a_row(i)], b, bstride, k);
        store(i, &tile);
    }
}

/// The shared row kernel of [`Matrix::matmul`]: computes output rows
/// `[row0, row0 + out_rows.len()/n)` into `out_rows` through the register-blocked
/// microkernel (lane groups of the right operand are read in place, stride `n`).
/// Both the serial and the row-sharded parallel path run exactly this code per row,
/// which is what makes [`Matrix::matmul_par`] bit-identical by construction.
fn matmul_rows(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, out_rows: &mut [f32]) {
    let rows = out_rows.len() / n.max(1);
    let lane_end = n - n % LANES;
    let mut j0 = 0;
    while j0 < lane_end {
        row_tiles(a, k, row0, rows, &b[j0..], n, out_rows, n, j0);
        j0 += LANES;
    }
    // Lane-remainder columns: row-blocked column tiles down the strided columns.
    for j in lane_end..n {
        col_tiles(a, k, row0, rows, b, n, j, out_rows, n, j);
    }
}

/// The shared row kernel of [`Matrix::matmul_transpose`] (`self * rhs^T` without
/// materialising the transpose), same sharding contract as [`matmul_rows`]. Per group of
/// `LANES` output columns it packs a `k × LANES` panel of `rhs` rows (one transposed
/// copy, reused by every row tile of the shard) and runs the same microkernel as
/// [`matmul_rows`] over it.
fn matmul_transpose_rows(a: &Matrix, rhs: &Matrix, n: usize, row0: usize, out_rows: &mut [f32]) {
    if n == 0 {
        return;
    }
    let rows = out_rows.len() / n;
    let k = a.cols();
    let lane_end = n - n % LANES;
    if lane_end > 0 {
        // The packed panel exists only while there is at least one full lane group;
        // narrow products (`n < LANES`) never pay for the allocation.
        let mut panel = vec![0.0f32; k * LANES];
        let mut j0 = 0;
        while j0 < lane_end {
            for l in 0..LANES {
                let b_row = rhs.row(j0 + l);
                for (p, &v) in b_row.iter().enumerate() {
                    panel[p * LANES + l] = v;
                }
            }
            row_tiles(a.as_slice(), k, row0, rows, &panel, LANES, out_rows, n, j0);
            j0 += LANES;
        }
    }
    // Lane-remainder columns: row-blocked column tiles over the contiguous `rhs` rows.
    for j in lane_end..n {
        col_tiles(
            a.as_slice(),
            k,
            row0,
            rows,
            rhs.row(j),
            1,
            0,
            out_rows,
            n,
            j,
        );
    }
}

impl Matrix {
    /// Matrix product `self * rhs`, through the register-blocked 8-lane kernel (see the
    /// [module docs](self) for the accumulation-order contract it realises).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let k = self.cols();
        let n = rhs.cols();
        let mut out = Matrix::zeros(self.rows(), n);
        matmul_rows(self.as_slice(), rhs.as_slice(), k, n, 0, out.as_mut_slice());
        Ok(out)
    }

    /// Row-sharded parallel twin of [`Matrix::matmul`]: output rows are split into
    /// contiguous shards across `pool`, each computed by the very same per-row kernel the
    /// serial path runs. Because every output row is a function of one `self` row and all
    /// of `rhs` — accumulated in an order that does not depend on the shard — the result
    /// is **bit-identical** to [`Matrix::matmul`] at any thread count.
    ///
    /// Small products (fewer than ~128k multiply-adds) and serial pools skip the pool
    /// dispatch entirely and run the serial kernel inline.
    pub fn matmul_par(&self, rhs: &Matrix, pool: ThreadPool) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_par",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.cols();
        if pool.is_serial() || m < 2 || m * k * n < PAR_MATMUL_MIN_MADDS {
            return self.matmul(rhs);
        }
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = rhs.as_slice();
        pool.par_chunks(out.as_mut_slice(), n, |offset, chunk| {
            matmul_rows(a, b, k, n, offset / n, chunk);
        });
        Ok(out)
    }

    /// `self * rhs^T` without materialising the transpose, through the same
    /// register-blocked kernel as [`Matrix::matmul`] (each lane group packs a transposed
    /// panel of `rhs` first, so the microkernel's loads stay contiguous).
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.rows();
        let mut out = Matrix::zeros(self.rows(), n);
        matmul_transpose_rows(self, rhs, n, 0, out.as_mut_slice());
        Ok(out)
    }

    /// Row-sharded parallel twin of [`Matrix::matmul_transpose`]; same bit-identity and
    /// small-product fallback contract as [`Matrix::matmul_par`].
    pub fn matmul_transpose_par(&self, rhs: &Matrix, pool: ThreadPool) -> Result<Matrix> {
        if self.cols() != rhs.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transpose_par",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (m, k) = self.shape();
        let n = rhs.rows();
        if pool.is_serial() || m < 2 || m * k * n < PAR_MATMUL_MIN_MADDS {
            return self.matmul_transpose(rhs);
        }
        let mut out = Matrix::zeros(m, n);
        pool.par_chunks(out.as_mut_slice(), n, |offset, chunk| {
            matmul_transpose_rows(self, rhs, n, offset / n, chunk);
        });
        Ok(out)
    }

    /// Scalar reference implementation of [`Matrix::matmul`]: the textbook `i-k-j` loop,
    /// no register blocking, no lane unrolling. It realises the same
    /// [accumulation-order contract](self) as the blocked kernel — every element is a
    /// sequential `p`-ordered sum — so its result is **bit-identical** to
    /// [`Matrix::matmul`]; `tests/kernel_equivalence.rs` holds the two to `to_bits`
    /// equality over adversarial shapes and values, and
    /// `benches/kernel_throughput.rs` uses it as the speed baseline the blocked kernel
    /// must beat. Retained for those fences only (like `learn_sequential` and
    /// `apply_owned`); production paths must call [`Matrix::matmul`].
    pub fn matmul_ref(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_ref",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let k = self.cols();
        let n = rhs.cols();
        let (a, b) = (self.as_slice(), rhs.as_slice());
        let mut out = Matrix::zeros(self.rows(), n);
        for (i, c_row) in out.as_mut_slice().chunks_exact_mut(n.max(1)).enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            for (p, &a_ip) in a_row.iter().enumerate() {
                let b_row = &b[p * n..(p + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_v += a_ip * b_v;
                }
            }
        }
        Ok(out)
    }

    /// Scalar reference implementation of [`Matrix::matmul_transpose`]: one sequential
    /// dot product per output element. Same retention contract as
    /// [`Matrix::matmul_ref`] — bit-identical oracle for the differential suite, speed
    /// baseline for the throughput bench, not a production path.
    pub fn matmul_transpose_ref(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transpose_ref",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let n = rhs.rows();
        let mut out = Matrix::zeros(self.rows(), n);
        for i in 0..self.rows() {
            let a_row = self.row(i);
            let c_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (j, c_v) in c_row.iter_mut().enumerate() {
                *c_v = seq_dot(a_row, rhs.row(j));
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let (m, n) = self.shape();
        let mut out = Matrix::zeros(n, m);
        for i in 0..m {
            for j in 0..n {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    fn check_same_shape(&self, rhs: &Matrix, op: &'static str) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(())
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.check_same_shape(rhs, "add")?;
        let mut out = self.clone();
        for (o, &r) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o += r;
        }
        Ok(out)
    }

    /// In-place element-wise sum; used by gradient accumulation.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<()> {
        self.check_same_shape(rhs, "add_assign")?;
        for (o, &r) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o += r;
        }
        Ok(())
    }

    /// In-place `self += alpha * rhs` (axpy).
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, alpha: f32) -> Result<()> {
        self.check_same_shape(rhs, "add_scaled_assign")?;
        for (o, &r) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o += alpha * r;
        }
        Ok(())
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.check_same_shape(rhs, "sub")?;
        let mut out = self.clone();
        for (o, &r) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o -= r;
        }
        Ok(out)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.check_same_shape(rhs, "hadamard")?;
        let mut out = self.clone();
        for (o, &r) in out.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *o *= r;
        }
        Ok(out)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v *= alpha;
        }
        out
    }

    /// Adds a scalar to every element.
    pub fn shift(&self, delta: f32) -> Matrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v += delta;
        }
        out
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v = f(*v);
        }
        out
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Matrix {
        self.map(|v| if v > 0.0 { v } else { 0.0 })
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Result<Matrix> {
        if row.rows() != 1 || row.cols() != self.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: row.shape(),
            });
        }
        let mut out = self.clone();
        let bias = row.as_slice();
        // Row-slice addition (one add per element, so bit-identical to any loop order);
        // the contiguous zip auto-vectorises, which matters because every Linear /
        // RowwiseFF / attention-projection layer runs this right after its matmul.
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Row-wise softmax: every row is exponentiated (after subtracting its max for stability)
    /// and normalised to sum to one. Rows of all `-inf` become uniform zero-safe rows.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                let n = row.len() as f32;
                for v in row.iter_mut() {
                    *v = 1.0 / n;
                }
                continue;
            }
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows() != rhs.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "concat_cols",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows(), self.cols() + rhs.cols());
        for r in 0..self.rows() {
            out.row_mut(r)[..self.cols()].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols()..].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// Vertical concatenation (stack `rhs` below `self`).
    pub fn concat_rows(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "concat_rows",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.len() + rhs.len());
        data.extend_from_slice(self.as_slice());
        data.extend_from_slice(rhs.as_slice());
        Matrix::from_vec(self.rows() + rhs.rows(), self.cols(), data)
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.cols() {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_cols",
                index: end,
                bound: self.cols() + 1,
            });
        }
        let mut out = Matrix::zeros(self.rows(), end - start);
        for r in 0..self.rows() {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        Ok(out)
    }

    /// Copies rows `[start, end)` into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.rows() {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_rows",
                index: end,
                bound: self.rows() + 1,
            });
        }
        let mut out = Matrix::zeros(end - start, self.cols());
        for (dst, src) in (start..end).enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Stacks several matrices with equal column counts into one `[Σ rows, cols]` matrix.
    ///
    /// This is the packing step of batched inference: `N` per-session state matrices become
    /// one buffer, so every row-wise layer (`matmul`, bias broadcast, activations) runs as a
    /// single stacked operation instead of `N` small ones. Because those operations act on
    /// each row independently, the packed result is bit-identical to processing the parts
    /// one at a time.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the parts disagree on column count.
    /// An empty part list yields a `0 x 0` matrix.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        let Some(first) = parts.first() else {
            return Ok(Matrix::zeros(0, 0));
        };
        let cols = first.cols();
        let mut rows = 0;
        for part in parts {
            if part.cols() != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vstack",
                    lhs: first.shape(),
                    rhs: part.shape(),
                });
            }
            rows += part.rows();
        }
        let mut data = Vec::with_capacity(rows * cols);
        for part in parts {
            data.extend_from_slice(part.as_slice());
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Overwrites rows `[start, start + src.rows())` of `self` with the rows of `src` — the
    /// scatter step of batched inference, writing a per-session result block back into the
    /// packed buffer.
    ///
    /// # Errors
    ///
    /// Returns an error when the column counts differ or the block does not fit.
    pub fn paste_rows(&mut self, start: usize, src: &Matrix) -> Result<()> {
        if src.cols() != self.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "paste_rows",
                lhs: self.shape(),
                rhs: src.shape(),
            });
        }
        let end = start + src.rows();
        if end > self.rows() {
            return Err(TensorError::IndexOutOfBounds {
                op: "paste_rows",
                index: end,
                bound: self.rows() + 1,
            });
        }
        for r in 0..src.rows() {
            self.row_mut(start + r).copy_from_slice(src.row(r));
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Per-row sums as a `rows x 1` column vector.
    pub fn row_sums(&self) -> Matrix {
        let sums: Vec<f32> = (0..self.rows()).map(|r| self.row(r).iter().sum()).collect();
        Matrix::col_vector(&sums)
    }

    /// Per-column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                let v = out.get(0, c) + self.get(r, c);
                out.set(0, c, v);
            }
        }
        out
    }

    /// Per-column means as a `1 x cols` row vector.
    pub fn col_means(&self) -> Matrix {
        if self.rows() == 0 {
            return Matrix::zeros(1, self.cols());
        }
        self.col_sums().scale(1.0 / self.rows() as f32)
    }

    /// Maximum element. Errors on an empty matrix.
    pub fn max(&self) -> Result<f32> {
        self.as_slice()
            .iter()
            .cloned()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or(TensorError::EmptyInput { op: "max" })
    }

    /// Index (row-major) and value of the maximum element. Errors on an empty matrix.
    pub fn argmax(&self) -> Result<(usize, f32)> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.as_slice().iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.ok_or(TensorError::EmptyInput { op: "argmax" })
    }

    /// Squared Frobenius norm.
    pub fn squared_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.squared_norm().sqrt()
    }

    /// Dot product between two matrices of identical shape (sum of the Hadamard product).
    pub fn dot(&self, rhs: &Matrix) -> Result<f32> {
        self.check_same_shape(rhs, "dot")?;
        Ok(self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Cosine similarity between two same-shape matrices (flattened). Returns 0 when either
    /// operand has zero norm.
    pub fn cosine_similarity(&self, rhs: &Matrix) -> Result<f32> {
        let dot = self.dot(rhs)?;
        let denom = self.norm() * rhs.norm();
        if denom <= f32::EPSILON {
            Ok(0.0)
        } else {
            Ok(dot / denom)
        }
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Matrix {
        self.map(|v| v.clamp(lo, hi))
    }
}

/// Dot product of two equal-length slices; tiny helper used throughout the baselines.
pub fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Cosine similarity of two equal-length slices (0 when either has zero norm).
pub fn cosine_slices(a: &[f32], b: &[f32]) -> f32 {
    let dot = dot_slices(a, b);
    let na = dot_slices(a, a).sqrt();
    let nb = dot_slices(b, b).sqrt();
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::Rng;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Rng::seed_from(0);
        let a = Matrix::randn(4, 4, &mut rng);
        let id = Matrix::identity(4);
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let mut rng = Rng::seed_from(1);
        let a = Matrix::randn(3, 5, &mut rng);
        let b = Matrix::randn(4, 5, &mut rng);
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from(2);
        let a = Matrix::randn(3, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.shift(1.0).as_slice(), &[2.0, 3.0, 4.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = m(1, 2, &[1.0, 2.0]);
        a.add_assign(&m(1, 2, &[3.0, 4.0])).unwrap();
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        a.add_scaled_assign(&m(1, 2, &[1.0, 1.0]), 0.5).unwrap();
        assert_eq!(a.as_slice(), &[4.5, 6.5]);
    }

    #[test]
    fn relu_and_map() {
        let a = m(1, 4, &[-1.0, 0.0, 2.0, -3.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(a.map(|v| v * v).as_slice(), &[1.0, 0.0, 4.0, 9.0]);
    }

    #[test]
    fn row_broadcast() {
        let a = Matrix::zeros(2, 3);
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let out = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(a.add_row_broadcast(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.all_finite());
        // Larger logits get larger probabilities.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_handles_fully_masked_row() {
        let a = m(1, 3, &[f32::NEG_INFINITY; 3]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
    }

    #[test]
    fn concat_and_slice() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[5.0, 6.0]);
        let cat = a.concat_cols(&b).unwrap();
        assert_eq!(cat.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(cat.row(1), &[3.0, 4.0, 6.0]);
        assert_eq!(cat.slice_cols(2, 3).unwrap(), b);
        assert_eq!(cat.slice_cols(0, 2).unwrap(), a);
        assert!(cat.slice_cols(1, 5).is_err());

        let stacked = a.concat_rows(&m(1, 2, &[7.0, 8.0])).unwrap();
        assert_eq!(stacked.shape(), (3, 2));
        assert_eq!(stacked.row(2), &[7.0, 8.0]);
        assert_eq!(stacked.slice_rows(2, 3).unwrap().row(0), &[7.0, 8.0]);
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.row_sums().as_slice(), &[3.0, 7.0]);
        assert_eq!(a.col_sums().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.col_means().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.max().unwrap(), 4.0);
        assert_eq!(a.argmax().unwrap(), (3, 4.0));
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert!(Matrix::zeros(0, 0).max().is_err());
        assert!(Matrix::zeros(0, 0).argmax().is_err());
    }

    #[test]
    fn dot_and_cosine() {
        let a = m(1, 3, &[1.0, 0.0, 0.0]);
        let b = m(1, 3, &[0.0, 1.0, 0.0]);
        assert_eq!(a.dot(&b).unwrap(), 0.0);
        assert_eq!(a.cosine_similarity(&b).unwrap(), 0.0);
        assert!((a.cosine_similarity(&a).unwrap() - 1.0).abs() < 1e-6);
        let zero = Matrix::zeros(1, 3);
        assert_eq!(a.cosine_similarity(&zero).unwrap(), 0.0);
    }

    #[test]
    fn clamp_bounds() {
        let a = m(1, 3, &[-5.0, 0.5, 7.0]);
        assert_eq!(a.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(dot_slices(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((cosine_slices(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert_eq!(cosine_slices(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}

// Seeded randomised property tests. The original version used `proptest`, which is not
// available in the offline build environment; these sweeps keep the same property coverage
// with the workspace's own deterministic Rng.
#[cfg(test)]
mod proptests {
    use crate::error::TensorError;
    use crate::matrix::Matrix;
    use crate::random::Rng;

    const CASES: usize = 64;

    fn random_matrix(max_dim: usize, rng: &mut Rng) -> Matrix {
        let r = rng.range(1, max_dim + 1);
        let c = rng.range(1, max_dim + 1);
        let data: Vec<f32> = (0..r * c).map(|_| rng.uniform(-10.0, 10.0)).collect();
        Matrix::from_vec(r, c, data).unwrap()
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = Rng::seed_from(101);
        for _ in 0..CASES {
            let m = random_matrix(8, &mut rng);
            assert_eq!(m.transpose().transpose(), m);
        }
    }

    #[test]
    fn add_is_commutative() {
        let mut rng = Rng::seed_from(102);
        for _ in 0..CASES {
            let m = random_matrix(6, &mut rng);
            let other = m.scale(0.5);
            assert_eq!(m.add(&other).unwrap(), other.add(&m).unwrap());
        }
    }

    #[test]
    fn scale_distributes_over_add() {
        let mut rng = Rng::seed_from(103);
        for _ in 0..CASES {
            let m = random_matrix(6, &mut rng);
            let alpha = rng.uniform(-3.0, 3.0);
            let other = m.map(|v| v - 1.0);
            let lhs = m.add(&other).unwrap().scale(alpha);
            let rhs = m.scale(alpha).add(&other.scale(alpha)).unwrap();
            for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
                assert!((a - b).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn softmax_rows_are_probabilities() {
        let mut rng = Rng::seed_from(104);
        for _ in 0..CASES {
            let m = random_matrix(7, &mut rng);
            let s = m.softmax_rows();
            for r in 0..s.rows() {
                let sum: f32 = s.row(r).iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
                assert!(s.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
            }
        }
    }

    #[test]
    fn matmul_associativity() {
        let mut rng = Rng::seed_from(105);
        for _ in 0..CASES {
            let a = random_matrix(5, &mut rng);
            // Build compatible b and c from a's shape deterministically.
            let (r, c) = a.shape();
            let b = Matrix::filled(c, 3, 0.5);
            let cc = Matrix::filled(3, 2, -0.25);
            let left = a.matmul(&b).unwrap().matmul(&cc).unwrap();
            let right = a.matmul(&b.matmul(&cc).unwrap()).unwrap();
            assert_eq!(left.shape(), (r, 2));
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn concat_then_slice_roundtrip() {
        let mut rng = Rng::seed_from(106);
        for _ in 0..CASES {
            let a = random_matrix(6, &mut rng);
            let b = a.map(|v| v + 1.0);
            let cat = a.concat_cols(&b).unwrap();
            assert_eq!(cat.slice_cols(0, a.cols()).unwrap(), a.clone());
            assert_eq!(cat.slice_cols(a.cols(), cat.cols()).unwrap(), b);
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative() {
        let mut rng = Rng::seed_from(107);
        for _ in 0..CASES {
            let m = random_matrix(8, &mut rng);
            let r = m.relu();
            assert_eq!(r.relu(), r.clone());
            assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn vstack_packs_and_slice_rows_unpacks() {
        let mut rng = Rng::seed_from(108);
        let a = Matrix::randn(3, 4, &mut rng);
        let b = Matrix::randn(1, 4, &mut rng);
        let c = Matrix::randn(2, 4, &mut rng);
        let packed = Matrix::vstack(&[&a, &b, &c]).unwrap();
        assert_eq!(packed.shape(), (6, 4));
        assert_eq!(packed.slice_rows(0, 3).unwrap(), a);
        assert_eq!(packed.slice_rows(3, 4).unwrap(), b);
        assert_eq!(packed.slice_rows(4, 6).unwrap(), c);
        // Column mismatch is rejected; an empty list packs to nothing.
        assert!(Matrix::vstack(&[&a, &Matrix::zeros(2, 3)]).is_err());
        assert_eq!(Matrix::vstack(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn stacked_matmul_is_bit_identical_to_per_part_matmul() {
        // The property batched inference relies on: a row-wise op over the packed buffer
        // produces exactly the bits of the per-part ops.
        let mut rng = Rng::seed_from(109);
        for _ in 0..CASES {
            let a = random_matrix(5, &mut rng);
            let b = Matrix::randn(rng.range(1, 6), a.cols(), &mut rng);
            let w = Matrix::randn(a.cols(), 3, &mut rng);
            let packed = Matrix::vstack(&[&a, &b]).unwrap();
            let stacked = packed.matmul(&w).unwrap();
            assert_eq!(
                stacked.slice_rows(0, a.rows()).unwrap(),
                a.matmul(&w).unwrap()
            );
            assert_eq!(
                stacked.slice_rows(a.rows(), packed.rows()).unwrap(),
                b.matmul(&w).unwrap()
            );
        }
    }

    #[test]
    fn matmul_par_is_bit_identical_to_serial_at_any_thread_count() {
        // Above the sharding threshold: 192 x 48 @ 48 x 64 = ~590k madds, so the pooled
        // path really shards rows instead of falling back to the serial kernel.
        let mut rng = Rng::seed_from(111);
        let a = Matrix::randn(192, 48, &mut rng);
        let b = Matrix::randn(48, 64, &mut rng);
        let serial = a.matmul(&b).unwrap();
        for threads in [1usize, 2, 3, 8, 300] {
            let pool = crowd_parallel::ThreadPool::new(threads);
            let par = a.matmul_par(&b, pool).unwrap();
            assert_eq!(par, serial, "matmul_par diverged at {threads} threads");
        }
        // Shape errors are reported under the parallel op name.
        assert!(matches!(
            a.matmul_par(&Matrix::zeros(2, 2), crowd_parallel::ThreadPool::new(4)),
            Err(TensorError::ShapeMismatch {
                op: "matmul_par",
                ..
            })
        ));
    }

    #[test]
    fn matmul_transpose_par_is_bit_identical_to_serial() {
        let mut rng = Rng::seed_from(112);
        let a = Matrix::randn(160, 64, &mut rng);
        let b = Matrix::randn(96, 64, &mut rng);
        let serial = a.matmul_transpose(&b).unwrap();
        for threads in [1usize, 2, 7, 16] {
            let pool = crowd_parallel::ThreadPool::new(threads);
            let par = a.matmul_transpose_par(&b, pool).unwrap();
            assert_eq!(
                par, serial,
                "matmul_transpose_par diverged at {threads} threads"
            );
        }
        assert!(a
            .matmul_transpose_par(&Matrix::zeros(2, 2), crowd_parallel::ThreadPool::new(2))
            .is_err());
    }

    #[test]
    fn small_products_fall_back_to_the_serial_kernel() {
        // Below the threshold the parallel entry points must still produce the same bits
        // (they run the serial kernel), including degenerate shapes.
        let mut rng = Rng::seed_from(113);
        let pool = crowd_parallel::ThreadPool::new(8);
        let a = Matrix::randn(3, 5, &mut rng);
        let b = Matrix::randn(5, 2, &mut rng);
        assert_eq!(a.matmul_par(&b, pool).unwrap(), a.matmul(&b).unwrap());
        let empty = Matrix::zeros(0, 5);
        assert_eq!(empty.matmul_par(&b, pool).unwrap().shape(), (0, 2));
        let single = Matrix::randn(1, 2048, &mut rng);
        let wide = Matrix::randn(2048, 512, &mut rng);
        // One row can never shard, no matter how much work it holds.
        assert_eq!(
            single.matmul_par(&wide, pool).unwrap(),
            single.matmul(&wide).unwrap()
        );
    }

    #[test]
    fn blocked_kernels_match_the_scalar_references_bit_for_bit() {
        // The unit-level smoke of the contract; the adversarial sweep lives in
        // tests/kernel_equivalence.rs.
        let mut rng = Rng::seed_from(114);
        for _ in 0..CASES {
            let m = rng.range(1, 12);
            let k = rng.range(1, 12);
            let n = rng.range(1, 20); // crosses the 8-lane boundary both ways
            let a = Matrix::randn(m, k, &mut rng);
            let b = Matrix::randn(k, n, &mut rng);
            let bt = b.transpose();
            let fast = a.matmul(&b).unwrap();
            let reference = a.matmul_ref(&b).unwrap();
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul {m}x{k}x{n}");
            }
            let fast_t = a.matmul_transpose(&bt).unwrap();
            let reference_t = a.matmul_transpose_ref(&bt).unwrap();
            for (x, y) in fast_t.as_slice().iter().zip(reference_t.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul_transpose {m}x{k}x{n}");
            }
        }
        // The references report shape mismatches under their own op names.
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul_ref(&Matrix::zeros(2, 3)),
            Err(TensorError::ShapeMismatch {
                op: "matmul_ref",
                ..
            })
        ));
        assert!(matches!(
            a.matmul_transpose_ref(&Matrix::zeros(2, 2)),
            Err(TensorError::ShapeMismatch {
                op: "matmul_transpose_ref",
                ..
            })
        ));
    }

    #[test]
    fn paste_rows_scatters_blocks_back() {
        let mut rng = Rng::seed_from(110);
        let a = Matrix::randn(2, 3, &mut rng);
        let b = Matrix::randn(3, 3, &mut rng);
        let mut packed = Matrix::zeros(5, 3);
        packed.paste_rows(0, &a).unwrap();
        packed.paste_rows(2, &b).unwrap();
        assert_eq!(packed, Matrix::vstack(&[&a, &b]).unwrap());
        // Shape and bounds violations are rejected.
        assert!(packed.paste_rows(0, &Matrix::zeros(1, 2)).is_err());
        assert!(packed.paste_rows(4, &Matrix::zeros(2, 3)).is_err());
    }
}
