//! The [`Matrix`] type: a row-major dense `f32` matrix with shape-checked constructors and
//! element accessors. Numeric operations live in [`crate::ops`].

use crate::error::TensorError;
use crate::random::Rng;
use crate::Result;

/// A dense, row-major matrix of `f32` values.
///
/// This is the only tensor type in the workspace: the paper's networks operate on 2-D inputs
/// (`[maxT, feature_dim]` state matrices, `[n, d]` weight matrices), so a single 2-D type with
/// explicit shapes keeps the autograd layer simple. Vectors are represented as `1 x n` or
/// `n x 1` matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix::filled(rows, cols, 1.0)
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidBuffer`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::InvalidBuffer {
                    rows: rows.len(),
                    cols,
                    len: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a `1 x n` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates an `n x 1` column vector.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates an identity matrix of side `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix with entries drawn from the standard normal distribution.
    pub fn randn(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.normal(0.0, 1.0)).collect();
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialisation for a weight matrix of shape `fan_in x fan_out`.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / (fan_in as f32 + fan_out as f32)).sqrt();
        Matrix::rand_uniform(fan_in, fan_out, -bound, bound, rng)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)` without bounds checking beyond debug assertions.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Checked element access.
    pub fn try_get(&self, r: usize, c: usize) -> Result<f32> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "try_get(row)",
                index: r,
                bound: self.rows,
            });
        }
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                op: "try_get(col)",
                index: c,
                bound: self.cols,
            });
        }
        Ok(self.get(r, c))
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Replaces row `r` with `values`.
    ///
    /// # Errors
    ///
    /// Returns an error if `values.len() != cols` or `r` is out of bounds.
    pub fn set_row(&mut self, r: usize, values: &[f32]) -> Result<()> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "set_row",
                index: r,
                bound: self.rows,
            });
        }
        if values.len() != self.cols {
            return Err(TensorError::InvalidBuffer {
                rows: 1,
                cols: self.cols,
                len: values.len(),
            });
        }
        self.row_mut(r).copy_from_slice(values);
        Ok(())
    }

    /// Fills every entry with `value`.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Returns an iterator over `(row, col, value)` triples in row-major order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// True when every element is finite (no NaN / infinity). Useful for training sanity checks.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(10) {
                write!(f, "{:8.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(10) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 10 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Checkpoint format: `rows` and `cols` as `u64`, then the `rows·cols` elements of the
/// row-major buffer as raw IEEE-754 bits (no extra length prefix — the count is implied
/// by the shape). Raw bits make the roundtrip bit-exact for every value, NaNs included.
impl crowd_ckpt::SaveState for Matrix {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        for &v in &self.data {
            w.put_f32(v);
        }
    }
}

impl crowd_ckpt::DecodeState for Matrix {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        let rows = r.take_usize()?;
        let cols = r.take_usize()?;
        let len = rows
            .checked_mul(cols)
            .filter(|n| n.checked_mul(4).is_some_and(|bytes| bytes <= r.remaining()))
            .ok_or_else(|| crowd_ckpt::CkptError::Corrupt {
                what: "matrix shape",
                detail: format!("{rows}x{cols} elements exceed the bytes remaining"),
            })?;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(r.take_f32()?);
        }
        Ok(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        use crowd_ckpt::{DecodeState, SaveState, StateReader, StateWriter};
        let mut rng = Rng::seed_from(77);
        let mut m = Matrix::randn(5, 3, &mut rng);
        m.set(0, 0, f32::NAN);
        m.set(1, 2, -0.0);
        let mut w = StateWriter::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = Matrix::decode_state(&mut r).unwrap();
        r.finish("matrix").unwrap();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A corrupt shape whose element count exceeds the payload is a typed error.
        let mut w = StateWriter::new();
        w.put_usize(1_000_000);
        w.put_usize(1_000_000);
        let bytes = w.into_bytes();
        assert!(Matrix::decode_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn filled_and_ones() {
        assert_eq!(Matrix::ones(2, 2).as_slice(), &[1.0; 4]);
        assert_eq!(Matrix::filled(1, 3, 2.5).as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_rows_requires_rectangular() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok.shape(), (2, 2));
        let bad = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(bad.is_err());
    }

    #[test]
    fn identity_diagonal() {
        let id = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(id.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_and_col_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn set_row_validates() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.set_row(0, &[1.0, 2.0]).is_ok());
        assert!(m.set_row(0, &[1.0]).is_err());
        assert!(m.set_row(5, &[1.0, 2.0]).is_err());
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn try_get_bounds() {
        let m = Matrix::zeros(2, 2);
        assert!(m.try_get(1, 1).is_ok());
        assert!(m.try_get(2, 0).is_err());
        assert!(m.try_get(0, 2).is_err());
    }

    #[test]
    fn random_constructors_are_deterministic_under_seed() {
        let mut r1 = Rng::seed_from(7);
        let mut r2 = Rng::seed_from(7);
        assert_eq!(Matrix::randn(3, 3, &mut r1), Matrix::randn(3, 3, &mut r2));
    }

    #[test]
    fn xavier_bound() {
        let mut rng = Rng::seed_from(1);
        let m = Matrix::xavier(100, 100, &mut rng);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn vectors_and_fill() {
        let rv = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!(rv.shape(), (1, 2));
        let cv = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(cv.shape(), (3, 1));
        let mut m = Matrix::zeros(2, 2);
        m.fill(9.0);
        assert_eq!(m.as_slice(), &[9.0; 4]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.all_finite());
        m.set(0, 1, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn iter_indexed_order() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let collected: Vec<_> = m.iter_indexed().collect();
        assert_eq!(
            collected,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]
        );
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("Matrix 20x20"));
    }
}
