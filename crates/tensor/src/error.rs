//! Error type shared by every shape-checked operation in the numeric crates.

use std::fmt;

/// Errors produced by matrix construction and operations.
///
/// All fallible operations in [`crate::Matrix`] return `Result<_, TensorError>`; panicking is
/// reserved for unrecoverable internal invariant violations (never for caller mistakes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// A matrix was constructed from a buffer whose length does not equal `rows * cols`.
    InvalidBuffer {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// An index (row, column, or flat) was outside the matrix bounds.
    IndexOutOfBounds {
        /// Name of the operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay under.
        bound: usize,
    },
    /// An operation required a non-empty matrix or a strictly positive dimension.
    EmptyInput {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidBuffer { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot back a {rows}x{cols} matrix (need {})",
                rows * cols
            ),
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds (< {bound}) in `{op}`")
            }
            TensorError::EmptyInput { op } => write!(f, "`{op}` requires a non-empty input"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_invalid_buffer() {
        let e = TensorError::InvalidBuffer {
            rows: 2,
            cols: 2,
            len: 3,
        };
        assert!(e.to_string().contains("need 4"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds {
            op: "row",
            index: 7,
            bound: 5,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("5"));
    }

    #[test]
    fn display_empty_input() {
        let e = TensorError::EmptyInput { op: "argmax" };
        assert!(e.to_string().contains("argmax"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TensorError::EmptyInput { op: "x" });
    }
}
