//! Dense `f32` matrix substrate for the crowd-rl workspace.
//!
//! The paper's Q-network is a small set-transformer operating on matrices of shape
//! `[maxT, feature_dim]`; everything the workspace needs from a linear-algebra backend is a
//! row-major dense matrix with shape-checked operations and a deterministic random number
//! source. This crate provides exactly that and nothing more, so the higher layers
//! ([`crowd-autograd`](https://docs.rs/crowd-autograd), `crowd-nn`) stay small and auditable.
//!
//! # Quick example
//!
//! ```
//! use crowd_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let a = Matrix::randn(3, 4, &mut rng);
//! let b = Matrix::randn(4, 2, &mut rng);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.shape(), (3, 2));
//! ```
//!
//! # Packed-row ops: the substrate of batched inference
//!
//! Batched Q-network inference stacks `N` sessions' state rows into one
//! `[Σ pool sizes, dim]` buffer ([`Matrix::vstack`]), runs every row-wise layer as a single
//! stacked matmul, and scatters per-session blocks with [`Matrix::slice_rows`] /
//! [`Matrix::paste_rows`]. Because a row-wise operation's output row depends only on its own
//! input row, the stacked result is **bit-identical** to processing the parts one at a time:
//!
//! ```
//! use crowd_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(1);
//! let session_a = Matrix::randn(3, 4, &mut rng); // 3 available tasks
//! let session_b = Matrix::randn(5, 4, &mut rng); // 5 available tasks
//! let weights = Matrix::randn(4, 2, &mut rng);
//!
//! let packed = Matrix::vstack(&[&session_a, &session_b]).unwrap();
//! let stacked = packed.matmul(&weights).unwrap(); // ONE matmul for both sessions
//!
//! assert_eq!(stacked.slice_rows(0, 3).unwrap(), session_a.matmul(&weights).unwrap());
//! assert_eq!(stacked.slice_rows(3, 8).unwrap(), session_b.matmul(&weights).unwrap());
//! ```
//!
//! # Parallel kernels
//!
//! The packed buffers above can grow to thousands of rows at replica scale, so the
//! matmul kernels are register-blocked and 8-lane unrolled (see the [`ops`] module docs
//! for the accumulation-order contract, and `tests/kernel_equivalence.rs` for the
//! differential fence against the retained scalar references), and both have
//! row-sharded twins — [`Matrix::matmul_par`] / [`Matrix::matmul_transpose_par`] — that
//! split the *output rows* across a [`ThreadPool`] (re-exported from `crowd-parallel`,
//! which dispatches to its persistent worker pool). Every output row is produced by
//! the same per-row kernel the serial path runs, with the same f32 accumulation order,
//! so the parallel results are **bit-identical** to the serial ones at any thread count;
//! small products fall back to the serial kernel automatically (even the persistent
//! pool's warm dispatch costs more than they do).
//!
//! # Determinism
//!
//! [`Rng`] is a self-contained xoshiro256++ generator (no external `rand`): the same seed
//! yields the same stream on every platform, which is what makes the workspace's
//! bit-identity equivalence tests possible.
//!
//! ```
//! use crowd_tensor::Rng;
//!
//! let mut a = Rng::seed_from(99);
//! let mut b = Rng::seed_from(99);
//! assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
//! ```

pub mod error;
pub mod matrix;
pub mod ops;
pub mod random;

pub use error::TensorError;
pub use matrix::Matrix;
pub use random::Rng;

// Re-exported so downstream crates can accept a pool handle without depending on
// `crowd-parallel` directly (the handle appears in `Matrix::matmul_par`'s signature).
pub use crowd_parallel::ThreadPool;

/// Convenience result alias used across the workspace's numeric crates.
pub type Result<T> = std::result::Result<T, TensorError>;
