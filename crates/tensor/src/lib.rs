//! Dense `f32` matrix substrate for the crowd-rl workspace.
//!
//! The paper's Q-network is a small set-transformer operating on matrices of shape
//! `[maxT, feature_dim]`; everything the workspace needs from a linear-algebra backend is a
//! row-major dense matrix with shape-checked operations and a deterministic random number
//! source. This crate provides exactly that and nothing more, so the higher layers
//! ([`crowd-autograd`](https://docs.rs/crowd-autograd), `crowd-nn`) stay small and auditable.
//!
//! # Quick example
//!
//! ```
//! use crowd_tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from(42);
//! let a = Matrix::randn(3, 4, &mut rng);
//! let b = Matrix::randn(4, 2, &mut rng);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.shape(), (3, 2));
//! ```

pub mod error;
pub mod matrix;
pub mod ops;
pub mod random;

pub use error::TensorError;
pub use matrix::Matrix;
pub use random::Rng;

/// Convenience result alias used across the workspace's numeric crates.
pub type Result<T> = std::result::Result<T, TensorError>;
