//! One full model update as the number of available tasks grows — the micro-benchmark behind
//! Table I and Fig. 10(d): LinUCB's Sherman–Morrison update vs one DDQN observe (transition
//! construction + a prioritized minibatch learning step).

use crowd_baselines::{Benefit, LinUcb, ListMode};
use crowd_bench::{criterion_group, criterion_main, synthetic_context, BenchmarkId, Criterion};
use crowd_rl_core::{DdqnAgent, DdqnConfig};
use crowd_sim::{Decision, Policy, PolicyFeedback};

fn feedback_for(ctx: &crowd_sim::ArrivalContext, decision: &Decision) -> PolicyFeedback {
    let shown = decision.shown().to_vec();
    PolicyFeedback {
        time: ctx.time,
        worker_id: ctx.worker_id,
        worker_quality: ctx.worker_quality,
        completed: shown.first().map(|&t| (t, 0)),
        quality_gain: 0.3,
        worker_feature_before: ctx.worker_feature.clone(),
        worker_feature_after: ctx.worker_feature.clone(),
        shown,
    }
}

fn bench_update(c: &mut Criterion) {
    let feature_dim = 20;
    let mut group = c.benchmark_group("update_latency");
    group.sample_size(10);

    for &pool in &[10usize, 50, 100] {
        let ctx = synthetic_context(pool, feature_dim, 3);

        group.bench_with_input(BenchmarkId::new("linucb", pool), &pool, |b, _| {
            let mut policy = LinUcb::new(Benefit::Worker, ListMode::RankAll, 0.5);
            let mut decision = Decision::new();
            policy.act(&ctx.view(), &mut decision);
            let fb = feedback_for(&ctx, &decision);
            b.iter(|| policy.observe(&ctx.view(), &fb.view()))
        });

        group.bench_with_input(BenchmarkId::new("ddqn", pool), &pool, |b, _| {
            // Worker-benefit-only agent so exactly one network is updated per observe,
            // matching the per-method timing of Table I.
            let config = DdqnConfig {
                hidden_dim: 32,
                num_heads: 4,
                batch_size: 16,
                learn_every: 1,
                buffer_size: 64,
                max_tasks: pool,
                ..DdqnConfig::default()
            }
            .worker_only();
            let mut agent = DdqnAgent::new(config.clone(), feature_dim, feature_dim);
            let mut decision = Decision::new();
            // Pre-fill the memory so every timed observe includes a learning step.
            for _ in 0..config.batch_size + 1 {
                agent.act(&ctx.view(), &mut decision);
                let fb = feedback_for(&ctx, &decision);
                agent.observe(&ctx.view(), &fb.view());
            }
            agent.act(&ctx.view(), &mut decision);
            let fb = feedback_for(&ctx, &decision);
            b.iter(|| agent.observe(&ctx.view(), &fb.view()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
