//! Scenario-engine overhead benchmark: a stationary replay against a churn-heavy
//! scenario replay of the same dataset, reporting the one-off `ScenarioSpec::apply`
//! compile time and the per-arrival replay rate of each.
//!
//! The scenario engine is a pre-replay dataset transform — the hot loop is untouched —
//! so the only admissible costs are (a) the one-off compile and (b) second-order replay
//! effects of the perturbed stream itself (different pool sizes, different arrival
//! counts). The fence: the churn-heavy per-arrival rate stays within 2× of the
//! stationary rate (`overhead/churn_vs_stationary` in the JSON report, alongside
//! `sharded_scale.json` in CI).
//!
//! `--smoke` (CI) shrinks to the tiny dataset; the full tier replays the
//! CrowdSpring-replica scale.

use std::time::Instant;

use crowd_bench::{criterion_group, criterion_main, record_value, smoke_mode, Criterion};
use crowd_experiments::named_scenarios;
use crowd_sim::{
    Dataset, DayNightCycle, Decision, Env, Platform, ScenarioSpec, SimConfig, MINUTES_PER_MONTH,
};

/// Rank the first `SHOWN` pool tasks per arrival — constant-work stand-in policy, so
/// the numbers isolate the environment, not a learner.
const SHOWN: usize = 64;

fn replay(env: &mut Platform) -> usize {
    let mut decision = Decision::new();
    let mut arrivals = 0usize;
    while env.next_arrival() {
        arrivals += 1;
        let view = env.arrival();
        if view.is_empty() {
            continue;
        }
        decision.clear();
        decision.extend((0..view.n_tasks().min(SHOWN)).map(|i| view.task_id(i)));
        env.apply(&decision);
    }
    env.flush();
    arrivals
}

fn platform(dataset: &Dataset) -> Platform {
    Platform::new(dataset.clone(), Platform::default_feature_space(dataset), 1)
}

/// A deliberately churn-heavy spec: every worker gets an availability window, demand
/// follows a day/night cycle with a mid-horizon surge, and the task mix drifts monthly.
fn churn_heavy_spec(dataset: &Dataset) -> ScenarioSpec {
    let horizon = dataset.horizon();
    let mut spec = ScenarioSpec::new(0xBEAC).with_day_night(DayNightCycle {
        day_from: 8 * 60,
        day_until: 20 * 60,
        day_rate: 1.4,
        night_rate: 0.6,
    });
    for worker in &dataset.workers {
        // Staggered churn: a third retires mid-way, a third joins late, a third stays.
        match worker.id.0 % 3 {
            0 => spec = spec.with_window(worker.id, 0, horizon / 2 + u64::from(worker.id.0)),
            1 => spec = spec.with_window(worker.id, horizon / 3, horizon),
            _ => {}
        }
    }
    let mut month = MINUTES_PER_MONTH;
    while month < horizon {
        spec = spec.with_drift(month, 1, 1.1);
        month += MINUTES_PER_MONTH;
    }
    spec.with_surge(horizon / 2, horizon / 2 + MINUTES_PER_MONTH, 2.0)
}

fn timed_replay(label: &str, dataset: &Dataset) -> f64 {
    let mut env = platform(dataset);
    let start = Instant::now();
    let arrivals = replay(&mut env);
    let elapsed = start.elapsed().as_secs_f64();
    let rate = arrivals as f64 / elapsed.max(1e-9);
    record_value(
        "scenario_throughput",
        &format!("{label}/arrivals_per_sec"),
        rate,
        "arrivals/s",
    );
    record_value(
        "scenario_throughput",
        &format!("{label}/arrivals"),
        arrivals as f64,
        "arrivals",
    );
    rate
}

fn bench_scenario_throughput(c: &mut Criterion) {
    let smoke = smoke_mode();
    let config = if smoke {
        SimConfig::tiny()
    } else {
        SimConfig::crowdspring_replica()
    };
    let dataset = config.generate();
    let spec = churn_heavy_spec(&dataset);

    // One-off scenario compile cost (the only pre-replay work the engine adds).
    let start = Instant::now();
    let churned = spec.apply(&dataset);
    record_value(
        "scenario_throughput",
        "apply/churn_heavy_ms",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );

    let stationary_rate = timed_replay("stationary", &dataset);
    let churn_rate = timed_replay("churn_heavy", &churned);
    // The headline fence: per-arrival replay overhead of the churn-heavy stream.
    record_value(
        "scenario_throughput",
        "overhead/churn_vs_stationary",
        stationary_rate / churn_rate.max(1e-9),
        "x",
    );

    // Registry sweep: per-scenario compile cost at this tier.
    for scenario in named_scenarios(&dataset) {
        let start = Instant::now();
        let perturbed = scenario.spec.apply(&dataset);
        record_value(
            "scenario_throughput",
            &format!("apply/{}_ms", scenario.name),
            start.elapsed().as_secs_f64() * 1e3,
            "ms",
        );
        record_value(
            "scenario_throughput",
            &format!("apply/{}_arrivals", scenario.name),
            perturbed.n_arrivals() as f64,
            "arrivals",
        );
    }

    // Timed samples the harness can repeat: full tiny-tier replays of both streams.
    let mut group = c.benchmark_group("scenario_throughput");
    group.sample_size(10);
    group.bench_function("replay_stationary", |b| {
        b.iter(|| replay(&mut platform(&dataset)))
    });
    group.bench_function("replay_churn_heavy", |b| {
        b.iter(|| replay(&mut platform(&churned)))
    });
    group.bench_function("apply_churn_heavy", |b| b.iter(|| spec.apply(&dataset)));
    group.finish();
}

criterion_group!(benches, bench_scenario_throughput);
criterion_main!(benches);
