//! Parallel session stepping and the concurrent two-learner update — the wall-clock side
//! of the `threads=1 ≡ threads=k` bit-identity contract (`tests/parallel_equivalence.rs`
//! proves the results never change; this bench measures what the threads buy).
//!
//! * `session_stepping/<sessions>s/<threads>t` — a full tiny-dataset replay of N
//!   independent sessions, each paired with its own *training* DDQN agent, driven by
//!   `SessionBatch::run_all_parallel` on a `threads`-wide pool. Sessions are
//!   embarrassingly parallel (each owns its environment, policy and RNG streams), so on
//!   real multi-core hardware the 32-session row should scale to ≥ 2× at 8 threads; on a
//!   single-core container every thread count collapses to roughly the serial time.
//! * `two_learner_update/serial|par_join/<B>` — one DDQN update round of both benefit
//!   branches (worker + requester) at minibatch size B: back-to-back `learn` calls vs the
//!   `ThreadPool::par_join` dispatch `DdqnAgent::observe` uses. The branches share
//!   nothing, so par_join's win is the full overlap minus one scoped-thread spawn.
//!
//! Smoke mode (`--smoke` / `CROWD_BENCH_SMOKE=1`) shrinks the grid and the sample count
//! so CI can build and run the bench without measuring anything meaningful.

use crowd_bench::{criterion_group, criterion_main, synthetic_state, BenchmarkId, Criterion};
use crowd_experiments::{RunnerConfig, Session, SessionBatch};
use crowd_rl_core::{
    DdqnAgent, DdqnConfig, DqnLearner, FutureBranch, StateKind, StateTransformer, Transition,
};
use crowd_sim::{BoxedPolicy, Dataset, Platform, SimConfig};
use crowd_tensor::{Rng, ThreadPool};
use std::sync::Arc;

fn agent_config() -> DdqnConfig {
    DdqnConfig {
        max_tasks: 24,
        hidden_dim: 16,
        num_heads: 2,
        batch_size: 8,
        buffer_size: 128,
        learn_every: 8,
        ..DdqnConfig::default()
    }
}

/// One full replay of `n_sessions` training DDQN agents on `pool`; returns the total
/// evaluated arrivals (the throughput denominator, and a value the optimizer can't drop).
fn run_session_grid(dataset: &Dataset, n_sessions: usize, pool: ThreadPool) -> usize {
    let features = Platform::default_feature_space(dataset);
    let cfg = RunnerConfig::default();
    let mut batch = SessionBatch::new().with_pool(pool);
    let mut policies: Vec<BoxedPolicy> = Vec::new();
    for i in 0..n_sessions {
        // Agents keep their default serial internal pool: the outer session sharding is
        // what this bench measures, and nesting pools would oversubscribe the cores.
        let agent = DdqnAgent::new(
            DdqnConfig {
                seed: 1000 + i as u64,
                ..agent_config().worker_only()
            },
            features.task_dim(),
            features.worker_dim(),
        );
        policies.push(Box::new(agent));
        batch.push(Session::for_dataset(
            dataset,
            &RunnerConfig {
                platform_seed: 9_000 + i as u64,
                ..cfg.clone()
            },
        ));
    }
    batch.run_all_parallel(&mut policies);
    batch
        .finish(&policies)
        .iter()
        .map(|o| o.evaluated_arrivals)
        .sum()
}

fn bench_session_stepping(c: &mut Criterion) {
    let dataset = SimConfig::tiny().generate();
    let (session_counts, thread_counts): (&[usize], &[usize]) = if crowd_bench::smoke_mode() {
        (&[4], &[1, 2])
    } else {
        (&[8, 32], &[1, 2, 4, 8])
    };
    let mut group = c.benchmark_group("session_stepping");
    group.sample_size(3);
    for &sessions in session_counts {
        for &threads in thread_counts {
            group.bench_with_input(
                BenchmarkId::new(format!("{sessions}s"), format!("{threads}t")),
                &threads,
                |b, &threads| {
                    b.iter(|| run_session_grid(&dataset, sessions, ThreadPool::new(threads)))
                },
            );
        }
    }
    group.finish();
}

/// A learner with a pre-filled replay memory of mixed pool sizes and 2 future branches
/// per transition (same fixture shape as `batched_training.rs`).
fn prepared_learner(kind: StateKind, batch_size: usize, seed: u64) -> DqnLearner {
    const MAX_TASKS: usize = 16;
    const TASK_DIM: usize = 8;
    const WORKER_DIM: usize = 8;
    let config = DdqnConfig {
        max_tasks: MAX_TASKS,
        hidden_dim: 32,
        num_heads: 4,
        batch_size,
        buffer_size: 256,
        ..DdqnConfig::default()
    };
    let tf = StateTransformer::new(kind, MAX_TASKS, TASK_DIM, WORKER_DIM);
    let mut rng = Rng::seed_from(seed);
    let mut learner = DqnLearner::new(&config, tf.row_dim(), 0.3, &mut rng);
    let mut fill_rng = Rng::seed_from(seed ^ 0xABCD);
    let n_fill = if crowd_bench::smoke_mode() {
        batch_size + 8
    } else {
        192
    };
    for _ in 0..n_fill {
        let pool = 4 + fill_rng.below(MAX_TASKS - 3);
        let state = synthetic_state(&tf, pool, TASK_DIM, WORKER_DIM, &mut fill_rng);
        let branches: Vec<FutureBranch> = (0..2)
            .map(|_| FutureBranch {
                probability: fill_rng.uniform(0.1, 0.5),
                state: synthetic_state(
                    &tf,
                    1 + fill_rng.below(MAX_TASKS),
                    TASK_DIM,
                    WORKER_DIM,
                    &mut fill_rng,
                ),
            })
            .collect();
        learner.store_transition(Transition {
            action_row: fill_rng.below(pool),
            reward: if fill_rng.unit() < 0.5 { 1.0 } else { 0.0 },
            state,
            branches: Arc::new(branches),
        });
    }
    learner
}

fn bench_two_learner_update(c: &mut Criterion) {
    let batches: &[usize] = if crowd_bench::smoke_mode() {
        &[16]
    } else {
        &[16, 32, 64]
    };
    let mut group = c.benchmark_group("two_learner_update");
    group.sample_size(10);
    for &batch in batches {
        group.bench_with_input(BenchmarkId::new("serial", batch), &batch, |b, &batch| {
            let mut worker = prepared_learner(StateKind::Worker, batch, 11);
            let mut requester = prepared_learner(StateKind::Requester, batch, 22);
            b.iter(|| {
                let w = worker.learn().unwrap().unwrap().loss;
                let r = requester.learn().unwrap().unwrap().loss;
                w + r
            })
        });
        group.bench_with_input(BenchmarkId::new("par_join", batch), &batch, |b, &batch| {
            let mut worker = prepared_learner(StateKind::Worker, batch, 11);
            let mut requester = prepared_learner(StateKind::Requester, batch, 22);
            let pool = ThreadPool::new(2);
            b.iter(|| {
                let (w, r) = pool.par_join(|| worker.learn(), || requester.learn());
                w.unwrap().unwrap().loss + r.unwrap().unwrap().loss
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_stepping, bench_two_learner_update);
criterion_main!(benches);
