//! Per-arrival vs batched decision latency across `N` simultaneous simulations — the
//! micro-benchmark behind `SessionBatch::step_batched`.
//!
//! Two levels are measured at `N ∈ {1, 8, 32, 128}`:
//!
//! * `qnetwork_batched_inference` — raw `SetQNetwork::infer` per state vs one
//!   `SetQNetwork::infer_batch` over the packed `[Σ max_tasks, row_dim]` buffer;
//! * `ddqn_decision_latency` — the full frozen-agent decision path (state build, combined
//!   Q, explorer, ranking) via `N` `act` calls vs one `act_batch` call.
//!
//! Compare `sequential/N` against `batched/N` (both closures process all `N` arrivals, so
//! the printed totals divide by the same `N`). The batched path wins twice: one matmul
//! dispatch and one output allocation per layer are amortised over the whole batch, and
//! the packed `[Σ pool sizes, dim]` buffer carries only *real* task rows — the fixed-shape
//! per-state pass pays full projection and attention cost for every padded row up to
//! `max_tasks`. Per-arrival latency should sit strictly below the sequential path from
//! `N = 8` up.
//!
//! Pool sizes vary per simulation (as they do across a real `SessionBatch` round); the
//! state capacity is the agent's `max_tasks` = 32, the paper's production setting.

use crowd_bench::{criterion_group, criterion_main, synthetic_context, BenchmarkId, Criterion};
use crowd_nn::ParamStore;
use crowd_rl_core::{DdqnAgent, DdqnConfig, SetQNetwork, StateKind, StateTensor, StateTransformer};
use crowd_sim::{ArrivalContext, BatchedPolicy, Decision, Policy};
use crowd_tensor::Rng;

const BATCH_SIZES: &[usize] = &[1, 8, 32, 128];
const MAX_TASKS: usize = 32;
const FEATURE_DIM: usize = 20;

/// Pool size of the `i`-th simulation in a batch: 12..=30 available tasks, varying across
/// the batch the way independent replicas' pools do.
fn pool_size(i: usize) -> usize {
    12 + (i * 7) % 19
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("qnetwork_batched_inference");
    group.sample_size(30);
    let mut rng = Rng::seed_from(0);
    let mut store = ParamStore::new();
    let net = SetQNetwork::new(&mut store, "q", 2 * FEATURE_DIM, 32, 4, &mut rng);
    let transformer = StateTransformer::new(StateKind::Worker, MAX_TASKS, FEATURE_DIM, FEATURE_DIM);
    for &n in BATCH_SIZES {
        let states: Vec<StateTensor> = (0..n)
            .map(|i| {
                transformer.from_context(&synthetic_context(pool_size(i), FEATURE_DIM, i as u64))
            })
            .collect();
        let refs: Vec<&StateTensor> = states.iter().collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                refs.iter()
                    .map(|state| net.infer(&store, state).unwrap().len())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| net.infer_batch(&store, &refs).unwrap().len())
        });
    }
    group.finish();
}

fn bench_agent_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddqn_decision_latency");
    group.sample_size(20);
    for &n in BATCH_SIZES {
        let contexts: Vec<ArrivalContext> = (0..n)
            .map(|i| synthetic_context(pool_size(i), FEATURE_DIM, 100 + i as u64))
            .collect();
        let config = DdqnConfig {
            max_tasks: MAX_TASKS,
            hidden_dim: 32,
            num_heads: 4,
            ..DdqnConfig::default()
        };
        let mut agent = DdqnAgent::new(config, FEATURE_DIM, FEATURE_DIM);
        agent.freeze_exploration();
        agent.freeze_learning();
        let views: Vec<_> = contexts.iter().map(|ctx| ctx.view()).collect();
        let mut decisions: Vec<Decision> = (0..n).map(|_| Decision::new()).collect();
        group.bench_with_input(BenchmarkId::new("per_arrival", n), &n, |b, _| {
            b.iter(|| {
                for (view, decision) in views.iter().zip(decisions.iter_mut()) {
                    agent.act(view, decision);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| agent.act_batch(&views, &mut decisions))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network, bench_agent_decisions);
criterion_main!(benches);
