//! Packed vs sequential DDQN learning step — the training-side counterpart of
//! `batched_inference.rs`.
//!
//! `DqnLearner::learn` differentiates the whole minibatch as one autograd graph
//! (`SetQNetwork::forward_batch` + one in-graph weighted masked MSE) and computes all
//! double-DQN targets with two packed `infer_batch` passes; `learn_sequential` is the
//! retained pre-packing reference (B separate graphs per update, per-branch single-state
//! target inference). Both run the same prioritized sampling on identically seeded
//! learners, so the measured gap is the packing win: no padded-row compute, one
//! forward/backward sweep instead of B, and two target passes instead of
//! `2 · Σ branches`.

use crowd_bench::{criterion_group, criterion_main, synthetic_state, BenchmarkId, Criterion};
use crowd_rl_core::{
    DdqnConfig, DqnLearner, FutureBranch, StateKind, StateTransformer, Transition,
};
use crowd_tensor::Rng;
use std::sync::Arc;

const MAX_TASKS: usize = 16;
const TASK_DIM: usize = 8;
const WORKER_DIM: usize = 8;

/// Builds an identically seeded learner with a pre-filled replay memory: mixed pool sizes
/// (the packed path's unequal segments) and 2 future branches per transition (the target
/// batching win). The learner owns its minibatch-sampling RNG, so identically seeded
/// learners draw identical minibatch sequences.
fn prepared_learner(batch_size: usize) -> DqnLearner {
    let config = DdqnConfig {
        max_tasks: MAX_TASKS,
        hidden_dim: 32,
        num_heads: 4,
        batch_size,
        buffer_size: 256,
        ..DdqnConfig::default()
    };
    let tf = StateTransformer::new(StateKind::Worker, MAX_TASKS, TASK_DIM, WORKER_DIM);
    let mut rng = Rng::seed_from(4242);
    let mut learner = DqnLearner::new(&config, tf.row_dim(), 0.3, &mut rng);
    let mut fill_rng = Rng::seed_from(99);
    let n_fill = if crowd_bench::smoke_mode() {
        batch_size + 8
    } else {
        192
    };
    for _ in 0..n_fill {
        let pool = 4 + fill_rng.below(MAX_TASKS - 3);
        let state = synthetic_state(&tf, pool, TASK_DIM, WORKER_DIM, &mut fill_rng);
        let branches: Vec<FutureBranch> = (0..2)
            .map(|_| FutureBranch {
                probability: fill_rng.uniform(0.1, 0.5),
                state: synthetic_state(
                    &tf,
                    1 + fill_rng.below(MAX_TASKS),
                    TASK_DIM,
                    WORKER_DIM,
                    &mut fill_rng,
                ),
            })
            .collect();
        learner.store_transition(Transition {
            action_row: fill_rng.below(pool),
            reward: if fill_rng.unit() < 0.5 { 1.0 } else { 0.0 },
            state,
            branches: Arc::new(branches),
        });
    }
    learner
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_training");
    group.sample_size(10);

    for &batch in &[16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("packed", batch), &batch, |b, &batch| {
            let mut learner = prepared_learner(batch);
            b.iter(|| learner.learn().unwrap().unwrap().loss)
        });
        group.bench_with_input(
            BenchmarkId::new("sequential", batch),
            &batch,
            |b, &batch| {
                let mut learner = prepared_learner(batch);
                b.iter(|| learner.learn_sequential().unwrap().unwrap().loss)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
