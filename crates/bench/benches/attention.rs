//! Multi-head self-attention forward and backward latency — the dominant cost inside the
//! Q-network (ablation support for the architecture choice of Fig. 3).

use crowd_autograd::Graph;
use crowd_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_nn::{GraphBinding, MultiHeadSelfAttention, ParamStore};
use crowd_tensor::{Matrix, Rng};

fn bench_attention(c: &mut Criterion) {
    let dim = 32;
    let mut group = c.benchmark_group("attention");
    group.sample_size(20);
    for &rows in &[16usize, 64] {
        let mut rng = Rng::seed_from(1);
        let mut store = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut store, "attn", dim, 4, &mut rng);
        let x = Matrix::randn(rows, dim, &mut rng);

        group.bench_with_input(BenchmarkId::new("infer", rows), &rows, |b, _| {
            b.iter(|| attn.infer(&store, &x, None).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("forward_backward", rows), &rows, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let mut binding = GraphBinding::new();
                let xv = g.constant(x.clone());
                let out = attn
                    .forward(&mut g, &store, &mut binding, xv, None)
                    .unwrap();
                let loss = g.squared_sum(out);
                g.backward(loss).unwrap();
                binding.gradients(&g).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
