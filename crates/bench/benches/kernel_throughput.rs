//! Vectorised kernels vs their retained scalar references — the PR 7 raw-speed floor.
//!
//! `Matrix::matmul` / `Matrix::matmul_transpose` are the register-blocked, 8-lane
//! production kernels every `Linear`, `RowwiseFF` and attention projection flows
//! through; `matmul_ref` / `matmul_transpose_ref` are the textbook scalar loops kept
//! as bit-exact oracles (`tests/kernel_equivalence.rs`). This benchmark pins the
//! *performance* half of that relationship: the vectorised kernels must be strictly
//! faster than the references at every shape below, or the blocking is buying
//! nothing and the PR 7 acceptance bar is broken.
//!
//! Shapes cover the stack's real work:
//!
//! * `32x40x64` / `128x64x64` — packed set-Q-network projections (a
//!   `SessionBatch`/`crowd-serve` round's `[Σ pool sizes, dim] × [dim, hidden]`);
//! * `8x64x1` — the per-head attention score column and the MLP head;
//! * `64x64x64` — a square mid-size layer (the blocked kernel's best case);
//! * `5x7x9` — a deliberately lane-hostile remainder shape: small, odd, with `n`
//!   just past the 8-lane boundary — the vectorised path must not *lose* here.
//!
//! `matmul_par` at the same shapes shows where the persistent pool's row-sharding
//! takes over (only above the ~128k multiply-add gate; the small shapes stay serial
//! by design and should match the serial kernel).

use crowd_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_tensor::{Matrix, Rng, ThreadPool};

/// (m, k, n) shapes benchmarked for all kernels; see the module docs for provenance.
const SHAPES: &[(usize, usize, usize)] = &[
    (32, 40, 64),
    (128, 64, 64),
    (8, 64, 1),
    (64, 64, 64),
    (5, 7, 9),
];

fn operands(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = Rng::seed_from(seed);
    let a = Matrix::rand_uniform(m, k, -1.0, 1.0, &mut rng);
    let b = Matrix::rand_uniform(k, n, -1.0, 1.0, &mut rng);
    let bt = Matrix::rand_uniform(n, k, -1.0, 1.0, &mut rng);
    (a, b, bt)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_kernels");
    group.sample_size(40);
    for &(m, k, n) in SHAPES {
        let label = format!("{m}x{k}x{n}");
        let (a, b, _) = operands(m, k, n, 11);
        group.bench_with_input(
            BenchmarkId::new("scalar_ref", &label),
            &label,
            |bench, _| bench.iter(|| a.matmul_ref(&b).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("vectorised", &label),
            &label,
            |bench, _| bench.iter(|| a.matmul(&b).unwrap().len()),
        );
    }
    group.finish();
}

fn bench_matmul_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_transpose_kernels");
    group.sample_size(40);
    for &(m, k, n) in SHAPES {
        let label = format!("{m}x{k}x{n}");
        let (a, _, bt) = operands(m, k, n, 12);
        group.bench_with_input(
            BenchmarkId::new("scalar_ref", &label),
            &label,
            |bench, _| bench.iter(|| a.matmul_transpose_ref(&bt).unwrap().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("vectorised", &label),
            &label,
            |bench, _| bench.iter(|| a.matmul_transpose(&bt).unwrap().len()),
        );
    }
    group.finish();
}

fn bench_parallel_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_persistent_pool");
    group.sample_size(30);
    let pool = ThreadPool::from_env();
    // Large enough to clear the ~128k multiply-add parallel gate; the persistent pool's
    // dispatch cost (channel send + wake, no thread spawn) is what is on trial here.
    for &(m, k, n) in &[(128usize, 64usize, 64usize), (256, 128, 128)] {
        let label = format!("{m}x{k}x{n}");
        let (a, b, _) = operands(m, k, n, 13);
        group.bench_with_input(BenchmarkId::new("serial", &label), &label, |bench, _| {
            bench.iter(|| a.matmul(&b).unwrap().len())
        });
        group.bench_with_input(
            BenchmarkId::new(format!("pool_{}", pool.threads()), &label),
            &label,
            |bench, _| bench.iter(|| a.matmul_par(&b, pool).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_transpose,
    bench_parallel_dispatch
);
criterion_main!(benches);
