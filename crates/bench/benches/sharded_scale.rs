//! Demand-scale sharded-platform benchmark: full replays of the `SimConfig::massive`
//! tier (~1M workers, ~240k tasks — two orders of magnitude over the paper's
//! CrowdSpring trace) through the unsharded `Platform` and through `ShardedEnv` at
//! several shard counts, reporting arrivals/second and process peak RSS.
//!
//! Two kinds of measurements:
//!
//! - **Full-replay rates** (`record_value`, also in the `--json` report): one timed
//!   end-to-end replay per configuration — the honest number for "how fast does a
//!   demand-scale month replay", where per-shard event application fans out over the
//!   worker pool.
//! - **Timed windows** (`bench_function`): the first few thousand arrivals replayed
//!   repeatedly, so the harness can report a median/min/max like every other group.
//!
//! Memory discipline: `VmHWM` (peak RSS) is monotonic for the process lifetime, so the
//! compact (f16) phase runs **first** — its peak is recorded before any f32 arena has a
//! chance to raise the high-water mark — and the f32 phases follow. The per-environment
//! `feature_arena_bytes` probes give the layout-level comparison independent of
//! allocator noise.
//!
//! `--smoke` (CI) shrinks to the tiny dataset and a bounded window; the full tier runs
//! with `cargo bench -p crowd-bench --bench sharded_scale`.

use std::time::Instant;

use crowd_bench::{
    criterion_group, criterion_main, peak_rss_bytes, record_value, smoke_mode, Criterion,
};
use crowd_sim::{Dataset, Decision, Env, Platform, ShardSpec, ShardedEnv, SimConfig};
use crowd_tensor::ThreadPool;

/// Rank the first `SHOWN` pool tasks per arrival — a constant-work stand-in policy, so
/// the numbers isolate the environment (event replay, arenas, routing), not a learner.
const SHOWN: usize = 64;

fn replay<E: Env>(env: &mut E) -> (usize, usize) {
    let mut decision = Decision::new();
    let mut arrivals = 0usize;
    let mut completions = 0usize;
    while env.next_arrival() {
        arrivals += 1;
        let view = env.arrival();
        if view.is_empty() {
            continue;
        }
        decision.clear();
        decision.extend((0..view.n_tasks().min(SHOWN)).map(|i| view.task_id(i)));
        env.apply(&decision);
        if env.feedback().completed.is_some() {
            completions += 1;
        }
    }
    env.flush();
    (arrivals, completions)
}

/// A bounded replay window (first `limit` arrivals) for the repeatable timed samples.
fn replay_window<E: Env>(env: &mut E, limit: usize) -> usize {
    let mut decision = Decision::new();
    let mut arrivals = 0usize;
    while arrivals < limit && env.next_arrival() {
        arrivals += 1;
        let view = env.arrival();
        if view.is_empty() {
            continue;
        }
        decision.clear();
        decision.extend((0..view.n_tasks().min(SHOWN)).map(|i| view.task_id(i)));
        env.apply(&decision);
    }
    arrivals
}

fn sharded(dataset: &Dataset, spec: ShardSpec) -> ShardedEnv {
    let features = Platform::default_feature_space(dataset);
    ShardedEnv::new(dataset.clone(), features, 1, spec)
}

fn timed_replay(label: &str, env: &mut impl Env) {
    let start = Instant::now();
    let (arrivals, completions) = replay(env);
    let elapsed = start.elapsed().as_secs_f64();
    record_value(
        "sharded_scale",
        &format!("{label}/arrivals_per_sec"),
        arrivals as f64 / elapsed.max(1e-9),
        "arrivals/s",
    );
    record_value(
        "sharded_scale",
        &format!("{label}/completions"),
        completions as f64,
        "completions",
    );
}

fn record_peak(label: &str) {
    if let Some(peak) = peak_rss_bytes() {
        record_value("sharded_scale", label, peak as f64, "bytes");
    }
}

fn bench_sharded_scale(c: &mut Criterion) {
    let smoke = smoke_mode();
    // The smoke tier keeps CI fast; the full tier is the demand-scale claim
    // (~590x the paper's worker count, ~102x its task count).
    let config = if smoke {
        SimConfig::tiny()
    } else {
        SimConfig::massive()
    };
    let pool = ThreadPool::from_env();
    let dataset = config.generate();
    record_value(
        "sharded_scale",
        "dataset/workers",
        dataset.workers.len() as f64,
        "workers",
    );
    record_value(
        "sharded_scale",
        "dataset/tasks",
        dataset.tasks.len() as f64,
        "tasks",
    );
    record_peak("rss/after_generate");

    // Cold feature-arena footprint: the f16 arenas store task features at half width.
    let f32_env = sharded(&dataset, ShardSpec::new(8).with_pool(pool));
    let f16_env = sharded(&dataset, ShardSpec::new(8).compact(true).with_pool(pool));
    record_value(
        "sharded_scale",
        "arena_bytes/f32_fresh",
        f32_env.feature_arena_bytes() as f64,
        "bytes",
    );
    record_value(
        "sharded_scale",
        "arena_bytes/f16_fresh",
        f16_env.feature_arena_bytes() as f64,
        "bytes",
    );
    drop((f32_env, f16_env));

    // Phase 1 — compact arenas FIRST (VmHWM is monotonic; see module doc).
    {
        let mut env = sharded(&dataset, ShardSpec::new(8).compact(true).with_pool(pool));
        timed_replay("f16_shards8", &mut env);
        record_value(
            "sharded_scale",
            "arena_bytes/f16_after_replay",
            env.feature_arena_bytes() as f64,
            "bytes",
        );
    }
    record_peak("rss/peak_after_f16");

    // Phase 2 — full-precision: the unsharded baseline, then the shard-count sweep.
    {
        let features = Platform::default_feature_space(&dataset);
        let mut platform = Platform::new(dataset.clone(), features, 1);
        timed_replay("platform_unsharded", &mut platform);
    }
    for n_shards in [1usize, 2, 4, 8] {
        let mut env = sharded(&dataset, ShardSpec::new(n_shards).with_pool(pool));
        timed_replay(&format!("f32_shards{n_shards}"), &mut env);
        if n_shards == 8 {
            record_value(
                "sharded_scale",
                "arena_bytes/f32_after_replay",
                env.feature_arena_bytes() as f64,
                "bytes",
            );
        }
    }
    record_peak("rss/peak_after_f32");

    // Timed windows: bounded replays the harness can sample repeatedly.
    let window = if smoke { 200 } else { 4_000 };
    let mut group = c.benchmark_group("sharded_scale");
    group.sample_size(10);
    group.bench_function("window_platform", |b| {
        b.iter(|| {
            let features = Platform::default_feature_space(&dataset);
            let mut platform = Platform::new(dataset.clone(), features, 1);
            replay_window(&mut platform, window)
        })
    });
    for n_shards in [1usize, 8] {
        group.bench_function(format!("window_f32_shards{n_shards}"), |b| {
            b.iter(|| {
                let mut env = sharded(&dataset, ShardSpec::new(n_shards).with_pool(pool));
                replay_window(&mut env, window)
            })
        });
    }
    group.bench_function("window_f16_shards8", |b| {
        b.iter(|| {
            let mut env = sharded(&dataset, ShardSpec::new(8).compact(true).with_pool(pool));
            replay_window(&mut env, window)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_scale);
criterion_main!(benches);
