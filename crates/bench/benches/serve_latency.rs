//! End-to-end decision latency and saturation throughput of the `crowd-serve`
//! micro-batching service — the serving-path companion to `batched_inference` (which
//! measures the raw Q-network batch forward without queueing).
//!
//! Two phases per (traffic pattern × client count) cell:
//!
//! * **Open-loop latency** — each client thread replays an [`ArrivalSchedule`]
//!   (Poisson or bursty MMPP, time-compressed so the bench models
//!   millions-of-arrivals/day rates in under a second of wall clock), sleeping until
//!   each scheduled arrival and then issuing a blocking `decide`. The recorded latency
//!   is submit→ack: ingress queueing + micro-batch coalescing window + the packed
//!   forward pass + the ack hop. Per-client [`LatencyHistogram`]s merge into one
//!   p50/p99/p999 report per cell.
//! * **Closed-loop saturation** — the same clients issue back-to-back decides with no
//!   think time; the aggregate decisions/second is the service's max sustained
//!   throughput at that concurrency.
//!
//! The policy is a frozen DDQN agent (learning and exploration off): latency jitter
//! from learner ticks would otherwise drown the queueing behaviour this bench isolates,
//! and `update_latency` already measures the learners.
//!
//! The main pattern × client sweep runs **without** a decision log — it measures the
//! pure compute path. A second sweep then re-runs the Poisson cells against two durable
//! backends: `durable_log` (a real decision log, fsync per batch — the price of the ack
//! barrier) and `slow_fsync` (the same log through `Fs::faulty` with a deterministic
//! 2 ms latency injected at every `SyncData` site — how tail latency degrades when the
//! device's flush path slows down, without needing a slow device). Every cell's
//! p50/p99/p999 and achieved rate go through `record_value`, so a `--json` /
//! `CROWD_BENCH_JSON` report tracks all three backends.
//!
//! Smoke mode (`--smoke` / `CROWD_BENCH_SMOKE=1`) shrinks arrivals per cell so CI can
//! build and run the bench quickly; the printed numbers are then meaningless.

use crowd_bench::{record_value, smoke_mode, write_json_report, LatencyHistogram};
use crowd_ckpt::{FaultPlan, Fs, OpClass};
use crowd_experiments::{collect_arrival_contexts, ddqn_config_for, ddqn_for, Scale};
use crowd_serve::{ArrivalSchedule, LogConfig, ServeConfig, Server, TrafficPattern};
use crowd_sim::{ArrivalContext, SimConfig};
use crowd_tensor::ThreadPool;
use std::time::{Duration, Instant};

/// One open-loop latency cell: `n_clients` threads replay disjoint-seeded schedules of
/// `pattern` (aggregate arrival rate split evenly), each recording submit→ack latency.
fn latency_cell(
    contexts: &[ArrivalContext],
    server: &Server,
    pattern: &TrafficPattern,
    n_clients: usize,
    arrivals_per_client: usize,
) -> (LatencyHistogram, f64) {
    let start = Instant::now();
    let histograms = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_index in 0..n_clients {
            let client = server.client();
            let pattern = *pattern;
            handles.push(scope.spawn(move || {
                let mut histogram = LatencyHistogram::new();
                let schedule = ArrivalSchedule::new(pattern, 0xBE7C_0000 + client_index as u64);
                let mut next_at = Duration::ZERO;
                for (k, offset) in schedule.take(arrivals_per_client).enumerate() {
                    next_at += offset;
                    let target = start + next_at;
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let context = contexts[(client_index + k * n_clients) % contexts.len()].clone();
                    let submitted = Instant::now();
                    client.decide(context).expect("serve decide failed");
                    histogram.record(submitted.elapsed());
                }
                histogram
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Vec<_>>()
    });
    let elapsed = start.elapsed();
    let mut merged = LatencyHistogram::new();
    for h in &histograms {
        merged.merge(h);
    }
    let achieved = merged.count() as f64 / elapsed.as_secs_f64();
    (merged, achieved)
}

/// Closed-loop saturation: `n_clients` threads issue `per_client` decides back to back;
/// returns aggregate decisions/second.
fn saturation_cell(
    contexts: &[ArrivalContext],
    server: &Server,
    n_clients: usize,
    per_client: usize,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client_index in 0..n_clients {
            let client = server.client();
            scope.spawn(move || {
                for k in 0..per_client {
                    let context = contexts[(client_index + k * n_clients) % contexts.len()].clone();
                    client.decide(context).expect("serve decide failed");
                }
            });
        }
    });
    (n_clients * per_client) as f64 / start.elapsed().as_secs_f64()
}

/// Splits an aggregate traffic pattern evenly across `n_clients` replaying threads.
fn per_client_share(pattern: &TrafficPattern, n_clients: usize) -> TrafficPattern {
    let share = 1.0 / n_clients as f64;
    match *pattern {
        TrafficPattern::Poisson { rate } => TrafficPattern::Poisson { rate: rate * share },
        TrafficPattern::Bursty {
            base_rate,
            burst_rate,
            mean_burst_secs,
            mean_quiet_secs,
        } => TrafficPattern::Bursty {
            base_rate: base_rate * share,
            burst_rate: burst_rate * share,
            mean_burst_secs,
            mean_quiet_secs,
        },
    }
}

/// A fresh frozen-DDQN server for one cell, optionally with a decision log attached.
fn start_server(dataset: &crowd_sim::Dataset, log: Option<LogConfig>) -> Server {
    let mut policy = ddqn_for(dataset, ddqn_config_for(Scale::Tiny));
    policy.freeze_learning();
    policy.freeze_exploration();
    Server::start(
        Box::new(policy),
        ServeConfig {
            pool: ThreadPool::from_env(),
            log,
            ..ServeConfig::default()
        },
    )
    .expect("server start failed")
}

/// Puts one latency cell's tail percentiles and achieved rate into the JSON report
/// ([`record_value`] also prints them in the `group/label` style).
fn record_cell(label: &str, histogram: &mut LatencyHistogram, achieved: f64) {
    record_value(
        "serve_latency",
        &format!("{label}/p50"),
        histogram.p50().as_nanos() as f64,
        "ns",
    );
    record_value(
        "serve_latency",
        &format!("{label}/p99"),
        histogram.p99().as_nanos() as f64,
        "ns",
    );
    record_value(
        "serve_latency",
        &format!("{label}/p999"),
        histogram.p999().as_nanos() as f64,
        "ns",
    );
    record_value(
        "serve_latency",
        &format!("{label}/achieved"),
        achieved,
        "decisions/s",
    );
}

fn main() {
    let smoke = smoke_mode();
    let arrivals_per_client = if smoke { 25 } else { 1200 };
    let saturation_per_client = if smoke { 25 } else { 1000 };
    let client_counts: &[usize] = &[1, 2, 4];

    let dataset = SimConfig::tiny().generate();
    let contexts = collect_arrival_contexts(&dataset, 0xCAFE, 64);
    assert!(!contexts.is_empty(), "tiny dataset produced no arrivals");

    // Aggregate rates are time-compressed: 2 000/s sustained ≈ 172.8 M arrivals/day,
    // i.e. the bench replays a day-scale stream in well under a second per cell.
    let patterns = [
        TrafficPattern::Poisson { rate: 2_000.0 },
        TrafficPattern::Bursty {
            base_rate: 800.0,
            burst_rate: 6_000.0,
            mean_burst_secs: 0.05,
            mean_quiet_secs: 0.15,
        },
    ];

    for pattern in &patterns {
        for &n_clients in client_counts {
            let per_client_pattern = per_client_share(pattern, n_clients);
            let server = start_server(&dataset, None);

            let (mut histogram, achieved) = latency_cell(
                &contexts,
                &server,
                &per_client_pattern,
                n_clients,
                arrivals_per_client,
            );
            let summary = histogram.summary();
            println!(
                "serve_latency/{}/{}clients: {} achieved={:.0}/s (target {:.0}/s)",
                pattern.label(),
                n_clients,
                summary,
                achieved,
                pattern.mean_rate(),
            );
            record_cell(
                &format!("{}/{}clients", pattern.label(), n_clients),
                &mut histogram,
                achieved,
            );

            let throughput = saturation_cell(&contexts, &server, n_clients, saturation_per_client);
            let (_policy, report) = server.shutdown();
            assert_eq!(
                report.decisions as usize,
                n_clients * (arrivals_per_client + saturation_per_client)
            );
            record_value(
                "serve_latency",
                &format!("saturation/{n_clients}clients"),
                throughput,
                "decisions/s",
            );
            println!(
                "serve_latency/saturation/{}clients: max round {} (closed loop)",
                n_clients, report.max_round_decisions,
            );
        }
    }

    // Durable-backend sweep: the Poisson cells again, but with a decision log attached.
    // `durable_log` pays a real fsync per committed batch (the ack-barrier price);
    // `slow_fsync` routes the same log through a faulty `Fs` that injects a
    // deterministic 2 ms latency at every `SyncData` site — the tail-latency profile of
    // a degraded flush path, reproducible on any machine. Batches coalesced per round
    // amortise the sync, so p999 should move far more than p50.
    let log_arrivals = if smoke { 25 } else { 400 };
    let poisson = TrafficPattern::Poisson { rate: 2_000.0 };
    let scratch = std::env::temp_dir().join(format!("serve_latency_bench_{}", std::process::id()));
    let backends: [(&str, Fs); 2] = [
        ("durable_log", Fs::real()),
        (
            "slow_fsync",
            Fs::faulty(FaultPlan::slow(OpClass::SyncData, Duration::from_millis(2))).0,
        ),
    ];
    for (backend, fs) in &backends {
        for &n_clients in client_counts {
            let dir = scratch.join(format!("{backend}_{n_clients}"));
            let mut log_config = LogConfig::new(&dir);
            log_config.fs = fs.clone();
            let server = start_server(&dataset, Some(log_config));

            let per_client_pattern = per_client_share(&poisson, n_clients);
            let (mut histogram, achieved) = latency_cell(
                &contexts,
                &server,
                &per_client_pattern,
                n_clients,
                log_arrivals,
            );
            let (_policy, report) = server.shutdown();
            assert_eq!(report.decisions as usize, n_clients * log_arrivals);
            assert_eq!(report.log_error, None, "decision log failed during bench");
            record_cell(
                &format!("{backend}/{n_clients}clients"),
                &mut histogram,
                achieved,
            );
            println!(
                "serve_latency/{}/{}clients: {} ({} log batches)",
                backend,
                n_clients,
                histogram.summary(),
                report.log_batches,
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    write_json_report();
}
