//! Q-network inference latency as the available-task pool grows (the decision-time half of
//! the paper's efficiency story).

use crowd_bench::synthetic_context;
use crowd_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_nn::ParamStore;
use crowd_rl_core::{SetQNetwork, StateKind, StateTransformer};
use crowd_tensor::Rng;

fn bench_forward(c: &mut Criterion) {
    let feature_dim = 20;
    let hidden = 32;
    let mut group = c.benchmark_group("qnetwork_forward");
    group.sample_size(20);
    for &pool in &[10usize, 50, 100] {
        let mut rng = Rng::seed_from(0);
        let mut store = ParamStore::new();
        let net = SetQNetwork::new(&mut store, "q", 2 * feature_dim, hidden, 4, &mut rng);
        let transformer = StateTransformer::new(StateKind::Worker, pool, feature_dim, feature_dim);
        let ctx = synthetic_context(pool, feature_dim, 7);
        let state = transformer.from_context(&ctx);
        group.bench_with_input(BenchmarkId::from_parameter(pool), &pool, |b, _| {
            b.iter(|| net.infer(&store, &state).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
