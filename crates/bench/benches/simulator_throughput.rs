//! Platform event-replay throughput: how fast the simulator itself runs when a trivial
//! policy is attached (shows the experiment harness is not the bottleneck), plus the
//! head-to-head comparison between the owned (clone-per-arrival) compatibility path and
//! the zero-copy `Env` path introduced by the borrowed-view redesign.

use crowd_bench::{criterion_group, criterion_main, Criterion};
use crowd_sim::{Action, Decision, Env, Platform, SimConfig};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);

    // Owned path: every arrival materialises an ArrivalContext (cloning every task feature
    // vector in the pool plus the worker feature) and every decision allocates an Action.
    group.bench_function("replay_tiny_full_pool/owned", |b| {
        let dataset = SimConfig::tiny().generate();
        b.iter(|| {
            let features = Platform::default_feature_space(&dataset);
            let mut platform = Platform::new(dataset.clone(), features, 1);
            let mut completions = 0usize;
            while let Some(arrival) = platform.next_arrival_owned() {
                let ctx = arrival.context;
                if ctx.available.is_empty() {
                    continue;
                }
                let action = Action::Rank(ctx.available.iter().map(|t| t.id).collect());
                if platform.apply_owned(&ctx, &action).completed.is_some() {
                    completions += 1;
                }
            }
            completions
        })
    });

    // Zero-copy path: borrowed views over the platform's arenas and one reusable Decision
    // buffer for the whole replay.
    group.bench_function("replay_tiny_full_pool/zero_copy", |b| {
        let dataset = SimConfig::tiny().generate();
        b.iter(|| {
            let features = Platform::default_feature_space(&dataset);
            let mut platform = Platform::new(dataset.clone(), features, 1);
            let mut decision = Decision::new();
            let mut completions = 0usize;
            while platform.next_arrival() {
                let view = platform.arrival();
                if view.is_empty() {
                    continue;
                }
                decision.clear();
                decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                platform.apply(&decision);
                if platform.feedback().completed.is_some() {
                    completions += 1;
                }
            }
            completions
        })
    });

    // Same comparison on the larger dataset, where pools are deeper and the per-arrival
    // clone volume of the owned path grows accordingly.
    group.bench_function("replay_small_full_pool/owned", |b| {
        let dataset = SimConfig::small().generate();
        b.iter(|| {
            let features = Platform::default_feature_space(&dataset);
            let mut platform = Platform::new(dataset.clone(), features, 1);
            let mut completions = 0usize;
            while let Some(arrival) = platform.next_arrival_owned() {
                let ctx = arrival.context;
                if ctx.available.is_empty() {
                    continue;
                }
                let action = Action::Rank(ctx.available.iter().map(|t| t.id).collect());
                if platform.apply_owned(&ctx, &action).completed.is_some() {
                    completions += 1;
                }
            }
            completions
        })
    });

    group.bench_function("replay_small_full_pool/zero_copy", |b| {
        let dataset = SimConfig::small().generate();
        b.iter(|| {
            let features = Platform::default_feature_space(&dataset);
            let mut platform = Platform::new(dataset.clone(), features, 1);
            let mut decision = Decision::new();
            let mut completions = 0usize;
            while platform.next_arrival() {
                let view = platform.arrival();
                if view.is_empty() {
                    continue;
                }
                decision.clear();
                decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                platform.apply(&decision);
                if platform.feedback().completed.is_some() {
                    completions += 1;
                }
            }
            completions
        })
    });

    group.bench_function("generate_small_dataset", |b| {
        b.iter(|| SimConfig::small().generate().events.len())
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
