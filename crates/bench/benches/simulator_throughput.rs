//! Platform event-replay throughput: how fast the simulator itself runs when a trivial
//! policy is attached (shows the experiment harness is not the bottleneck).

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_sim::{Action, Platform, SimConfig};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);

    group.bench_function("replay_tiny_dataset_full_pool", |b| {
        let dataset = SimConfig::tiny().generate();
        b.iter(|| {
            let features = Platform::default_feature_space(&dataset);
            let mut platform = Platform::new(dataset.clone(), features, 1);
            let mut completions = 0usize;
            while let Some(arrival) = platform.next_arrival() {
                let ctx = arrival.context;
                if ctx.available.is_empty() {
                    continue;
                }
                let action = Action::Rank(ctx.available.iter().map(|t| t.id).collect());
                if platform.apply(&ctx, &action).completed.is_some() {
                    completions += 1;
                }
            }
            completions
        })
    });

    group.bench_function("generate_small_dataset", |b| {
        b.iter(|| SimConfig::small().generate().events.len())
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
