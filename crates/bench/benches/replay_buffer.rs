//! Prioritized replay push/sample/update throughput (Sec. IV-D uses prioritized experience
//! replay; this bench shows its overhead is negligible next to the network update).

use crowd_bench::{criterion_group, criterion_main, Criterion};
use crowd_rl_kit::{PrioritizedReplay, ReplayBuffer};
use crowd_tensor::Rng;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_buffer");
    group.sample_size(30);

    group.bench_function("uniform_push_sample_1000", |b| {
        b.iter(|| {
            let mut buf = ReplayBuffer::new(1000);
            let mut rng = Rng::seed_from(0);
            for i in 0..1000u32 {
                buf.push(i);
            }
            buf.sample(64, &mut rng).len()
        })
    });

    group.bench_function("prioritized_push_sample_update_1000", |b| {
        b.iter(|| {
            let mut buf = PrioritizedReplay::new(1000);
            let mut rng = Rng::seed_from(0);
            for i in 0..1000u32 {
                buf.push(i);
            }
            let samples = buf.sample(64, &mut rng);
            for s in &samples {
                buf.update_priority(s.index, 0.5);
            }
            samples.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
