//! Reusable latency-distribution accounting for the serving benches and the load
//! generator: record individual request latencies, read exact p50/p99/p999 tail
//! quantiles back out.
//!
//! Tail percentiles are the serving metric that matters — a mean hides the queueing
//! spikes micro-batching is supposed to bound — so the histogram stores every sample
//! (8 bytes each) and computes **exact** nearest-rank percentiles by sorting on demand,
//! rather than approximating with fixed buckets. At the millions-of-arrivals/day rates
//! the benches model, a full day of samples is a few hundred megabytes at most and a
//! bench run records far less; exactness is worth more here than constant memory.

use std::fmt;
use std::time::Duration;

/// Collects per-request latencies and answers exact percentile queries.
///
/// Samples are kept as nanosecond counts; the sort needed by percentile queries is
/// performed lazily and cached until the next [`record`](LatencyHistogram::record).
#[derive(Debug, Default, Clone)]
pub struct LatencyHistogram {
    nanos: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.nanos
            .push(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.sorted = false;
    }

    /// Absorbs every sample of `other` (e.g. merging per-client histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.nanos.extend_from_slice(&other.nanos);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.nanos.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nanos.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.nanos.sort_unstable();
            self.sorted = true;
        }
    }

    /// Exact nearest-rank percentile: the smallest recorded latency `v` such that at
    /// least `q`% of all samples are ≤ `v`. `q` is clamped to `(0, 100]`; the histogram
    /// must be non-empty.
    pub fn percentile(&mut self, q: f64) -> Duration {
        assert!(!self.is_empty(), "percentile of an empty histogram");
        self.ensure_sorted();
        let q = q.clamp(f64::MIN_POSITIVE, 100.0);
        // The epsilon absorbs binary round-off in q/100 (e.g. 99.9% of 1000 samples is
        // 999.0000000000001, which must rank 999, not ceil to 1000).
        let rank = ((q / 100.0) * self.nanos.len() as f64 - 1e-9).ceil() as usize;
        Duration::from_nanos(self.nanos[rank.clamp(1, self.nanos.len()) - 1])
    }

    /// Median latency.
    pub fn p50(&mut self) -> Duration {
        self.percentile(50.0)
    }

    /// 99th-percentile latency.
    pub fn p99(&mut self) -> Duration {
        self.percentile(99.0)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&mut self) -> Duration {
        self.percentile(99.9)
    }

    /// Largest recorded latency.
    pub fn max(&mut self) -> Duration {
        self.percentile(100.0)
    }

    /// Mean latency (exact, `u128` accumulation cannot overflow).
    pub fn mean(&self) -> Duration {
        assert!(!self.is_empty(), "mean of an empty histogram");
        let total: u128 = self.nanos.iter().map(|&n| u128::from(n)).sum();
        Duration::from_nanos((total / self.nanos.len() as u128) as u64)
    }

    /// One-line summary of the distribution's tail shape.
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.p50(),
            p99: self.p99(),
            p999: self.p999(),
            max: self.max(),
        }
    }
}

/// Snapshot of a latency distribution: count, mean and the tail quantiles the serving
/// benches report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples behind the quantiles.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// 99.9th-percentile latency.
    pub p999: Duration,
    /// Largest recorded latency.
    pub max: Duration,
}

/// Prints a duration at µs-grade resolution with a human unit (`850ns`, `12.4µs`,
/// `3.21ms`, `1.05s`) — latency tables stay aligned and readable across 6 orders of
/// magnitude.
pub fn format_latency(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50={} p99={} p999={} max={} mean={} (n={})",
            format_latency(self.p50),
            format_latency(self.p99),
            format_latency(self.p999),
            format_latency(self.max),
            format_latency(self.mean),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 µs, shuffled insertion order must not matter.
        for i in (1..=1000u64).rev() {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.p50(), Duration::from_micros(500));
        assert_eq!(h.p99(), Duration::from_micros(990));
        assert_eq!(h.p999(), Duration::from_micros(999));
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert_eq!(h.percentile(0.1), Duration::from_micros(1));
        assert_eq!(h.mean(), Duration::from_nanos(500_500));
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(3));
        for q in [0.001, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(q), Duration::from_millis(3));
        }
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn merge_combines_per_client_histograms() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 1..=50u64 {
            a.record(Duration::from_micros(i));
            b.record(Duration::from_micros(50 + i));
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.p50(), Duration::from_micros(50));
        assert_eq!(a.max(), Duration::from_micros(100));
    }

    #[test]
    fn recording_after_a_query_invalidates_the_sort_cache() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(10));
        assert_eq!(h.max(), Duration::from_micros(10));
        h.record(Duration::from_micros(5));
        assert_eq!(h.p50(), Duration::from_micros(5));
        assert_eq!(h.max(), Duration::from_micros(10));
    }

    #[test]
    fn latency_formatting_picks_readable_units() {
        assert_eq!(format_latency(Duration::from_nanos(850)), "850ns");
        assert_eq!(format_latency(Duration::from_nanos(12_400)), "12.4µs");
        assert_eq!(format_latency(Duration::from_micros(3_210)), "3.21ms");
        assert_eq!(format_latency(Duration::from_millis(1_050)), "1.05s");
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_percentile_panics() {
        LatencyHistogram::new().percentile(50.0);
    }
}
