//! Process memory probes for the scale benches: peak and current resident set size,
//! read from `/proc/self/status` (`VmHWM` / `VmRSS`).
//!
//! `VmHWM` is the kernel's high-water mark of the process's resident set — it only ever
//! grows, so a bench comparing configurations must measure the *smaller* configuration
//! first (the sharded scale bench runs its f16 phase before the f32 one for exactly this
//! reason). On platforms without procfs both probes return `None` and the benches simply
//! omit the RSS lines.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None` when
/// `/proc/self/status` is unavailable or unparseable.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// Current resident set size of this process in bytes (`VmRSS`), or `None` when
/// `/proc/self/status` is unavailable or unparseable.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Value of a `kB`-denominated `/proc/self/status` field, e.g. `VmHWM:    123456 kB`.
fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kib(&status, field)
}

fn parse_status_kib(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    line[field.len()..]
        .split_whitespace()
        .next()?
        .parse::<u64>()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_fields() {
        let status = "Name:\tbench\nVmHWM:\t  123456 kB\nVmRSS:\t     789 kB\n";
        assert_eq!(parse_status_kib(status, "VmHWM:"), Some(123_456));
        assert_eq!(parse_status_kib(status, "VmRSS:"), Some(789));
        assert_eq!(parse_status_kib(status, "VmPeak:"), None);
        assert_eq!(parse_status_kib("VmHWM:\tgarbage kB\n", "VmHWM:"), None);
    }

    #[test]
    fn live_probes_are_sane_on_linux() {
        // On Linux procfs is always there; peak >= current > 0 and both are page-sized.
        if let (Some(peak), Some(current)) = (peak_rss_bytes(), current_rss_bytes()) {
            assert!(peak >= current);
            assert!(current > 0);
            assert_eq!(peak % 1024, 0);
        }
    }

    #[test]
    fn peak_is_monotonic() {
        let before = peak_rss_bytes();
        // Touch a few MiB so the high-water mark cannot go down (it never does).
        let buf = vec![1u8; 4 << 20];
        std::hint::black_box(&buf);
        let after = peak_rss_bytes();
        if let (Some(b), Some(a)) = (before, after) {
            assert!(a >= b);
        }
    }
}
