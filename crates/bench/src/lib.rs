//! Shared helpers for the Criterion micro-benchmarks.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `qnetwork_forward` — Q-network inference latency vs pool size;
//! * `batched_inference` — per-arrival vs batched decision latency at `N ∈ {1, 8, 32,
//!   128}` simultaneous simulations (the `SessionBatch::step_batched` hot path);
//! * `attention` — multi-head self-attention forward/backward latency;
//! * `update_latency` — one full model update (LinUCB vs DDQN) vs pool size, the
//!   micro-benchmark version of Table I and Fig. 10(d);
//! * `replay_buffer` — prioritized replay push/sample throughput;
//! * `simulator_throughput` — platform event replay throughput.

use crowd_sim::{ArrivalContext, TaskId, TaskSnapshot, WorkerId};
use crowd_tensor::Rng;

pub mod harness;

pub use harness::{Bencher, BenchmarkGroup, BenchmarkId, Criterion};

/// Builds a synthetic arrival context with `n_tasks` available tasks and `feature_dim`-wide
/// features, used by several benches.
pub fn synthetic_context(n_tasks: usize, feature_dim: usize, seed: u64) -> ArrivalContext {
    let mut rng = Rng::seed_from(seed);
    ArrivalContext {
        time: 1_000,
        worker_id: WorkerId(0),
        worker_feature: (0..feature_dim).map(|_| rng.unit()).collect(),
        worker_quality: 0.7,
        is_new_worker: false,
        available: (0..n_tasks as u32)
            .map(|i| TaskSnapshot {
                id: TaskId(i),
                feature: (0..feature_dim).map(|_| rng.unit()).collect(),
                quality: rng.unit(),
                award: 50.0,
                category: (i % 5) as u16,
                domain: (i % 7) as u16,
                deadline: 2_000 + 250 * i as u64,
                completions: 0,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_context_has_requested_shape() {
        let ctx = synthetic_context(12, 6, 1);
        assert_eq!(ctx.available.len(), 12);
        assert_eq!(ctx.worker_feature.len(), 6);
        assert!(ctx.available.iter().all(|t| t.feature.len() == 6));
    }

    #[test]
    fn synthetic_context_is_deterministic() {
        assert_eq!(synthetic_context(4, 3, 9), synthetic_context(4, 3, 9));
    }
}
