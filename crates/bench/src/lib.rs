//! Shared helpers for the Criterion micro-benchmarks.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `qnetwork_forward` — Q-network inference latency vs pool size;
//! * `batched_inference` — per-arrival vs batched decision latency at `N ∈ {1, 8, 32,
//!   128}` simultaneous simulations (the `SessionBatch::step_batched` hot path);
//! * `attention` — multi-head self-attention forward/backward latency;
//! * `update_latency` — one full model update (LinUCB vs DDQN) vs pool size, the
//!   micro-benchmark version of Table I and Fig. 10(d);
//! * `replay_buffer` — prioritized replay push/sample throughput;
//! * `simulator_throughput` — platform event replay throughput;
//! * `batched_training` — packed (one autograd graph per minibatch) vs sequential
//!   (per-transition) DDQN learning step at `B ∈ {16, 32, 64}`;
//! * `parallel_throughput` — full-replay session stepping across a sessions × threads
//!   grid (`SessionBatch::run_all_parallel`) and the serial vs `par_join` two-learner
//!   update round;
//! * `serve_latency` — end-to-end decision latency (p50/p99/p999) and max sustained
//!   throughput of the `crowd-serve` micro-batching service under Poisson and bursty
//!   open-loop load at several client counts (uses [`latency::LatencyHistogram`]),
//!   plus durable-backend cells: a real decision log (fsync per batch) and the same
//!   log behind `Fs::faulty` with a deterministic 2 ms `SyncData` latency — the
//!   tail-latency cost of a degraded flush path, reproducible on any machine;
//! * `kernel_throughput` — the vectorised matmul kernels against their retained
//!   scalar references at every benchmarked shape (the speed half of the
//!   `tests/kernel_equivalence.rs` fence: the blocked kernels must be strictly
//!   faster), plus the serial-vs-persistent-pool dispatch edge on large products;
//! * `sharded_scale` — `ShardedEnv` replay throughput (arrivals/sec) across shard
//!   counts at ~100× the paper's dataset scale, plus peak RSS ([`rss::peak_rss_bytes`])
//!   for the compact (f16) vs full-precision (f32) feature arenas.
//!
//! Every bench supports `--json <path>` / `CROWD_BENCH_JSON` for machine-readable
//! results (see [`harness`]).

use crowd_rl_core::{StateTensor, StateTransformer};
use crowd_sim::{ArrivalContext, TaskId, TaskSnapshot, WorkerId};
use crowd_tensor::Rng;

pub mod ckpt_fixtures;
pub mod harness;
pub mod latency;
pub mod rss;

pub use harness::{
    json_report_path, record_value, smoke_mode, write_json_report, Bencher, BenchmarkGroup,
    BenchmarkId, Criterion,
};
pub use latency::{format_latency, LatencyHistogram, LatencySummary};
pub use rss::{current_rss_bytes, peak_rss_bytes};

/// Builds a synthetic arrival context with `n_tasks` available tasks and `feature_dim`-wide
/// features, used by several benches.
pub fn synthetic_context(n_tasks: usize, feature_dim: usize, seed: u64) -> ArrivalContext {
    let mut rng = Rng::seed_from(seed);
    ArrivalContext {
        time: 1_000,
        worker_id: WorkerId(0),
        worker_feature: (0..feature_dim).map(|_| rng.unit()).collect(),
        worker_quality: 0.7,
        is_new_worker: false,
        available: (0..n_tasks as u32)
            .map(|i| TaskSnapshot {
                id: TaskId(i),
                feature: (0..feature_dim).map(|_| rng.unit()).collect(),
                quality: rng.unit(),
                award: 50.0,
                category: (i % 5) as u16,
                domain: (i % 7) as u16,
                deadline: 2_000 + 250 * i as u64,
                completions: 0,
            })
            .collect(),
    }
}

/// One random task snapshot with `task_dim`-wide features, for learner fixtures (states,
/// transitions). Shared by `benches/batched_training.rs` and
/// `tests/packed_learning_equivalence.rs` so the fixtures cannot drift apart.
pub fn synthetic_snapshot(id: u32, task_dim: usize, rng: &mut Rng) -> TaskSnapshot {
    TaskSnapshot {
        id: TaskId(id),
        feature: (0..task_dim).map(|_| rng.uniform(-1.0, 1.0)).collect(),
        quality: rng.uniform(0.0, 1.0),
        award: rng.uniform(1.0, 20.0),
        category: 0,
        domain: 0,
        deadline: 1_000 + rng.below(5_000) as u64,
        completions: 0,
    }
}

/// A random state over `pool` tasks built through `tf` (worker feature and quality drawn
/// from `rng`; `pool` may be 0 for an empty-pool state). `worker_dim` must match the
/// transformer's worker dimension.
pub fn synthetic_state(
    tf: &StateTransformer,
    pool: usize,
    task_dim: usize,
    worker_dim: usize,
    rng: &mut Rng,
) -> StateTensor {
    let snaps: Vec<TaskSnapshot> = (0..pool as u32)
        .map(|i| synthetic_snapshot(i, task_dim, rng))
        .collect();
    let worker: Vec<f32> = (0..worker_dim).map(|_| rng.uniform(0.0, 1.0)).collect();
    tf.build(&snaps, &worker, rng.uniform(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_state_has_requested_pool() {
        use crowd_rl_core::StateKind;
        let tf = StateTransformer::new(StateKind::Worker, 8, 4, 3);
        let mut rng = Rng::seed_from(5);
        let st = synthetic_state(&tf, 5, 4, 3, &mut rng);
        assert_eq!(st.real_tasks, 5);
        assert_eq!(st.features.shape(), (8, 7));
        assert_eq!(synthetic_state(&tf, 0, 4, 3, &mut rng).real_tasks, 0);
    }

    #[test]
    fn synthetic_context_has_requested_shape() {
        let ctx = synthetic_context(12, 6, 1);
        assert_eq!(ctx.available.len(), 12);
        assert_eq!(ctx.worker_feature.len(), 6);
        assert!(ctx.available.iter().all(|t| t.feature.len() == 6));
    }

    #[test]
    fn synthetic_context_is_deterministic() {
        assert_eq!(synthetic_context(4, 3, 9), synthetic_context(4, 3, 9));
    }
}
