//! Standalone load generator for the `crowd-serve` decision service: replays Poisson or
//! bursty (MMPP) open-loop traffic from N concurrent client threads against a live
//! server and reports the decision-latency distribution (p50/p99/p999) plus achieved
//! throughput.
//!
//! Where `benches/serve_latency.rs` sweeps a fixed grid for CI, this binary is the
//! hands-on tool: pick a pattern, a rate and a client count, optionally attach a durable
//! decision log or enable online learning, and watch the tail latencies.
//!
//! ```text
//! cargo run --release -p crowd-bench --bin serve_load -- \
//!     --pattern bursty --rate 5000 --clients 8 --arrivals 20000 --learn --log /tmp/dlog
//! ```
//!
//! `--rate` is arrivals/second aggregate across all clients (5 000/s ≈ 432 M/day: the
//! service's target envelope is millions of arrivals per day, so second-scale rates in
//! the thousands stress well past it). The pool comes from `--threads`/`CROWD_THREADS`.
//!
//! Self-healing knobs: `--retry` sends every request through
//! [`Client::decide_with_retry`] (bounded exponential backoff on `Saturated`/`Degraded`
//! answers — requests that never touched the policy), counting requests still shed at
//! the deadline instead of aborting; `--shed-ms <n>` arms the staleness bound
//! (`ServeConfig::shed_staler_than`), so decides older than `n` ms are answered
//! `Degraded` rather than served on stale state. Together they show the
//! degrade-shed-heal loop under a rate the service cannot sustain.
//!
//! [`Client::decide_with_retry`]: crowd_serve::Client::decide_with_retry

use crowd_bench::LatencyHistogram;
use crowd_experiments::{collect_arrival_contexts, ddqn_config_for, ddqn_for, Scale};
use crowd_serve::{
    ArrivalSchedule, LogConfig, RetryPolicy, ServeConfig, ServeDecision, Server, TrafficPattern,
};
use crowd_sim::{ArrivalContext, PolicyFeedback, SimConfig};
use crowd_tensor::ThreadPool;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Options {
    pattern: &'static str,
    rate: f64,
    clients: usize,
    arrivals: usize,
    learn: bool,
    log: Option<PathBuf>,
    retry: bool,
    shed_ms: Option<u64>,
}

impl Options {
    fn from_args() -> Self {
        let mut opts = Options {
            pattern: "poisson",
            rate: 2_000.0,
            clients: 4,
            arrivals: 8_000,
            learn: false,
            log: None,
            retry: false,
            shed_ms: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |flag: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{flag} expects a value"))
            };
            match arg.as_str() {
                "--pattern" => {
                    opts.pattern = match value("--pattern").as_str() {
                        "poisson" => "poisson",
                        "bursty" => "bursty",
                        other => panic!("--pattern must be poisson or bursty (got {other:?})"),
                    }
                }
                "--rate" => opts.rate = value("--rate").parse().expect("--rate: number"),
                "--clients" => {
                    opts.clients = value("--clients").parse().expect("--clients: integer")
                }
                "--arrivals" => {
                    opts.arrivals = value("--arrivals").parse().expect("--arrivals: integer")
                }
                "--learn" => opts.learn = true,
                "--log" => opts.log = Some(PathBuf::from(value("--log"))),
                "--retry" => opts.retry = true,
                "--shed-ms" => {
                    opts.shed_ms = Some(value("--shed-ms").parse().expect("--shed-ms: integer"))
                }
                other => panic!("unknown argument {other:?} (see module docs for usage)"),
            }
        }
        assert!(opts.clients > 0, "--clients must be positive");
        assert!(opts.rate > 0.0, "--rate must be positive");
        opts
    }

    /// The per-client traffic pattern: an even share of the aggregate rate.
    fn client_pattern(&self) -> TrafficPattern {
        let share = self.rate / self.clients as f64;
        match self.pattern {
            "poisson" => TrafficPattern::Poisson { rate: share },
            _ => TrafficPattern::Bursty {
                base_rate: share * 0.4,
                burst_rate: share * 3.0,
                mean_burst_secs: 0.05,
                mean_quiet_secs: 0.15,
            },
        }
    }
}

/// Synthetic outcome for a served decision, mirroring the integration tests: the worker
/// completes the top-ranked task.
fn feedback_for(context: &ArrivalContext, decision: &ServeDecision) -> PolicyFeedback {
    PolicyFeedback {
        time: context.time,
        worker_id: context.worker_id,
        worker_quality: context.worker_quality,
        shown: decision.shown.clone(),
        completed: decision.shown.first().map(|&t| (t, 0)),
        quality_gain: 0.125,
        worker_feature_before: context.worker_feature.clone(),
        worker_feature_after: context.worker_feature.clone(),
    }
}

fn main() {
    let opts = Options::from_args();
    let dataset = SimConfig::tiny().generate();
    let contexts = collect_arrival_contexts(&dataset, 0xCAFE, 64);
    assert!(!contexts.is_empty(), "tiny dataset produced no arrivals");

    let mut policy = ddqn_for(&dataset, ddqn_config_for(Scale::Tiny));
    if !opts.learn {
        policy.freeze_learning();
        policy.freeze_exploration();
    }
    let config = ServeConfig {
        pool: ThreadPool::from_env(),
        log: opts.log.clone().map(LogConfig::new),
        shed_staler_than: opts.shed_ms.map(Duration::from_millis),
        ..ServeConfig::default()
    };
    let server = Server::start(Box::new(policy), config).expect("server start failed");

    let pattern = opts.client_pattern();
    let per_client = opts.arrivals.div_ceil(opts.clients);
    println!(
        "serve_load: {} aggregate {:.0}/s ({:.1} M/day), {} clients x {} arrivals, learn={}, log={}",
        opts.pattern,
        opts.rate,
        opts.rate * 86_400.0 / 1e6,
        opts.clients,
        per_client,
        opts.learn,
        opts.log.as_deref().map(|p| p.display().to_string()).unwrap_or_else(|| "off".into()),
    );

    let start = Instant::now();
    let histograms = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_index in 0..opts.clients {
            let client = server.client();
            let contexts = &contexts;
            let learn = opts.learn;
            let retry = opts.retry;
            handles.push(scope.spawn(move || {
                let retry_policy = RetryPolicy::default();
                let mut histogram = LatencyHistogram::new();
                let mut shed = 0u64;
                let schedule = ArrivalSchedule::new(pattern, 0x10AD_0000 + client_index as u64);
                let mut next_at = Duration::ZERO;
                for (k, offset) in schedule.take(per_client).enumerate() {
                    next_at += offset;
                    let target = start + next_at;
                    let now = Instant::now();
                    if target > now {
                        std::thread::sleep(target - now);
                    }
                    let context =
                        contexts[(client_index + k * opts.clients) % contexts.len()].clone();
                    let submitted = Instant::now();
                    let result = if retry {
                        client.decide_with_retry(&context, &retry_policy)
                    } else {
                        client.decide(context.clone())
                    };
                    let served = match result {
                        Ok(served) => served,
                        // A Saturated/Degraded answer means the request never touched
                        // the policy — count it shed and move on; any other error is a
                        // real failure.
                        Err(crowd_serve::ServeError::Saturated)
                        | Err(crowd_serve::ServeError::Degraded { .. }) => {
                            shed += 1;
                            continue;
                        }
                        Err(err) => panic!("decide failed: {err}"),
                    };
                    histogram.record(submitted.elapsed());
                    if learn {
                        client
                            .feedback(served.request_id, feedback_for(&context, &served))
                            .expect("feedback failed");
                    }
                }
                (histogram, shed)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Vec<_>>()
    });
    let elapsed = start.elapsed();
    let (_policy, report) = server.shutdown();

    let mut merged = LatencyHistogram::new();
    let mut client_shed = 0u64;
    for (h, shed) in &histograms {
        merged.merge(h);
        client_shed += shed;
    }
    println!("latency: {}", merged.summary());
    println!(
        "throughput: {:.0}/s achieved over {:.2}s; {} rounds, mean {:.2} / max {} decisions per round",
        merged.count() as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64(),
        report.rounds,
        report.mean_round_decisions(),
        report.max_round_decisions,
    );
    if let Some(err) = report.log_error {
        eprintln!("decision log error: {err}");
        std::process::exit(1);
    }
    if opts.log.is_some() {
        println!(
            "decision log: {} record batches, {} segment rotations",
            report.log_batches, report.log_rotations
        );
    }
    if client_shed > 0 || report.shed_decides > 0 || report.healed > 0 {
        println!(
            "shedding: {client_shed} requests gave up at the retry deadline; server shed {} decides / {} feedbacks over {} degraded rounds, {} outages healed",
            report.shed_decides, report.shed_feedbacks, report.degraded_rounds, report.healed,
        );
    }
}
