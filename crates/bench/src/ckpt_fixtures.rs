//! Checkpoint-format fixtures: the deterministic golden snapshot behind the
//! format-stability CI check, and the corruption helpers behind the loader robustness
//! tests.
//!
//! The golden snapshot is built **without any transcendental math** (no `ln`/`cos`/
//! `powf` except exact cases) — every float is an explicit literal or the product of
//! pure integer/IEEE-exact arithmetic — so its bytes are identical on every platform
//! and toolchain. `tests/checkpoint_equivalence.rs::format_stability_golden_snapshot`
//! asserts `golden_snapshot().to_bytes()` equals the committed
//! `tests/fixtures/format_v1.ckpt` byte for byte: any change to what the writer emits
//! (field added/reordered/re-encoded) fails CI until the format version is bumped and a
//! new golden file is committed consciously.

use crowd_ckpt::{Snapshot, StateWriter};
use crowd_nn::{Adam, Optimizer, ParamStore};
use crowd_rl_kit::{EpsilonGreedy, PrioritizedReplay, Schedule};
use crowd_tensor::{Matrix, Rng};

/// Builds the version-1 golden snapshot: one exemplar of every layer the format
/// covers at the kit level — RNG, parameters, Adam moments, prioritized replay (with
/// its sum tree), an exploration schedule — all from explicit values.
pub fn golden_snapshot() -> Snapshot {
    let mut snap = Snapshot::new();

    // RNG: integer-only seeding (SplitMix64), advanced a few integer draws.
    let mut rng = Rng::seed_from(0x5EED);
    for _ in 0..5 {
        rng.next_u64();
    }
    snap.put("rng", &rng);

    // Parameters: explicit matrices, exercising negative zero and subnormals.
    let mut store = ParamStore::new();
    let w = store.register(
        "golden.w",
        Matrix::from_vec(2, 3, vec![1.0, -2.5, 0.5, -0.0, 1.0e-40, 3.25]).unwrap(),
    );
    store.register(
        "golden.b",
        Matrix::from_vec(1, 3, vec![0.125, -0.375, 2.0]).unwrap(),
    );
    snap.put("params", &store);

    // Adam: one step on an exact-arithmetic gradient (powers of two throughout the
    // update keep every operation IEEE-exact across platforms).
    let mut adam = Adam::new(0.5);
    let grad = Matrix::from_vec(2, 3, vec![0.5, -0.25, 1.0, 2.0, -4.0, 0.0625]).unwrap();
    adam.step(&mut store, &[(w, grad)]).unwrap();
    snap.put("adam", &adam);

    // Prioritized replay over plain integers, α = 1 so priority updates stay exact
    // (`powf(x, 1.0)` is the identity under IEEE-754).
    let mut replay: PrioritizedReplay<u32> = PrioritizedReplay::new(4).with_alpha(1.0);
    for i in 0..6u32 {
        replay.push(i * 11);
    }
    replay.update_priority(1, 2.5);
    replay.update_priority(3, 0.25);
    snap.put("replay", &replay);

    // An exploration schedule position.
    snap.put(
        "explore",
        &EpsilonGreedy::new(Schedule::Linear {
            start: 0.9,
            end: 0.98,
            steps: 2000,
        }),
    );

    // A raw section exercising every scalar writer primitive.
    let mut w = StateWriter::new();
    w.put_u8(0xA5);
    w.put_bool(true);
    w.put_u16(0xBEEF);
    w.put_u32(0xDEAD_BEEF);
    w.put_u64(0x0123_4567_89AB_CDEF);
    w.put_f32(f32::NAN);
    w.put_f64(-0.0);
    w.put_str("golden");
    w.put_f32_slice(&[f32::MIN_POSITIVE, f32::MAX]);
    w.put_duration(std::time::Duration::new(7, 123_456_789));
    snap.put_raw("scalars", w.into_bytes());

    snap
}

/// Flips one bit in `bytes[pos]` (robustness-test helper).
pub fn flip_byte(bytes: &[u8], pos: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[pos] ^= 0x10;
    out
}

/// Truncates `bytes` to `len` (robustness-test helper).
pub fn truncate(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// Replaces the header's format-version field (robustness-test helper).
pub fn with_version(bytes: &[u8], version: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[8..12].copy_from_slice(&version.to_le_bytes());
    out
}

/// Replaces the magic bytes (robustness-test helper).
pub fn with_magic(bytes: &[u8], magic: &[u8; 8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[..8].copy_from_slice(magic);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_snapshot_is_deterministic_and_valid() {
        let a = golden_snapshot().to_bytes();
        let b = golden_snapshot().to_bytes();
        assert_eq!(
            a, b,
            "the golden snapshot must encode identically every time"
        );
        let file = crowd_ckpt::SnapshotFile::from_bytes(a).unwrap();
        assert_eq!(
            file.section_names().collect::<Vec<_>>(),
            ["rng", "params", "adam", "replay", "explore", "scalars"]
        );
    }

    #[test]
    fn corruption_helpers_produce_loader_errors() {
        use crowd_ckpt::{CkptError, SnapshotFile};
        let clean = golden_snapshot().to_bytes();
        assert!(SnapshotFile::from_bytes(clean.clone()).is_ok());
        assert!(matches!(
            SnapshotFile::from_bytes(with_magic(&clean, b"NOTCKPT!")),
            Err(CkptError::BadMagic { .. })
        ));
        assert!(matches!(
            SnapshotFile::from_bytes(with_version(&clean, 99)),
            Err(CkptError::UnsupportedVersion { found: 99, .. })
        ));
        assert!(SnapshotFile::from_bytes(truncate(&clean, clean.len() - 1)).is_err());
        let last = clean.len() - 1;
        assert!(matches!(
            SnapshotFile::from_bytes(flip_byte(&clean, last)),
            Err(CkptError::CrcMismatch { .. })
        ));
    }
}
