//! A tiny self-contained benchmark harness with a Criterion-compatible surface.
//!
//! The container this workspace builds in has no network access, so the real `criterion`
//! crate cannot be fetched; this module provides the small subset of its API the benches
//! under `benches/` use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`). Timings are wall-clock medians
//! over `sample_size` samples, printed as `group/name: <median> (min .. max)`.
//!
//! # Smoke mode
//!
//! Passing `--smoke` on the bench command line (`cargo bench -p crowd-bench -- --smoke`)
//! or setting `CROWD_BENCH_SMOKE=1` collapses every group's sample count to the minimum,
//! so CI can *build and run* every bench quickly without measuring anything meaningful —
//! bench code can no longer bit-rot un-compiled. Benches with heavy per-case setup can
//! additionally query [`smoke_mode`] to shrink their own workloads.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// True when the benches were invoked in quick smoke mode: the `--smoke` argument (the CI
/// bench-smoke job passes it through `cargo bench -- --smoke`) or `CROWD_BENCH_SMOKE=1`.
/// The harness then pins every group's sample count to the minimum; benches may also use
/// this to shrink their own setup (fewer parameter points, smaller datasets).
pub fn smoke_mode() -> bool {
    std::env::args().any(|arg| arg == "--smoke")
        || std::env::var_os("CROWD_BENCH_SMOKE").is_some_and(|v| v == "1")
}

/// Samples per benchmark in smoke mode (the minimum the harness accepts).
const SMOKE_SAMPLES: usize = 3;

/// Entry point object handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if smoke_mode() { SMOKE_SAMPLES } else { 20 },
        }
    }
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark. Ignored in smoke mode, which pins the count
    /// to the minimum so every bench runs fast in CI.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if smoke_mode() {
            SMOKE_SAMPLES
        } else {
            n.max(3)
        };
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.label, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; output is printed as benches run).
    pub fn finish(self) {}

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{}/{label}: median {} (min {} .. max {}) over {} samples",
            self.name,
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            samples.len()
        );
    }
}

/// Collects timed samples of the closure under benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after a few untimed warm-up runs).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        for _ in 0..2 {
            std_black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Criterion-compatible group macro: defines a function running each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Criterion-compatible main macro: runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness_test");
        group.sample_size(5);
        let mut ran = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        // 2 warmup + 5 timed.
        assert_eq!(ran, 7);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
