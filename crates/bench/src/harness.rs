//! A tiny self-contained benchmark harness with a Criterion-compatible surface.
//!
//! The container this workspace builds in has no network access, so the real `criterion`
//! crate cannot be fetched; this module provides the small subset of its API the benches
//! under `benches/` use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`). Timings are wall-clock medians
//! over `sample_size` samples, printed as `group/name: <median> (min .. max)`.
//!
//! # Smoke mode
//!
//! Passing `--smoke` on the bench command line (`cargo bench -p crowd-bench -- --smoke`)
//! or setting `CROWD_BENCH_SMOKE=1` collapses every group's sample count to the minimum,
//! so CI can *build and run* every bench quickly without measuring anything meaningful —
//! bench code can no longer bit-rot un-compiled. Benches with heavy per-case setup can
//! additionally query [`smoke_mode`] to shrink their own workloads.
//!
//! # Machine-readable output
//!
//! Passing `--json <path>` (or setting `CROWD_BENCH_JSON=<path>`) makes the harness also
//! write every result it printed — timed medians plus one-shot values recorded through
//! [`record_value`] (throughput, peak RSS) — to `<path>` as a JSON document when the
//! bench binary exits (`criterion_main!` calls [`write_json_report`]). CI archives these
//! files so the perf trajectory is tracked across PRs instead of living only in commit
//! messages. The document shape:
//!
//! ```json
//! {
//!   "timings": [{"group": "...", "label": "...", "median_ns": 0,
//!                "min_ns": 0, "max_ns": 0, "samples": 0}],
//!   "values":  [{"group": "...", "label": "...", "value": 0.0, "unit": "..."}]
//! }
//! ```

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One timed result, queued for the JSON report.
#[derive(Debug, Clone)]
struct TimingRecord {
    group: String,
    label: String,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
}

/// One non-timing measurement (throughput, bytes, …), queued for the JSON report.
#[derive(Debug, Clone)]
struct ValueRecord {
    group: String,
    label: String,
    value: f64,
    unit: String,
}

static TIMINGS: Mutex<Vec<TimingRecord>> = Mutex::new(Vec::new());
static VALUES: Mutex<Vec<ValueRecord>> = Mutex::new(Vec::new());

/// Records a one-shot non-timing measurement (arrivals/sec, peak RSS bytes, …): printed
/// immediately in the same `group/label` style as timed results, and included in the
/// JSON report when one was requested.
pub fn record_value(group: &str, label: &str, value: f64, unit: &str) {
    println!("{group}/{label}: {value} {unit}");
    VALUES.lock().unwrap().push(ValueRecord {
        group: group.to_string(),
        label: label.to_string(),
        value,
        unit: unit.to_string(),
    });
}

/// The JSON report path requested via `--json <path>` or `CROWD_BENCH_JSON`, if any.
pub fn json_report_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--json" {
            if let Some(path) = args.next() {
                return Some(path.into());
            }
        } else if let Some(path) = arg.strip_prefix("--json=") {
            return Some(path.into());
        }
    }
    std::env::var_os("CROWD_BENCH_JSON").map(Into::into)
}

/// Writes every recorded timing and value to the requested JSON report file, if a path
/// was given ([`json_report_path`]). Called by `criterion_main!` after all groups ran;
/// idempotent and a no-op without a path. Errors are reported to stderr, not panicked —
/// a failed report write must not fail the bench run itself.
pub fn write_json_report() {
    let Some(path) = json_report_path() else {
        return;
    };
    let timings = TIMINGS.lock().unwrap();
    let values = VALUES.lock().unwrap();
    let mut out = String::from("{\n  \"timings\": [");
    for (i, t) in timings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"group\": {}, \"label\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}",
            json_string(&t.group),
            json_string(&t.label),
            t.median_ns,
            t.min_ns,
            t.max_ns,
            t.samples
        ));
    }
    out.push_str("\n  ],\n  \"values\": [");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"group\": {}, \"label\": {}, \"value\": {}, \"unit\": {}}}",
            json_string(&v.group),
            json_string(&v.label),
            json_number(v.value),
            json_string(&v.unit)
        ));
    }
    out.push_str("\n  ]\n}\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("warning: failed to write bench JSON report {path:?}: {err}");
    } else {
        println!("bench JSON report written to {}", path.display());
    }
}

/// JSON string literal with the escapes the spec requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Infinity; clamp those to null).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// True when the benches were invoked in quick smoke mode: the `--smoke` argument (the CI
/// bench-smoke job passes it through `cargo bench -- --smoke`) or `CROWD_BENCH_SMOKE=1`.
/// The harness then pins every group's sample count to the minimum; benches may also use
/// this to shrink their own setup (fewer parameter points, smaller datasets).
pub fn smoke_mode() -> bool {
    std::env::args().any(|arg| arg == "--smoke")
        || std::env::var_os("CROWD_BENCH_SMOKE").is_some_and(|v| v == "1")
}

/// Samples per benchmark in smoke mode (the minimum the harness accepts).
const SMOKE_SAMPLES: usize = 3;

/// Entry point object handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if smoke_mode() { SMOKE_SAMPLES } else { 20 },
        }
    }
}

/// Identifier of one benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark. Ignored in smoke mode, which pins the count
    /// to the minimum so every bench runs fast in CI.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if smoke_mode() {
            SMOKE_SAMPLES
        } else {
            n.max(3)
        };
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.label, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; output is printed as benches run).
    pub fn finish(self) {}

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{}/{label}: median {} (min {} .. max {}) over {} samples",
            self.name,
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            samples.len()
        );
        TIMINGS.lock().unwrap().push(TimingRecord {
            group: self.name.clone(),
            label: label.to_string(),
            median_ns: median.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: samples.len(),
        });
    }
}

/// Collects timed samples of the closure under benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after a few untimed warm-up runs).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        for _ in 0..2 {
            std_black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Criterion-compatible group macro: defines a function running each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Criterion-compatible main macro: runs every group, then writes the JSON report when
/// one was requested (`--json <path>` / `CROWD_BENCH_JSON`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::harness::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness_test");
        group.sample_size(5);
        let mut ran = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        // 2 warmup + 5 timed.
        assert_eq!(ran, 7);
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("bell\u{7}"), "\"bell\\u0007\"");
    }

    #[test]
    fn json_numbers_stay_valid_json() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn runs_and_recorded_values_reach_the_registries() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("registry_test");
        group.sample_size(3);
        group.bench_function("timed", |b| b.iter(|| 1 + 1));
        group.finish();
        record_value("registry_test", "one_shot", 42.0, "units");
        let timings = TIMINGS.lock().unwrap();
        assert!(timings
            .iter()
            .any(|t| t.group == "registry_test" && t.label == "timed" && t.samples == 3));
        drop(timings);
        let values = VALUES.lock().unwrap();
        assert!(values
            .iter()
            .any(|v| v.group == "registry_test" && v.label == "one_shot" && v.value == 42.0));
    }
}
