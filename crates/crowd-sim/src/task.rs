//! Task entities: what requesters publish on the platform.

/// Opaque identifier of a task (index into the dataset's task table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index into [`crate::Dataset::tasks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Checkpoint format: the raw `u32` index.
impl crowd_ckpt::SaveState for TaskId {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_u32(self.0);
    }
}

impl crowd_ckpt::DecodeState for TaskId {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        Ok(TaskId(r.take_u32()?))
    }
}

/// A crowdsourcing task as published by a requester.
///
/// Following Sec. IV-A, the attributes that matter for recommendation are the award
/// (remuneration), the category (task autonomy proxy) and the domain (skill variety proxy),
/// plus the lifetime window set by the requester.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Identifier; equals the task's position in the dataset table.
    pub id: TaskId,
    /// Requester who published the task.
    pub requester: u32,
    /// Category index in `[0, n_categories)`.
    pub category: u16,
    /// Domain index in `[0, n_domains)`.
    pub domain: u16,
    /// Monetary award for completing the task (arbitrary currency units).
    pub award: f32,
    /// Creation time in minutes since the start of the simulated horizon.
    pub created_at: u64,
    /// Expiration time (deadline) in minutes since the start of the horizon.
    pub deadline: u64,
}

impl Task {
    /// True when the task is available (created and not yet expired) at `time`.
    pub fn is_available_at(&self, time: u64) -> bool {
        self.created_at <= time && time < self.deadline
    }

    /// Task lifetime in minutes.
    pub fn lifetime(&self) -> u64 {
        self.deadline.saturating_sub(self.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task {
            id: TaskId(3),
            requester: 1,
            category: 2,
            domain: 4,
            award: 120.0,
            created_at: 100,
            deadline: 500,
        }
    }

    #[test]
    fn availability_window() {
        let t = task();
        assert!(!t.is_available_at(99));
        assert!(t.is_available_at(100));
        assert!(t.is_available_at(499));
        assert!(!t.is_available_at(500));
    }

    #[test]
    fn lifetime_and_index() {
        let t = task();
        assert_eq!(t.lifetime(), 400);
        assert_eq!(t.id.index(), 3);
    }

    #[test]
    fn lifetime_saturates_when_misordered() {
        let mut t = task();
        t.deadline = 50;
        assert_eq!(t.lifetime(), 0);
    }
}
