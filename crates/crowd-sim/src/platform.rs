//! The platform environment: replays the event stream, exposes the available-task pool to a
//! policy for each worker arrival and applies the worker's (simulated) feedback.

use crate::behavior::BehaviorModel;
use crate::dataset::Dataset;
use crate::event::EventKind;
use crate::features::FeatureSpace;
use crate::policy::{Action, ArrivalContext, PolicyFeedback, TaskSnapshot};
use crate::quality::dixit_stiglitz;
use crate::task::TaskId;
use crate::worker::WorkerId;
use crowd_tensor::Rng;

/// Dynamic state of one task while the simulation runs.
#[derive(Debug, Clone, Default)]
struct TaskState {
    completer_qualities: Vec<f32>,
    quality: f32,
}

/// Dynamic state of one worker while the simulation runs.
#[derive(Debug, Clone)]
struct WorkerState {
    feature: Vec<f32>,
    seen: bool,
    completions: usize,
}

/// A pending worker arrival produced by [`Platform::next_arrival`].
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// The observable context handed to the policy.
    pub context: ArrivalContext,
}

/// The crowdsourcing platform environment.
///
/// `Platform` owns all dynamic state (available pool, task qualities, worker features) and
/// replays the dataset's event stream. The interaction loop is:
///
/// ```text
/// while let Some(arrival) = platform.next_arrival() {
///     let action = policy.act(&arrival.context);
///     let feedback = platform.apply(&arrival.context, &action);
///     policy.observe(&arrival.context, &feedback);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    dataset: Dataset,
    features: FeatureSpace,
    behavior: BehaviorModel,
    rng: Rng,
    // Dynamic state.
    available: Vec<TaskId>,
    task_states: Vec<TaskState>,
    worker_states: Vec<WorkerState>,
    next_event: usize,
    current_time: u64,
    completed_total: usize,
}

impl Platform {
    /// Creates a platform over a dataset with the default behaviour model.
    pub fn new(dataset: Dataset, features: FeatureSpace, seed: u64) -> Self {
        Platform::with_behavior(dataset, features, BehaviorModel::default(), seed)
    }

    /// Creates a platform with an explicit behaviour model.
    pub fn with_behavior(
        dataset: Dataset,
        features: FeatureSpace,
        behavior: BehaviorModel,
        seed: u64,
    ) -> Self {
        let task_states = vec![TaskState::default(); dataset.tasks.len()];
        let worker_states = dataset
            .workers
            .iter()
            .map(|_| WorkerState {
                feature: features.initial_worker_feature(),
                seen: false,
                completions: 0,
            })
            .collect();
        Platform {
            dataset,
            features,
            behavior,
            rng: Rng::seed_from(seed),
            available: Vec::new(),
            task_states,
            worker_states,
            next_event: 0,
            current_time: 0,
            completed_total: 0,
        }
    }

    /// The feature space used to embed tasks and workers.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.features
    }

    /// The underlying immutable dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Current simulation time (minutes since horizon start).
    pub fn current_time(&self) -> u64 {
        self.current_time
    }

    /// Total number of completions applied so far.
    pub fn total_completions(&self) -> usize {
        self.completed_total
    }

    /// Ids of the currently available tasks.
    pub fn available_tasks(&self) -> &[TaskId] {
        &self.available
    }

    /// Current Dixit–Stiglitz quality of a task.
    pub fn task_quality(&self, task: TaskId) -> f32 {
        self.task_states[task.index()].quality
    }

    /// Current observable feature of a worker.
    pub fn worker_feature(&self, worker: WorkerId) -> &[f32] {
        &self.worker_states[worker.index()].feature
    }

    /// Number of tasks a worker has completed so far.
    pub fn worker_completions(&self, worker: WorkerId) -> usize {
        self.worker_states[worker.index()].completions
    }

    /// Sum of all task qualities (the requester-side objective the paper maximises).
    pub fn total_task_quality(&self) -> f32 {
        self.task_states.iter().map(|t| t.quality).sum()
    }

    /// True when the whole event stream has been consumed.
    pub fn finished(&self) -> bool {
        self.next_event >= self.dataset.events.len()
    }

    fn snapshot(&self, id: TaskId) -> TaskSnapshot {
        let task = &self.dataset.tasks[id.index()];
        let state = &self.task_states[id.index()];
        TaskSnapshot {
            id,
            feature: self.features.task_feature(task),
            quality: state.quality,
            award: task.award,
            category: task.category,
            domain: task.domain,
            deadline: task.deadline,
            completions: state.completer_qualities.len(),
        }
    }

    /// Advances the event stream to the next worker arrival, applying task creations and
    /// expirations on the way, and returns the decision context. Returns `None` when the
    /// stream is exhausted.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        while self.next_event < self.dataset.events.len() {
            let event = self.dataset.events[self.next_event];
            self.next_event += 1;
            self.current_time = event.time;
            match event.kind {
                EventKind::TaskCreated(id) => {
                    self.available.push(id);
                }
                EventKind::TaskExpired(id) => {
                    self.available.retain(|&t| t != id);
                }
                EventKind::WorkerArrival(worker_id) => {
                    let state = &mut self.worker_states[worker_id.index()];
                    let is_new_worker = !state.seen;
                    state.seen = true;
                    let worker = &self.dataset.workers[worker_id.index()];
                    let context = ArrivalContext {
                        time: event.time,
                        worker_id,
                        worker_feature: self.worker_states[worker_id.index()].feature.clone(),
                        worker_quality: worker.quality,
                        is_new_worker,
                        available: self.available.iter().map(|&t| self.snapshot(t)).collect(),
                    };
                    return Some(Arrival { context });
                }
            }
        }
        None
    }

    /// Applies a policy's action for the given arrival: the worker browses the shown tasks
    /// with the cascade behaviour model, and the completion (if any) updates the worker
    /// feature and the task quality. Tasks in the action that are not currently available are
    /// ignored (they cannot be shown).
    pub fn apply(&mut self, ctx: &ArrivalContext, action: &Action) -> PolicyFeedback {
        let worker = self.dataset.workers[ctx.worker_id.index()].clone();
        let shown: Vec<TaskId> = action
            .shown_order()
            .into_iter()
            .filter(|t| self.available.contains(t))
            .collect();
        let shown_tasks: Vec<&crate::task::Task> =
            shown.iter().map(|t| &self.dataset.tasks[t.index()]).collect();
        let completed_position = self
            .behavior
            .browse(&worker, shown_tasks.iter().copied(), &mut self.rng);

        let before = self.worker_states[ctx.worker_id.index()].feature.clone();
        let mut after = before.clone();
        let mut quality_gain = 0.0;
        let completed = completed_position.map(|pos| {
            let task_id = shown[pos];
            let p = self.dataset.quality_exponent;
            let state = &mut self.task_states[task_id.index()];
            let old_quality = state.quality;
            state.completer_qualities.push(worker.quality);
            state.quality = dixit_stiglitz(&state.completer_qualities, p);
            quality_gain = state.quality - old_quality;

            let task_feature = self
                .features
                .task_feature(&self.dataset.tasks[task_id.index()]);
            self.features.update_worker_feature(&mut after, &task_feature);
            let wstate = &mut self.worker_states[ctx.worker_id.index()];
            wstate.feature = after.clone();
            wstate.completions += 1;
            self.completed_total += 1;
            (task_id, pos)
        });

        PolicyFeedback {
            time: ctx.time,
            worker_id: ctx.worker_id,
            worker_quality: worker.quality,
            shown,
            completed,
            quality_gain,
            worker_feature_before: before,
            worker_feature_after: after,
        }
    }

    /// Builds the default feature space for a dataset: one award bucket per 25 currency units
    /// (at least 4 buckets) and an exponential worker-feature decay of 0.8.
    pub fn default_feature_space(dataset: &Dataset) -> FeatureSpace {
        let max_award = dataset
            .tasks
            .iter()
            .map(|t| t.award)
            .fold(1.0f32, f32::max);
        let buckets = ((max_award / 25.0).ceil() as usize).clamp(4, 12);
        FeatureSpace::new(
            dataset.n_categories,
            dataset.n_domains,
            buckets,
            max_award,
            0.8,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SimConfig;
    use crate::policy::Action;

    fn platform() -> Platform {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        Platform::new(ds, fs, 99)
    }

    #[test]
    fn arrivals_are_replayed_in_time_order() {
        let mut p = platform();
        let mut last = 0;
        let mut count = 0;
        while let Some(arrival) = p.next_arrival() {
            assert!(arrival.context.time >= last);
            last = arrival.context.time;
            count += 1;
            // Never show expired or not-yet-created tasks.
            for snap in &arrival.context.available {
                let task = &p.dataset().tasks[snap.id.index()];
                assert!(task.is_available_at(arrival.context.time));
            }
        }
        assert!(count > 0);
        assert!(p.finished());
    }

    #[test]
    fn first_visit_is_flagged_as_new_worker() {
        let mut p = platform();
        let mut seen = std::collections::HashSet::new();
        while let Some(arrival) = p.next_arrival() {
            let first = seen.insert(arrival.context.worker_id);
            assert_eq!(arrival.context.is_new_worker, first);
        }
    }

    #[test]
    fn completions_update_quality_and_worker_feature() {
        let mut p = platform();
        let mut any_completion = false;
        while let Some(arrival) = p.next_arrival() {
            if arrival.context.available.is_empty() {
                continue;
            }
            // Show the full pool so the probability of some completion is high.
            let action = Action::Rank(arrival.context.available.iter().map(|t| t.id).collect());
            let fb = p.apply(&arrival.context, &action);
            if let Some((task, pos)) = fb.completed {
                any_completion = true;
                assert!(pos < fb.shown.len());
                assert_eq!(fb.shown[pos], task);
                assert!(fb.quality_gain > 0.0);
                assert!(p.task_quality(task) > 0.0);
                // The post-completion feature reflects the completed task: a cold-start
                // worker adopts the task feature outright, otherwise it moves towards it.
                if fb.worker_feature_before.iter().all(|&v| v == 0.0) {
                    let task_feature = p
                        .feature_space()
                        .task_feature(&p.dataset().tasks[task.index()]);
                    assert_eq!(fb.worker_feature_after, task_feature);
                }
                assert_eq!(
                    p.worker_feature(arrival.context.worker_id),
                    fb.worker_feature_after.as_slice()
                );
            } else {
                assert_eq!(fb.quality_gain, 0.0);
                assert_eq!(fb.worker_feature_before, fb.worker_feature_after);
            }
        }
        assert!(any_completion, "no completion in the whole run");
        assert!(p.total_completions() > 0);
        assert!(p.total_task_quality() > 0.0);
    }

    #[test]
    fn unavailable_tasks_in_action_are_ignored() {
        let mut p = platform();
        let arrival = p.next_arrival().unwrap();
        // A task id that is certainly not in the current pool: one that expires before the
        // first arrival or simply an id excluded from the pool list.
        let bogus = p
            .dataset()
            .tasks
            .iter()
            .map(|t| t.id)
            .find(|id| !p.available_tasks().contains(id))
            .unwrap();
        let fb = p.apply(&arrival.context, &Action::Assign(bogus));
        assert!(fb.shown.is_empty());
        assert!(fb.completed.is_none());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let ds = SimConfig::tiny().generate();
            let fs = Platform::default_feature_space(&ds);
            let mut p = Platform::new(ds, fs, seed);
            let mut completions = 0;
            while let Some(arrival) = p.next_arrival() {
                if arrival.context.available.is_empty() {
                    continue;
                }
                let action = Action::Rank(arrival.context.available.iter().map(|t| t.id).collect());
                if p.apply(&arrival.context, &action).completed.is_some() {
                    completions += 1;
                }
            }
            completions
        };
        assert_eq!(run(5), run(5));
        // Different behaviour seeds usually give different outcomes.
        assert!(run(5) != run(6) || run(5) != run(7));
    }
}
