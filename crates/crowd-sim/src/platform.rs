//! The platform environment: replays the event stream, exposes the available-task pool to a
//! policy for each worker arrival and applies the worker's (simulated) feedback.
//!
//! `Platform` implements the zero-copy [`Env`] interface. All dynamic state is kept in
//! flat struct-of-arrays storage — a task-feature arena filled once at construction, a
//! worker-feature arena, per-task quality/completion arrays — so an [`ArrivalView`] is a
//! bundle of borrowed slices and building one costs nothing.
//!
//! State mutations from [`Env::apply`] are *staged* and committed at the next
//! [`Env::next_arrival`], which keeps every view (arrival and feedback) stable for the
//! whole decide→apply→observe cycle of one arrival, exactly mirroring the owned-snapshot
//! semantics of the original interface.
//!
//! The owned compatibility path ([`Platform::next_arrival_owned`] /
//! [`Platform::apply_owned`]) materialises `ArrivalContext` / `PolicyFeedback` records per
//! arrival and commits immediately; it exists for the equivalence tests and the
//! old-vs-new benchmark, and is documented as the deprecated path.

use crate::behavior::BehaviorModel;
use crate::dataset::Dataset;
use crate::env::{ArenaPool, ArrivalView, Decision, Env, FeedbackView};
use crate::event::EventKind;
use crate::features::FeatureSpace;
use crate::policy::{Action, ArrivalContext, PolicyFeedback};
use crate::quality::dixit_stiglitz;
use crate::task::TaskId;
use crate::worker::WorkerId;
use crowd_tensor::Rng;

/// A pending worker arrival produced by [`Platform::next_arrival_owned`] (owned
/// compatibility path).
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// The observable context handed to the policy.
    pub context: ArrivalContext,
}

/// The arrival the event cursor is currently stopped at. Shared with the sharded
/// environment ([`crate::ShardedEnv`]), which replays the same per-arrival protocol.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CurrentArrival {
    pub(crate) time: u64,
    pub(crate) worker: WorkerId,
    pub(crate) is_new_worker: bool,
}

/// Staged effects of the last [`Env::apply`], committed on the next
/// [`Env::next_arrival`]. All buffers are reused across arrivals. Shared with the
/// sharded environment, whose staging protocol is identical.
#[derive(Debug, Clone, Default)]
pub(crate) struct StepState {
    /// Shown tasks after filtering out unavailable ids (reusable buffer).
    pub(crate) shown: Vec<TaskId>,
    /// Completed task and its position in `shown`, if any.
    pub(crate) completed: Option<(TaskId, usize)>,
    /// Quality gain of the completed task.
    pub(crate) quality_gain: f32,
    /// The completed task's new Dixit–Stiglitz quality.
    pub(crate) new_quality: f32,
    /// Post-completion worker feature (reusable buffer; meaningful only on completion).
    pub(crate) after_feature: Vec<f32>,
    /// True between `apply` and the commit in the next `next_arrival`.
    pub(crate) pending: bool,
    /// True when `feedback()` may be called (an apply happened for the current arrival).
    pub(crate) valid: bool,
}

/// The crowdsourcing platform environment.
///
/// `Platform` owns all dynamic state (available pool, task qualities, worker features) and
/// replays the dataset's event stream. The interaction loop is:
///
/// ```text
/// let mut decision = Decision::new();
/// while platform.next_arrival() {
///     policy.act(&platform.arrival(), &mut decision);
///     platform.apply(&decision);
///     policy.observe(&platform.arrival(), &platform.feedback());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    dataset: Dataset,
    features: FeatureSpace,
    behavior: BehaviorModel,
    rng: Rng,
    // Immutable arenas (filled once at construction).
    task_features: Vec<f32>,
    task_dim: usize,
    // Dynamic struct-of-arrays state.
    available: Vec<TaskId>,
    in_pool: Vec<bool>,
    task_qualities: Vec<f32>,
    task_completions: Vec<u32>,
    completer_qualities: Vec<Vec<f32>>,
    worker_features: Vec<f32>,
    worker_dim: usize,
    worker_seen: Vec<bool>,
    worker_completions: Vec<u32>,
    next_event: usize,
    current_time: u64,
    completed_total: usize,
    current: Option<CurrentArrival>,
    step: StepState,
}

impl Platform {
    /// Creates a platform over a dataset with the default behaviour model.
    pub fn new(dataset: Dataset, features: FeatureSpace, seed: u64) -> Self {
        Platform::with_behavior(dataset, features, BehaviorModel::default(), seed)
    }

    /// Creates a platform with an explicit behaviour model.
    pub fn with_behavior(
        dataset: Dataset,
        features: FeatureSpace,
        behavior: BehaviorModel,
        seed: u64,
    ) -> Self {
        let task_dim = features.task_dim();
        let worker_dim = features.worker_dim();
        // Task features are static (category/domain/award never change), so the whole
        // arena is computed once and every view borrows from it.
        let mut task_features = Vec::with_capacity(dataset.tasks.len() * task_dim);
        for task in &dataset.tasks {
            task_features.extend_from_slice(&features.task_feature(task));
        }
        let initial_worker = features.initial_worker_feature();
        let mut worker_features = Vec::with_capacity(dataset.workers.len() * worker_dim);
        for _ in &dataset.workers {
            worker_features.extend_from_slice(&initial_worker);
        }
        let n_tasks = dataset.tasks.len();
        let n_workers = dataset.workers.len();
        Platform {
            features,
            behavior,
            rng: Rng::seed_from(seed),
            task_features,
            task_dim,
            available: Vec::new(),
            in_pool: vec![false; n_tasks],
            task_qualities: vec![0.0; n_tasks],
            task_completions: vec![0; n_tasks],
            completer_qualities: vec![Vec::new(); n_tasks],
            worker_features,
            worker_dim,
            worker_seen: vec![false; n_workers],
            worker_completions: vec![0; n_workers],
            next_event: 0,
            current_time: 0,
            completed_total: 0,
            current: None,
            step: StepState::default(),
            dataset,
        }
    }

    /// The feature space used to embed tasks and workers.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.features
    }

    /// The underlying immutable dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Total number of committed completions so far.
    pub fn total_completions(&self) -> usize {
        self.completed_total
    }

    /// Ids of the currently available tasks.
    pub fn available_tasks(&self) -> &[TaskId] {
        &self.available
    }

    /// Current Dixit–Stiglitz quality of a task (committed state).
    pub fn task_quality(&self, task: TaskId) -> f32 {
        self.task_qualities[task.index()]
    }

    /// The precomputed feature row of a task (borrowed from the arena).
    pub fn task_feature(&self, task: TaskId) -> &[f32] {
        let row = task.index();
        &self.task_features[row * self.task_dim..(row + 1) * self.task_dim]
    }

    /// Current observable feature of a worker (committed state).
    pub fn worker_feature(&self, worker: WorkerId) -> &[f32] {
        let row = worker.index();
        &self.worker_features[row * self.worker_dim..(row + 1) * self.worker_dim]
    }

    /// Number of tasks a worker has completed so far.
    pub fn worker_completions(&self, worker: WorkerId) -> usize {
        self.worker_completions[worker.index()] as usize
    }

    /// Sum of all task qualities (the requester-side objective the paper maximises).
    pub fn total_task_quality(&self) -> f32 {
        self.task_qualities.iter().sum()
    }

    /// True when the whole event stream has been consumed.
    pub fn finished(&self) -> bool {
        self.next_event >= self.dataset.events.len()
    }

    /// Current simulation time (minutes since horizon start).
    pub fn current_time(&self) -> u64 {
        self.current_time
    }

    /// Commits the staged effects of the last `apply`, if any.
    fn commit_pending(&mut self) {
        if !self.step.pending {
            return;
        }
        self.step.pending = false;
        let Some(current) = self.current else { return };
        if let Some((task_id, _)) = self.step.completed {
            let ti = task_id.index();
            let worker_quality = self.dataset.workers[current.worker.index()].quality;
            self.completer_qualities[ti].push(worker_quality);
            self.task_qualities[ti] = self.step.new_quality;
            self.task_completions[ti] += 1;
            let wi = current.worker.index();
            self.worker_features[wi * self.worker_dim..(wi + 1) * self.worker_dim]
                .copy_from_slice(&self.step.after_feature);
            self.worker_completions[wi] += 1;
            self.completed_total += 1;
        }
    }

    /// The shared apply implementation: filters the decision against the live pool, runs
    /// the cascade behaviour model and stages the resulting state updates.
    fn apply_decision(&mut self, decision: &Decision) {
        let current = self
            .current
            .expect("apply() requires a pending arrival; call next_arrival() first");
        // Applying twice for one arrival replaces the staged effects (the compatibility
        // path commits explicitly instead).
        self.step.pending = false;

        let Platform {
            dataset,
            features,
            behavior,
            rng,
            task_features,
            task_dim,
            in_pool,
            task_qualities,
            completer_qualities,
            worker_features,
            worker_dim,
            step,
            ..
        } = self;

        step.shown.clear();
        for &task in decision.shown() {
            if in_pool[task.index()] {
                step.shown.push(task);
            }
        }
        let worker = &dataset.workers[current.worker.index()];
        let completed_position = behavior.browse(
            worker,
            step.shown.iter().map(|t| &dataset.tasks[t.index()]),
            rng,
        );

        step.completed = None;
        step.quality_gain = 0.0;
        step.new_quality = 0.0;
        if let Some(position) = completed_position {
            let task_id = step.shown[position];
            let ti = task_id.index();
            let old_quality = task_qualities[ti];
            // Compute the post-completion quality without committing: push the completer,
            // evaluate, pop (capacity is retained, so no allocation in steady state).
            let qualities = &mut completer_qualities[ti];
            qualities.push(worker.quality);
            step.new_quality = dixit_stiglitz(qualities, dataset.quality_exponent);
            qualities.pop();
            step.quality_gain = step.new_quality - old_quality;

            let wi = current.worker.index();
            step.after_feature.clear();
            step.after_feature
                .extend_from_slice(&worker_features[wi * *worker_dim..(wi + 1) * *worker_dim]);
            let task_feature = &task_features[ti * *task_dim..(ti + 1) * *task_dim];
            features.update_worker_feature(&mut step.after_feature, task_feature);
            step.completed = Some((task_id, position));
        }
        step.pending = true;
        step.valid = true;
    }

    /// Owned compatibility path for [`Env::next_arrival`]: advances the stream and gathers
    /// an owned [`ArrivalContext`], cloning every feature vector in the pool. Prefer the
    /// borrowed [`Env`] interface in anything performance-sensitive.
    pub fn next_arrival_owned(&mut self) -> Option<Arrival> {
        if Env::next_arrival(self) {
            Some(Arrival {
                context: self.arrival().to_context(),
            })
        } else {
            None
        }
    }

    /// Owned compatibility path for [`Env::apply`]: applies an [`Action`] for the current
    /// arrival and returns an owned [`PolicyFeedback`], committing the effects
    /// immediately (the original eager semantics).
    pub fn apply_owned(&mut self, ctx: &ArrivalContext, action: &Action) -> PolicyFeedback {
        debug_assert_eq!(
            self.current.map(|c| c.worker),
            Some(ctx.worker_id),
            "apply_owned() must be called with the current arrival's context"
        );
        let mut decision = Decision::with_capacity(action.shown_len());
        decision.set_action(action);
        self.apply_decision(&decision);
        let feedback = self.feedback().to_feedback();
        // Eager commit; the staged feedback view is no longer self-consistent afterwards,
        // so invalidate it (the owned record returned above is the feedback).
        Env::flush(self);
        feedback
    }

    /// CRC-32 of the platform's complete committed dynamic state serialised in canonical
    /// (global id) order — the checkpoint byte layout of [`crowd_ckpt::SaveState`].
    ///
    /// Two platforms with equal fingerprints hold bit-identical committed state
    /// *including the behaviour RNG stream position*. The sharded environment computes
    /// the same quantity over the same byte layout
    /// ([`ShardedEnv::canonical_fingerprint`](crate::ShardedEnv::canonical_fingerprint)),
    /// so the equivalence suite can compare a sharded replay against an unsharded one
    /// with one `u32`. Call [`Env::flush`] first: staged per-arrival effects are not part
    /// of committed state.
    pub fn canonical_fingerprint(&self) -> u32 {
        let mut w = crowd_ckpt::StateWriter::new();
        w.save(self);
        crowd_ckpt::crc32(&w.into_bytes())
    }

    /// Draws one value from the behaviour RNG — a destructive probe of the stream
    /// position for equivalence tests (two envs that consumed identical draw sequences
    /// return identical probes). Consumes one draw; probe both sides symmetrically.
    pub fn rng_probe(&mut self) -> u64 {
        self.rng.below(u32::MAX as usize) as u64
    }

    /// Builds the default feature space for a dataset: one award bucket per 25 currency units
    /// (at least 4 buckets) and an exponential worker-feature decay of 0.8.
    pub fn default_feature_space(dataset: &Dataset) -> FeatureSpace {
        let max_award = dataset.tasks.iter().map(|t| t.award).fold(1.0f32, f32::max);
        let buckets = ((max_award / 25.0).ceil() as usize).clamp(4, 12);
        FeatureSpace::new(
            dataset.n_categories,
            dataset.n_domains,
            buckets,
            max_award,
            0.8,
        )
    }
}

/// Checkpoint format (committed dynamic state only): behaviour RNG, available pool
/// (task ids), pool membership flags, per-task qualities (f32 raw bits) / completion
/// counts / completer-quality lists, worker feature arena (f32 raw bits), worker
/// seen/completion arrays, then the event cursor, current time and committed completion
/// total (`u64` each).
///
/// The immutable parts — dataset, feature space, behaviour constants, task-feature
/// arena — are **not** stored: a resumed run reconstructs the platform from the same
/// configuration and the loader validates the snapshot's array lengths against it. The
/// per-arrival scratch (`current`, staged step effects) is dead between steps and is
/// reset by the load; checkpoint drivers must flush staged effects first
/// (`Session::checkpoint` does).
impl crowd_ckpt::SaveState for Platform {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.save(&self.rng);
        w.save(&self.available);
        w.save(&self.in_pool);
        w.put_f32_slice(&self.task_qualities);
        w.put_u32_slice(&self.task_completions);
        w.save(&self.completer_qualities);
        w.put_f32_slice(&self.worker_features);
        w.save(&self.worker_seen);
        w.put_u32_slice(&self.worker_completions);
        w.put_usize(self.next_event);
        w.put_u64(self.current_time);
        w.put_usize(self.completed_total);
    }
}

impl crowd_ckpt::LoadState for Platform {
    fn load_state(&mut self, r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<()> {
        let n_tasks = self.dataset.tasks.len();
        let n_workers = self.dataset.workers.len();
        let corrupt = |detail: String| crowd_ckpt::CkptError::Corrupt {
            what: "platform state",
            detail,
        };
        crowd_ckpt::LoadState::load_state(&mut self.rng, r)?;
        let available: Vec<TaskId> = r.decode()?;
        if let Some(bad) = available.iter().find(|t| t.index() >= n_tasks) {
            return Err(corrupt(format!("available task id {bad:?} out of range")));
        }
        let in_pool: Vec<bool> = r.decode()?;
        let task_qualities = r.take_f32_vec()?;
        let task_completions = r.take_u32_vec()?;
        let completer_qualities: Vec<Vec<f32>> = r.decode()?;
        let worker_features = r.take_f32_vec()?;
        let worker_seen: Vec<bool> = r.decode()?;
        let worker_completions = r.take_u32_vec()?;
        if in_pool.len() != n_tasks
            || task_qualities.len() != n_tasks
            || task_completions.len() != n_tasks
            || completer_qualities.len() != n_tasks
        {
            return Err(corrupt(format!(
                "task-state arrays sized for {} tasks, dataset has {n_tasks}",
                in_pool.len()
            )));
        }
        if worker_features.len() != n_workers * self.worker_dim
            || worker_seen.len() != n_workers
            || worker_completions.len() != n_workers
        {
            return Err(corrupt(format!(
                "worker-state arrays sized for {} workers, dataset has {n_workers}",
                worker_seen.len()
            )));
        }
        let next_event = r.take_usize()?;
        if next_event > self.dataset.events.len() {
            return Err(corrupt(format!(
                "event cursor {next_event} past the {}-event stream",
                self.dataset.events.len()
            )));
        }
        self.available = available;
        self.in_pool = in_pool;
        self.task_qualities = task_qualities;
        self.task_completions = task_completions;
        self.completer_qualities = completer_qualities;
        self.worker_features = worker_features;
        self.worker_seen = worker_seen;
        self.worker_completions = worker_completions;
        self.next_event = next_event;
        self.current_time = r.take_u64()?;
        self.completed_total = r.take_usize()?;
        // Per-arrival scratch is dead between steps; start the resumed replay clean.
        self.current = None;
        self.step = StepState::default();
        Ok(())
    }
}

impl Env for Platform {
    fn next_arrival(&mut self) -> bool {
        self.commit_pending();
        self.step.valid = false;
        self.current = None;
        while self.next_event < self.dataset.events.len() {
            let event = self.dataset.events[self.next_event];
            self.next_event += 1;
            self.current_time = event.time;
            match event.kind {
                EventKind::TaskCreated(id) => {
                    self.available.push(id);
                    self.in_pool[id.index()] = true;
                }
                EventKind::TaskExpired(id) => {
                    self.available.retain(|&t| t != id);
                    self.in_pool[id.index()] = false;
                }
                EventKind::WorkerArrival(worker) => {
                    let wi = worker.index();
                    let is_new_worker = !self.worker_seen[wi];
                    self.worker_seen[wi] = true;
                    self.current = Some(CurrentArrival {
                        time: event.time,
                        worker,
                        is_new_worker,
                    });
                    return true;
                }
            }
        }
        false
    }

    fn arrival(&self) -> ArrivalView<'_> {
        let current = self
            .current
            .expect("arrival() requires a pending arrival; call next_arrival() first");
        let wi = current.worker.index();
        ArrivalView::from_arena(
            current.time,
            current.worker,
            &self.worker_features[wi * self.worker_dim..(wi + 1) * self.worker_dim],
            self.dataset.workers[wi].quality,
            current.is_new_worker,
            ArenaPool {
                ids: &self.available,
                features: &self.task_features,
                feature_dim: self.task_dim,
                qualities: &self.task_qualities,
                completions: &self.task_completions,
                tasks: &self.dataset.tasks,
            },
        )
    }

    fn apply(&mut self, decision: &Decision) {
        self.apply_decision(decision);
    }

    fn flush(&mut self) {
        self.commit_pending();
        self.step.valid = false;
    }

    fn feedback(&self) -> FeedbackView<'_> {
        assert!(
            self.step.valid,
            "feedback() requires a prior apply() for the current arrival"
        );
        let current = self.current.expect("feedback() requires a pending arrival");
        let wi = current.worker.index();
        // While the effects are staged, the live worker feature still holds the
        // pre-completion value; the staged buffer holds the post-completion one.
        let before = &self.worker_features[wi * self.worker_dim..(wi + 1) * self.worker_dim];
        let after: &[f32] = if self.step.completed.is_some() && self.step.pending {
            &self.step.after_feature
        } else {
            before
        };
        FeedbackView {
            time: current.time,
            worker_id: current.worker,
            worker_quality: self.dataset.workers[wi].quality,
            shown: &self.step.shown,
            completed: self.step.completed,
            quality_gain: self.step.quality_gain,
            worker_feature_before: before,
            worker_feature_after: after,
        }
    }

    fn finished(&self) -> bool {
        Platform::finished(self)
    }

    fn current_time(&self) -> u64 {
        Platform::current_time(self)
    }

    fn total_task_quality(&self) -> f32 {
        Platform::total_task_quality(self)
    }

    fn total_completions(&self) -> usize {
        Platform::total_completions(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SimConfig;
    use crate::policy::Action;

    fn platform() -> Platform {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        Platform::new(ds, fs, 99)
    }

    #[test]
    fn checkpointed_platform_resumes_bit_identically() {
        use crowd_ckpt::{Snapshot, SnapshotFile};
        // Drive one replay halfway, snapshot it (after flushing staged effects, as the
        // session layer does), and continue. A fresh platform restored from the
        // snapshot must finish with identical completions, qualities and RNG stream.
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);
        let run_to_end = |p: &mut Platform| {
            let mut decision = Decision::new();
            let mut gains = Vec::new();
            while p.next_arrival() {
                let view = p.arrival();
                if view.is_empty() {
                    continue;
                }
                decision.clear();
                decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                p.apply(&decision);
                gains.push(p.feedback().quality_gain.to_bits());
            }
            gains
        };

        let mut original = Platform::new(ds.clone(), fs.clone(), 42);
        let mut decision = Decision::new();
        for _ in 0..40 {
            assert!(original.next_arrival());
            let view = original.arrival();
            if view.is_empty() {
                continue;
            }
            decision.clear();
            decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
            original.apply(&decision);
        }
        original.flush();
        let mut snap = Snapshot::new();
        snap.put("env", &original);
        let file = SnapshotFile::from_bytes(snap.to_bytes()).unwrap();

        let mut resumed = Platform::new(ds, fs, 0); // wrong seed, overwritten by the load
        file.load_into("env", &mut resumed).unwrap();
        assert_eq!(resumed.total_completions(), original.total_completions());
        assert_eq!(resumed.current_time(), original.current_time());

        let tail_a = run_to_end(&mut original);
        let tail_b = run_to_end(&mut resumed);
        assert_eq!(tail_a, tail_b);
        assert_eq!(original.total_completions(), resumed.total_completions());
        assert_eq!(
            original.total_task_quality().to_bits(),
            resumed.total_task_quality().to_bits()
        );
        for t in 0..original.dataset().tasks.len() {
            assert_eq!(
                original.task_quality(TaskId(t as u32)).to_bits(),
                resumed.task_quality(TaskId(t as u32)).to_bits()
            );
        }
    }

    #[test]
    fn arrivals_are_replayed_in_time_order() {
        let mut p = platform();
        let mut last = 0;
        let mut count = 0;
        while p.next_arrival() {
            let view = p.arrival();
            assert!(view.time >= last);
            last = view.time;
            count += 1;
            // Never show expired or not-yet-created tasks.
            for task in view.tasks() {
                let row = &p.dataset().tasks[task.id.index()];
                assert!(row.is_available_at(view.time));
            }
        }
        assert!(count > 0);
        assert!(Platform::finished(&p));
    }

    #[test]
    fn first_visit_is_flagged_as_new_worker() {
        let mut p = platform();
        let mut seen = std::collections::HashSet::new();
        while p.next_arrival() {
            let view = p.arrival();
            let first = seen.insert(view.worker_id);
            assert_eq!(view.is_new_worker, first);
        }
    }

    #[test]
    fn views_borrow_arena_storage_without_cloning() {
        let mut p = platform();
        assert!(p.next_arrival());
        let view = p.arrival();
        for task in view.tasks() {
            // The borrowed feature row is exactly the arena row (pointer-identical).
            let arena_row = p.task_feature(task.id);
            assert!(std::ptr::eq(task.feature, arena_row));
            // And matches the recomputed feature.
            let recomputed = p
                .feature_space()
                .task_feature(&p.dataset().tasks[task.id.index()]);
            assert_eq!(task.feature, recomputed.as_slice());
        }
        assert!(std::ptr::eq(
            view.worker_feature,
            p.worker_feature(view.worker_id)
        ));
    }

    #[test]
    fn completions_update_quality_and_worker_feature() {
        let mut p = platform();
        let mut decision = Decision::new();
        let mut any_completion = false;
        while p.next_arrival() {
            let worker = {
                let view = p.arrival();
                if view.is_empty() {
                    continue;
                }
                // Show the full pool so the probability of some completion is high.
                decision.clear();
                decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                view.worker_id
            };
            p.apply(&decision);
            let fb = p.feedback();
            if let Some((task, pos)) = fb.completed {
                any_completion = true;
                assert!(pos < fb.shown.len());
                assert_eq!(fb.shown[pos], task);
                assert!(fb.quality_gain > 0.0);
                // Effects are staged: committed state is unchanged until the next
                // next_arrival() call...
                let before: Vec<f32> = fb.worker_feature_before.to_vec();
                let after: Vec<f32> = fb.worker_feature_after.to_vec();
                assert_eq!(p.worker_feature(worker), before.as_slice());
                // ...and the staged after-feature reflects the completed task: a cold-start
                // worker adopts the task feature outright.
                if before.iter().all(|&v| v == 0.0) {
                    assert_eq!(after.as_slice(), p.task_feature(task));
                }
            } else {
                assert_eq!(fb.quality_gain, 0.0);
                assert_eq!(fb.worker_feature_before, fb.worker_feature_after);
            }
        }
        assert!(any_completion, "no completion in the whole run");
        assert!(p.total_completions() > 0);
        assert!(p.total_task_quality() > 0.0);
    }

    #[test]
    fn staged_effects_commit_on_the_next_arrival() {
        let mut p = platform();
        let mut decision = Decision::new();
        loop {
            assert!(p.next_arrival(), "ran out of arrivals without a completion");
            let view = p.arrival();
            if view.is_empty() {
                continue;
            }
            let worker = view.worker_id;
            decision.clear();
            decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
            p.apply(&decision);
            let fb = p.feedback();
            if let Some((task, _)) = fb.completed {
                let after: Vec<f32> = fb.worker_feature_after.to_vec();
                let new_quality_staged = fb.quality_gain + p.task_quality(task);
                // First completion of the run, still staged: committed quality is untouched.
                assert_eq!(p.task_quality(task), 0.0);
                assert_eq!(p.total_completions(), 0);
                // Advancing commits: quality, worker feature and counters move together.
                p.next_arrival();
                assert!((p.task_quality(task) - new_quality_staged).abs() < 1e-6);
                assert_eq!(p.worker_feature(worker), after.as_slice());
                assert_eq!(p.total_completions(), 1);
                assert_eq!(p.worker_completions(worker), 1);
                break;
            }
        }
    }

    #[test]
    fn owned_path_commits_immediately() {
        let mut p = platform();
        let mut any_completion = false;
        while let Some(arrival) = p.next_arrival_owned() {
            let ctx = arrival.context;
            if ctx.available.is_empty() {
                continue;
            }
            let action = Action::Rank(ctx.available.iter().map(|t| t.id).collect());
            let fb = p.apply_owned(&ctx, &action);
            if let Some((task, pos)) = fb.completed {
                any_completion = true;
                assert!(pos < fb.shown.len());
                assert!(p.task_quality(task) > 0.0);
                assert_eq!(
                    p.worker_feature(ctx.worker_id),
                    fb.worker_feature_after.as_slice()
                );
            }
        }
        assert!(any_completion);
        assert!(p.total_completions() > 0);
    }

    #[test]
    fn unavailable_tasks_in_decision_are_ignored() {
        let mut p = platform();
        assert!(p.next_arrival());
        // A task id that is certainly not in the current pool.
        let bogus = p
            .dataset()
            .tasks
            .iter()
            .map(|t| t.id)
            .find(|id| !p.available_tasks().contains(id))
            .unwrap();
        let mut decision = Decision::new();
        decision.assign(bogus);
        p.apply(&decision);
        let fb = p.feedback();
        assert!(fb.shown.is_empty());
        assert!(fb.completed.is_none());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let ds = SimConfig::tiny().generate();
            let fs = Platform::default_feature_space(&ds);
            let mut p = Platform::new(ds, fs, seed);
            let mut decision = Decision::new();
            let mut completions = 0;
            while p.next_arrival() {
                let view = p.arrival();
                if view.is_empty() {
                    continue;
                }
                decision.clear();
                decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                p.apply(&decision);
                if p.feedback().completed.is_some() {
                    completions += 1;
                }
            }
            completions
        };
        assert_eq!(run(5), run(5));
        // Different behaviour seeds usually give different outcomes.
        assert!(run(5) != run(6) || run(5) != run(7));
    }

    #[test]
    fn owned_and_borrowed_paths_are_identical() {
        let ds = SimConfig::tiny().generate();
        let fs = Platform::default_feature_space(&ds);

        let mut owned = Platform::new(ds.clone(), fs.clone(), 7);
        let mut owned_gains = Vec::new();
        while let Some(arrival) = owned.next_arrival_owned() {
            let ctx = arrival.context;
            if ctx.available.is_empty() {
                continue;
            }
            let action = Action::Rank(ctx.available.iter().map(|t| t.id).collect());
            let fb = owned.apply_owned(&ctx, &action);
            owned_gains.push((fb.completed, fb.quality_gain));
        }

        let mut borrowed = Platform::new(ds, fs, 7);
        let mut decision = Decision::new();
        let mut borrowed_gains = Vec::new();
        while borrowed.next_arrival() {
            let view = borrowed.arrival();
            if view.is_empty() {
                continue;
            }
            decision.clear();
            decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
            borrowed.apply(&decision);
            let fb = borrowed.feedback();
            borrowed_gains.push((fb.completed, fb.quality_gain));
        }

        assert_eq!(owned_gains, borrowed_gains);
        assert_eq!(owned.total_completions(), borrowed.total_completions());
        assert!((owned.total_task_quality() - borrowed.total_task_quality()).abs() < 1e-6);
    }
}
