//! Non-stationary scenario dynamics: worker churn, demand surges and task-mix drift.
//!
//! The paper evaluates on one stationary replay. Real platforms are not stationary:
//! workers join and retire mid-stream, demand surges and follows day/night cycles, and
//! the task mix drifts over time. A [`ScenarioSpec`] describes those perturbations, and
//! [`ScenarioSpec::apply`] compiles them into an ordinary [`Dataset`] **before** the
//! replay starts. The hot loop is untouched: [`crate::Platform`] and
//! [`crate::ShardedEnv`] replay the transformed dataset through the exact same zero-copy
//! [`crate::Env`] path, so every bit-identity proof of the stationary replay (thread
//! counts, shard counts, checkpoint/resume) carries over to every scenario *by
//! construction* rather than by re-proof.
//!
//! Determinism contract (fenced by `tests/scenario_equivalence.rs`):
//!
//! * the transform is a pure function of `(spec, dataset)` — no ambient entropy, no
//!   iteration-order dependence;
//! * per-concern RNG streams: surge thinning and densifying each draw from their own
//!   stream forked off [`ScenarioSpec::seed`], so adding a densify phase never shifts
//!   the thinning draws (and vice versa); availability filtering and drift draw nothing;
//! * a no-op spec ([`ScenarioSpec::is_noop`]) returns the dataset unchanged without
//!   constructing an RNG — the baseline replay's canonical fingerprint is reproduced
//!   exactly;
//! * kept arrivals are a subsequence of the original arrival stream (thinning never
//!   reorders), and densified copies are inserted adjacent to their original, so
//!   non-arrival events never move relative to arrivals.
//!
//! ```
//! use crowd_sim::{ScenarioSpec, SimConfig, WorkerId, MINUTES_PER_MONTH};
//!
//! let dataset = SimConfig::tiny().generate();
//! // Worker 0 retires after the first month; demand doubles in month 1.
//! let spec = ScenarioSpec::new(7)
//!     .with_window(WorkerId(0), 0, MINUTES_PER_MONTH)
//!     .with_surge(MINUTES_PER_MONTH, 2 * MINUTES_PER_MONTH, 2.0);
//! let perturbed = spec.apply(&dataset);
//! assert!(perturbed.n_arrivals() > dataset.n_arrivals());
//! // A no-op spec is exact identity.
//! assert_eq!(ScenarioSpec::new(7).apply(&dataset).events, dataset.events);
//! ```

use crate::dataset::{Dataset, MINUTES_PER_DAY};
use crate::event::EventKind;
use crate::worker::WorkerId;
use crowd_ckpt::{DecodeState, Result, SaveState, StateReader, StateWriter};
use crowd_tensor::Rng;

/// Stream-isolation constants xor'ed into [`ScenarioSpec::seed`] so each concern draws
/// from its own deterministic RNG stream.
const THIN_STREAM: u64 = 0x5363_6e54_6869_6e31; // "ScnThin1"
const DENSIFY_STREAM: u64 = 0x5363_6e44_656e_7331; // "ScnDens1"

/// One availability window of one worker: the worker is online (its arrivals are kept)
/// for `online_from <= t < online_until`. A worker may have several windows; a worker
/// with **no** windows in the spec is always online. An empty window
/// (`online_from >= online_until`) keeps the worker offline for the whole horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailabilityWindow {
    /// The worker the window applies to.
    pub worker: WorkerId,
    /// First minute (inclusive) the worker is online.
    pub online_from: u64,
    /// First minute the worker is offline again (exclusive bound).
    pub online_until: u64,
}

/// One demand phase: every arrival with `from <= t < until` has its keep/duplicate rate
/// multiplied by `rate`. Rates below 1 thin the arrival process, rates above 1 densify
/// it; overlapping phases multiply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgePhase {
    /// First minute (inclusive) of the phase.
    pub from: u64,
    /// End minute (exclusive) of the phase.
    pub until: u64,
    /// Arrival-rate multiplier (must be finite and positive).
    pub rate: f32,
}

/// A piecewise day/night arrival-rate cycle: minutes of the day in
/// `[day_from, day_until)` use `day_rate`, the rest use `night_rate`. Piecewise-constant
/// on purpose — no transcendental functions, so the effective rate is bit-reproducible
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayNightCycle {
    /// First minute-of-day (inclusive, `< 1440`) of the daytime band.
    pub day_from: u64,
    /// End minute-of-day (exclusive, `<= 1440`) of the daytime band.
    pub day_until: u64,
    /// Rate multiplier inside the daytime band.
    pub day_rate: f32,
    /// Rate multiplier outside the daytime band.
    pub night_rate: f32,
}

/// One task-mix drift epoch: every task **created at or after** `at` has its category
/// rotated by `category_step` (mod the dataset's category count) and its award scaled by
/// `award_scale`. Epochs compose in spec order, so a task created after two epochs sees
/// both shifts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEpoch {
    /// First creation minute (inclusive) the epoch applies to.
    pub at: u64,
    /// Category rotation step (taken mod `Dataset::n_categories`).
    pub category_step: u16,
    /// Award multiplier (must be finite and positive).
    pub award_scale: f32,
}

/// A deterministic non-stationary scenario: availability windows / churn, demand surges
/// with an optional day/night cycle, and task-mix drift epochs. See the module docs for
/// the determinism contract and `docs/SCENARIOS.md` for the full spec format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioSpec {
    /// Seed of the scenario RNG streams (thinning and densifying draws).
    pub seed: u64,
    /// Per-worker availability windows; workers not mentioned are always online.
    pub availability: Vec<AvailabilityWindow>,
    /// Demand surge phases (multiplicative, may overlap).
    pub surges: Vec<SurgePhase>,
    /// Optional day/night arrival-rate cycle.
    pub day_night: Option<DayNightCycle>,
    /// Task-mix drift epochs (applied in order).
    pub drift: Vec<DriftEpoch>,
}

impl ScenarioSpec {
    /// An empty (no-op) spec with the given RNG seed.
    pub fn new(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            seed,
            ..ScenarioSpec::default()
        }
    }

    /// Adds an availability window for `worker` (builder style).
    pub fn with_window(mut self, worker: WorkerId, online_from: u64, online_until: u64) -> Self {
        self.availability.push(AvailabilityWindow {
            worker,
            online_from,
            online_until,
        });
        self
    }

    /// Adds a surge phase multiplying the arrival rate by `rate` on `[from, until)`.
    pub fn with_surge(mut self, from: u64, until: u64, rate: f32) -> Self {
        self.surges.push(SurgePhase { from, until, rate });
        self
    }

    /// Sets the day/night cycle.
    pub fn with_day_night(mut self, cycle: DayNightCycle) -> Self {
        self.day_night = Some(cycle);
        self
    }

    /// Adds a drift epoch rotating categories by `category_step` and scaling awards by
    /// `award_scale` for tasks created at or after `at`.
    pub fn with_drift(mut self, at: u64, category_step: u16, award_scale: f32) -> Self {
        self.drift.push(DriftEpoch {
            at,
            category_step,
            award_scale,
        });
        self
    }

    /// True when the spec perturbs nothing; [`ScenarioSpec::apply`] is then an exact
    /// identity (a clone of the input, no RNG draws).
    pub fn is_noop(&self) -> bool {
        self.availability.is_empty()
            && self.surges.is_empty()
            && self.day_night.is_none()
            && self.drift.is_empty()
    }

    /// Panics when a rate or scale is non-finite or non-positive, or a day/night band
    /// exceeds the day. Empty availability windows are valid (a worker that is never
    /// online) — churn specs produce them naturally.
    pub fn validate(&self) {
        for surge in &self.surges {
            assert!(
                surge.rate.is_finite() && surge.rate > 0.0,
                "surge rate must be finite and positive (got {})",
                surge.rate
            );
        }
        if let Some(cycle) = &self.day_night {
            assert!(
                cycle.day_rate.is_finite() && cycle.day_rate > 0.0,
                "day rate must be finite and positive (got {})",
                cycle.day_rate
            );
            assert!(
                cycle.night_rate.is_finite() && cycle.night_rate > 0.0,
                "night rate must be finite and positive (got {})",
                cycle.night_rate
            );
            assert!(
                cycle.day_from < cycle.day_until && cycle.day_until <= MINUTES_PER_DAY,
                "day band must satisfy day_from < day_until <= {MINUTES_PER_DAY}"
            );
        }
        for epoch in &self.drift {
            assert!(
                epoch.award_scale.is_finite() && epoch.award_scale > 0.0,
                "drift award scale must be finite and positive (got {})",
                epoch.award_scale
            );
        }
    }

    /// True when `worker` is online at `time`: inside any of its availability windows,
    /// or not mentioned by the spec at all.
    pub fn worker_online(&self, worker: WorkerId, time: u64) -> bool {
        let mut mentioned = false;
        for window in &self.availability {
            if window.worker != worker {
                continue;
            }
            mentioned = true;
            if window.online_from <= time && time < window.online_until {
                return true;
            }
        }
        !mentioned
    }

    /// Effective arrival-rate multiplier at `time`: the product of every surge phase
    /// containing `time` and the day/night factor. Exactly `1.0` for a spec with no
    /// surges and no cycle.
    pub fn arrival_rate_at(&self, time: u64) -> f32 {
        let mut rate = 1.0f32;
        for surge in &self.surges {
            if surge.from <= time && time < surge.until {
                rate *= surge.rate;
            }
        }
        if let Some(cycle) = &self.day_night {
            let minute = time % MINUTES_PER_DAY;
            rate *= if cycle.day_from <= minute && minute < cycle.day_until {
                cycle.day_rate
            } else {
                cycle.night_rate
            };
        }
        rate
    }

    /// Compiles the scenario into a perturbed dataset.
    ///
    /// The pass is single-sweep and order-preserving:
    ///
    /// 1. **Drift** rewrites task categories/awards (no RNG; creations and deadlines are
    ///    untouched, so the event stream still matches the task table).
    /// 2. **Availability** drops arrivals of offline workers (no RNG) — churn and the
    ///    offline-exclusion property fall out by construction, because an offline worker
    ///    simply never arrives.
    /// 3. **Surges / day-night** thin (rate < 1: keep with probability `rate`, one draw
    ///    from the thinning stream) or densify (rate > 1: `floor(rate) - 1` guaranteed
    ///    copies plus a fractional one from the densifying stream) each surviving
    ///    arrival. Arrivals at effective rate exactly 1 are kept without a draw.
    ///
    /// Events are never reordered, so the output needs no re-sort and kept arrivals are
    /// a subsequence of the input arrivals (densified copies sit right after their
    /// original at the same timestamp).
    pub fn apply(&self, dataset: &Dataset) -> Dataset {
        self.validate();
        if self.is_noop() {
            return dataset.clone();
        }
        let mut tasks = dataset.tasks.clone();
        let n_categories = dataset.n_categories.max(1) as u16;
        for epoch in &self.drift {
            for task in tasks.iter_mut().filter(|t| t.created_at >= epoch.at) {
                task.category = (task.category + epoch.category_step) % n_categories;
                task.award *= epoch.award_scale;
            }
        }
        let mut thin_rng = Rng::seed_from(self.seed ^ THIN_STREAM);
        let mut densify_rng = Rng::seed_from(self.seed ^ DENSIFY_STREAM);
        let mut events = Vec::with_capacity(dataset.events.len());
        for event in &dataset.events {
            let EventKind::WorkerArrival(worker) = event.kind else {
                events.push(*event);
                continue;
            };
            if !self.worker_online(worker, event.time) {
                continue;
            }
            let rate = self.arrival_rate_at(event.time);
            if rate == 1.0 {
                events.push(*event);
            } else if rate < 1.0 {
                if thin_rng.chance(rate) {
                    events.push(*event);
                }
            } else {
                events.push(*event);
                let frac = rate.fract();
                let mut extras = rate.floor() as usize - 1;
                if frac > 0.0 && densify_rng.chance(frac) {
                    extras += 1;
                }
                for _ in 0..extras {
                    events.push(*event);
                }
            }
        }
        Dataset {
            tasks,
            events,
            ..dataset.clone()
        }
    }

    /// CRC-32 of the spec's checkpoint encoding — a cheap identity used by
    /// checkpoint/resume helpers to reject resuming a snapshot under a different
    /// scenario.
    pub fn fingerprint(&self) -> u32 {
        let mut w = StateWriter::new();
        self.save_state(&mut w);
        crowd_ckpt::crc32(&w.into_bytes())
    }
}

/// Checkpoint format: see the `ScenarioSpec` layout in `docs/CHECKPOINT_FORMAT.md`.
impl SaveState for ScenarioSpec {
    fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.seed);
        w.put_usize(self.availability.len());
        for window in &self.availability {
            w.put_u32(window.worker.0);
            w.put_u64(window.online_from);
            w.put_u64(window.online_until);
        }
        w.put_usize(self.surges.len());
        for surge in &self.surges {
            w.put_u64(surge.from);
            w.put_u64(surge.until);
            w.put_f32(surge.rate);
        }
        w.put_bool(self.day_night.is_some());
        if let Some(cycle) = &self.day_night {
            w.put_u64(cycle.day_from);
            w.put_u64(cycle.day_until);
            w.put_f32(cycle.day_rate);
            w.put_f32(cycle.night_rate);
        }
        w.put_usize(self.drift.len());
        for epoch in &self.drift {
            w.put_u64(epoch.at);
            w.put_u16(epoch.category_step);
            w.put_f32(epoch.award_scale);
        }
    }
}

impl DecodeState for ScenarioSpec {
    fn decode_state(r: &mut StateReader<'_>) -> Result<Self> {
        let seed = r.take_u64()?;
        let n_windows = r.take_len("scenario availability windows", 20)?;
        let mut availability = Vec::with_capacity(n_windows);
        for _ in 0..n_windows {
            availability.push(AvailabilityWindow {
                worker: WorkerId(r.take_u32()?),
                online_from: r.take_u64()?,
                online_until: r.take_u64()?,
            });
        }
        let n_surges = r.take_len("scenario surge phases", 20)?;
        let mut surges = Vec::with_capacity(n_surges);
        for _ in 0..n_surges {
            surges.push(SurgePhase {
                from: r.take_u64()?,
                until: r.take_u64()?,
                rate: r.take_f32()?,
            });
        }
        let day_night = if r.take_bool()? {
            Some(DayNightCycle {
                day_from: r.take_u64()?,
                day_until: r.take_u64()?,
                day_rate: r.take_f32()?,
                night_rate: r.take_f32()?,
            })
        } else {
            None
        };
        let n_drift = r.take_len("scenario drift epochs", 14)?;
        let mut drift = Vec::with_capacity(n_drift);
        for _ in 0..n_drift {
            drift.push(DriftEpoch {
                at: r.take_u64()?,
                category_step: r.take_u16()?,
                award_scale: r.take_f32()?,
            });
        }
        Ok(ScenarioSpec {
            seed,
            availability,
            surges,
            day_night,
            drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::MINUTES_PER_MONTH;
    use crate::event::Event;
    use crate::generator::SimConfig;

    fn dataset() -> Dataset {
        SimConfig::tiny().generate()
    }

    fn arrivals(dataset: &Dataset) -> Vec<Event> {
        dataset
            .events
            .iter()
            .copied()
            .filter(Event::is_arrival)
            .collect()
    }

    #[test]
    fn noop_spec_is_exact_identity() {
        let ds = dataset();
        let spec = ScenarioSpec::new(123);
        assert!(spec.is_noop());
        let out = spec.apply(&ds);
        assert_eq!(out.events, ds.events);
        assert_eq!(out.tasks, ds.tasks);
        assert_eq!(out.workers, ds.workers);
    }

    #[test]
    fn apply_is_deterministic() {
        let ds = dataset();
        let spec = ScenarioSpec::new(9)
            .with_surge(0, MINUTES_PER_MONTH, 0.5)
            .with_surge(MINUTES_PER_MONTH, 2 * MINUTES_PER_MONTH, 2.5);
        let a = spec.apply(&ds);
        let b = spec.apply(&ds);
        assert_eq!(a.events, b.events);
        assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn availability_window_drops_offline_arrivals() {
        let ds = dataset();
        let target = WorkerId(0);
        let spec = ScenarioSpec::new(1).with_window(target, 0, MINUTES_PER_MONTH);
        let out = spec.apply(&ds);
        for event in &out.events {
            if let EventKind::WorkerArrival(w) = event.kind {
                if w == target {
                    assert!(event.time < MINUTES_PER_MONTH, "retired worker arrived");
                }
            }
        }
        // Other workers are untouched.
        let kept_others = |d: &Dataset| {
            arrivals(d)
                .into_iter()
                .filter(|e| e.kind != EventKind::WorkerArrival(target))
                .count()
        };
        assert_eq!(kept_others(&out), kept_others(&ds));
    }

    #[test]
    fn empty_window_means_never_online() {
        let ds = dataset();
        let target = WorkerId(1);
        let spec = ScenarioSpec::new(1).with_window(target, 5, 5);
        let out = spec.apply(&ds);
        assert!(!spec.worker_online(target, 5));
        assert!(out
            .events
            .iter()
            .all(|e| e.kind != EventKind::WorkerArrival(target)));
    }

    #[test]
    fn thinning_keeps_a_subsequence_in_order() {
        let ds = dataset();
        let spec = ScenarioSpec::new(77).with_surge(0, u64::MAX, 0.4);
        let out = spec.apply(&ds);
        let original = arrivals(&ds);
        let kept = arrivals(&out);
        assert!(kept.len() < original.len(), "thinning must drop arrivals");
        // Subsequence check: every kept arrival matches the next occurrence in the
        // original stream.
        let mut cursor = 0;
        for event in &kept {
            while cursor < original.len() && original[cursor] != *event {
                cursor += 1;
            }
            assert!(
                cursor < original.len(),
                "kept arrival not in original order"
            );
            cursor += 1;
        }
        // Non-arrival events survive verbatim.
        let non_arrivals = |d: &Dataset| d.events.iter().filter(|e| !e.is_arrival()).count();
        assert_eq!(non_arrivals(&out), non_arrivals(&ds));
    }

    #[test]
    fn densifying_duplicates_arrivals_adjacent_to_their_original() {
        let ds = dataset();
        let spec = ScenarioSpec::new(31).with_surge(0, u64::MAX, 3.0);
        let out = spec.apply(&ds);
        // Integer rate, no fractional draw: exactly 3x the arrivals.
        assert_eq!(arrivals(&out).len(), 3 * arrivals(&ds).len());
        // Copies share the original's timestamp, so the stream stays time-ordered.
        for pair in out.events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
    }

    #[test]
    fn day_night_cycle_modulates_by_minute_of_day() {
        let cycle = DayNightCycle {
            day_from: 8 * 60,
            day_until: 20 * 60,
            day_rate: 2.0,
            night_rate: 0.5,
        };
        let spec = ScenarioSpec::new(5).with_day_night(cycle);
        assert_eq!(spec.arrival_rate_at(12 * 60), 2.0);
        assert_eq!(spec.arrival_rate_at(23 * 60), 0.5);
        assert_eq!(spec.arrival_rate_at(MINUTES_PER_DAY + 12 * 60), 2.0);
        // Surges multiply into the cycle.
        let spec = spec.with_surge(0, MINUTES_PER_DAY, 3.0);
        assert_eq!(spec.arrival_rate_at(12 * 60), 6.0);
    }

    #[test]
    fn drift_rotates_categories_and_scales_awards_for_later_tasks() {
        let ds = dataset();
        let at = MINUTES_PER_MONTH;
        let spec = ScenarioSpec::new(2).with_drift(at, 1, 2.0);
        let out = spec.apply(&ds);
        let n_categories = ds.n_categories as u16;
        for (before, after) in ds.tasks.iter().zip(&out.tasks) {
            if before.created_at >= at {
                assert_eq!(after.category, (before.category + 1) % n_categories);
                assert!((after.award - 2.0 * before.award).abs() < 1e-4);
            } else {
                assert_eq!(after.category, before.category);
                assert_eq!(after.award, before.award);
            }
            assert_eq!(after.created_at, before.created_at);
            assert_eq!(after.deadline, before.deadline);
        }
        // Events are untouched by drift alone.
        assert_eq!(out.events, ds.events);
    }

    #[test]
    fn drift_epochs_compose_in_order() {
        let ds = dataset();
        let spec = ScenarioSpec::new(3)
            .with_drift(0, 1, 1.5)
            .with_drift(MINUTES_PER_MONTH, 1, 2.0);
        let out = spec.apply(&ds);
        let n_categories = ds.n_categories as u16;
        for (before, after) in ds.tasks.iter().zip(&out.tasks) {
            if before.created_at >= MINUTES_PER_MONTH {
                assert_eq!(after.category, (before.category + 2) % n_categories);
                assert!((after.award - 3.0 * before.award).abs() < 1e-3);
            } else {
                assert_eq!(after.category, (before.category + 1) % n_categories);
            }
        }
    }

    #[test]
    fn thinning_and_densifying_streams_are_isolated() {
        let ds = dataset();
        // Thin the first month with and without a densify phase in the second month:
        // the thinned first-month subsequence must be identical.
        let thin_only = ScenarioSpec::new(11).with_surge(0, MINUTES_PER_MONTH, 0.5);
        let both = ScenarioSpec::new(11)
            .with_surge(0, MINUTES_PER_MONTH, 0.5)
            .with_surge(MINUTES_PER_MONTH, 2 * MINUTES_PER_MONTH, 2.5);
        let first_month = |d: &Dataset| {
            arrivals(d)
                .into_iter()
                .filter(|e| e.time < MINUTES_PER_MONTH)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            first_month(&thin_only.apply(&ds)),
            first_month(&both.apply(&ds))
        );
    }

    #[test]
    fn checkpoint_round_trip_preserves_spec_and_fingerprint() {
        let spec = ScenarioSpec::new(42)
            .with_window(WorkerId(3), 10, 2000)
            .with_surge(100, 900, 1.75)
            .with_day_night(DayNightCycle {
                day_from: 6 * 60,
                day_until: 22 * 60,
                day_rate: 1.5,
                night_rate: 0.25,
            })
            .with_drift(500, 2, 0.75);
        let mut w = StateWriter::new();
        spec.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let decoded = ScenarioSpec::decode_state(&mut r).expect("decode");
        r.finish("scenario spec").expect("no trailing bytes");
        assert_eq!(decoded, spec);
        assert_eq!(decoded.fingerprint(), spec.fingerprint());
        assert_ne!(spec.fingerprint(), ScenarioSpec::new(42).fingerprint());
    }

    #[test]
    #[should_panic(expected = "surge rate must be finite and positive")]
    fn zero_surge_rate_is_rejected() {
        ScenarioSpec::new(0)
            .with_surge(0, 10, 0.0)
            .apply(&dataset());
    }

    #[test]
    fn replay_of_perturbed_dataset_is_bit_identical() {
        use crate::env::{Decision, Env};
        use crate::platform::Platform;
        let ds = dataset();
        let spec = ScenarioSpec::new(4)
            .with_window(WorkerId(2), 0, MINUTES_PER_MONTH)
            .with_surge(0, u64::MAX, 1.5);
        let fingerprint = |d: &Dataset| {
            let mut platform = Platform::new(d.clone(), Platform::default_feature_space(d), 7);
            let mut decision = Decision::new();
            while platform.next_arrival() {
                let view = platform.arrival();
                if view.is_empty() {
                    continue;
                }
                decision.clear();
                decision.extend((0..view.n_tasks()).map(|i| view.task_id(i)));
                platform.apply(&decision);
            }
            platform.flush();
            platform.canonical_fingerprint()
        };
        let perturbed = spec.apply(&ds);
        assert_eq!(fingerprint(&perturbed), fingerprint(&spec.apply(&ds)));
        assert_ne!(fingerprint(&perturbed), fingerprint(&ds));
    }
}
