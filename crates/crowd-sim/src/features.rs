//! Feature construction (paper Sec. IV-A and V-A).
//!
//! * Task features: one-hot category ⊕ one-hot domain ⊕ one-hot discretised award — the
//!   paper's top-3 worker motivations (remuneration, autonomy, skill variety).
//! * Worker features: the distribution of recently completed tasks, maintained here as an
//!   exponentially decayed average of completed-task feature vectors so it can be updated in
//!   real time after every feedback (the "updated worker feature f_wi by r_i" of MDP(w)).

use crate::task::Task;

/// Describes how entities are embedded into fixed-length feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSpace {
    n_categories: usize,
    n_domains: usize,
    /// Upper edges of the award buckets (ascending); awards above the last edge fall into the
    /// final bucket.
    award_bucket_edges: Vec<f32>,
    /// Exponential decay applied to the previous worker feature on each new completion.
    worker_decay: f32,
}

impl FeatureSpace {
    /// Creates a feature space with `n_award_buckets` equal-width award buckets over
    /// `[0, max_award]`.
    pub fn new(
        n_categories: usize,
        n_domains: usize,
        n_award_buckets: usize,
        max_award: f32,
        worker_decay: f32,
    ) -> Self {
        assert!(n_categories > 0 && n_domains > 0 && n_award_buckets > 0);
        let width = max_award / n_award_buckets as f32;
        let award_bucket_edges = (1..=n_award_buckets).map(|i| width * i as f32).collect();
        FeatureSpace {
            n_categories,
            n_domains,
            award_bucket_edges,
            worker_decay: worker_decay.clamp(0.0, 1.0),
        }
    }

    /// Number of task categories.
    pub fn n_categories(&self) -> usize {
        self.n_categories
    }

    /// Number of task domains.
    pub fn n_domains(&self) -> usize {
        self.n_domains
    }

    /// Number of award buckets.
    pub fn n_award_buckets(&self) -> usize {
        self.award_bucket_edges.len()
    }

    /// Dimension of a task feature vector (= dimension of a worker feature vector).
    pub fn task_dim(&self) -> usize {
        self.n_categories + self.n_domains + self.award_bucket_edges.len()
    }

    /// Dimension of a worker feature vector. Kept equal to [`FeatureSpace::task_dim`] so
    /// worker and task features live in the same space (required by the cosine-similarity
    /// baseline and convenient for the Q-network input concatenation).
    pub fn worker_dim(&self) -> usize {
        self.task_dim()
    }

    /// Bucket index of an award value.
    pub fn award_bucket(&self, award: f32) -> usize {
        for (i, &edge) in self.award_bucket_edges.iter().enumerate() {
            if award <= edge {
                return i;
            }
        }
        self.award_bucket_edges.len() - 1
    }

    /// Builds the feature vector of a task.
    pub fn task_feature(&self, task: &Task) -> Vec<f32> {
        let mut f = vec![0.0; self.task_dim()];
        let cat = (task.category as usize).min(self.n_categories - 1);
        f[cat] = 1.0;
        let dom = (task.domain as usize).min(self.n_domains - 1);
        f[self.n_categories + dom] = 1.0;
        let bucket = self.award_bucket(task.award);
        f[self.n_categories + self.n_domains + bucket] = 1.0;
        f
    }

    /// A fresh (cold-start) worker feature: all zeros, meaning "no completion history yet".
    pub fn initial_worker_feature(&self) -> Vec<f32> {
        vec![0.0; self.worker_dim()]
    }

    /// Updates a worker feature in place after the worker completed a task with feature
    /// `completed_task_feature`: exponential decay towards the distribution of recent
    /// completions. A worker with no history (all zeros) adopts the task feature directly.
    pub fn update_worker_feature(
        &self,
        worker_feature: &mut [f32],
        completed_task_feature: &[f32],
    ) {
        debug_assert_eq!(worker_feature.len(), completed_task_feature.len());
        let is_cold = worker_feature.iter().all(|&v| v == 0.0);
        if is_cold {
            worker_feature.copy_from_slice(completed_task_feature);
            return;
        }
        let decay = self.worker_decay;
        for (w, &t) in worker_feature.iter_mut().zip(completed_task_feature) {
            *w = decay * *w + (1.0 - decay) * t;
        }
    }

    /// Mean of a set of worker features — the "average feature of old workers" used to
    /// represent an unseen new worker in the MDP(r) future-state predictor (Sec. V-D).
    pub fn mean_feature(features: &[Vec<f32>]) -> Vec<f32> {
        if features.is_empty() {
            return Vec::new();
        }
        let dim = features[0].len();
        let mut mean = vec![0.0; dim];
        for f in features {
            for (m, &v) in mean.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= features.len() as f32;
        }
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn space() -> FeatureSpace {
        FeatureSpace::new(3, 2, 4, 100.0, 0.8)
    }

    fn task(category: u16, domain: u16, award: f32) -> Task {
        Task {
            id: TaskId(0),
            requester: 0,
            category,
            domain,
            award,
            created_at: 0,
            deadline: 10,
        }
    }

    #[test]
    fn dimensions() {
        let s = space();
        assert_eq!(s.task_dim(), 9);
        assert_eq!(s.worker_dim(), 9);
        assert_eq!(s.n_award_buckets(), 4);
    }

    #[test]
    fn task_feature_is_three_hot() {
        let s = space();
        let f = s.task_feature(&task(1, 0, 30.0));
        assert_eq!(f.len(), 9);
        assert_eq!(f.iter().filter(|&&v| v == 1.0).count(), 3);
        assert_eq!(f[1], 1.0); // category 1
        assert_eq!(f[3], 1.0); // domain 0
        assert_eq!(f[3 + 2 + 1], 1.0); // award 30 -> bucket 1 (edges 25/50/75/100)
    }

    #[test]
    fn award_buckets_cover_extremes() {
        let s = space();
        assert_eq!(s.award_bucket(0.0), 0);
        assert_eq!(s.award_bucket(25.0), 0);
        assert_eq!(s.award_bucket(99.0), 3);
        assert_eq!(s.award_bucket(1e6), 3);
    }

    #[test]
    fn out_of_range_category_is_clamped() {
        let s = space();
        let f = s.task_feature(&task(99, 99, 10.0));
        assert_eq!(f[2], 1.0); // clamped to last category
        assert_eq!(f[3 + 1], 1.0); // clamped to last domain
    }

    #[test]
    fn cold_start_worker_adopts_first_completion() {
        let s = space();
        let mut wf = s.initial_worker_feature();
        let tf = s.task_feature(&task(0, 1, 80.0));
        s.update_worker_feature(&mut wf, &tf);
        assert_eq!(wf, tf);
    }

    #[test]
    fn worker_feature_decays_towards_recent_tasks() {
        let s = space();
        let mut wf = s.initial_worker_feature();
        let cat0 = s.task_feature(&task(0, 0, 10.0));
        let cat2 = s.task_feature(&task(2, 1, 90.0));
        s.update_worker_feature(&mut wf, &cat0);
        for _ in 0..20 {
            s.update_worker_feature(&mut wf, &cat2);
        }
        // After many category-2 completions the category-2 weight dominates category-0.
        assert!(wf[2] > 0.9);
        assert!(wf[0] < 0.05);
        // Still a valid (bounded) distribution-like vector.
        assert!(wf.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn mean_feature_averages() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let m = FeatureSpace::mean_feature(&[a, b]);
        assert_eq!(m, vec![0.5, 0.5]);
        assert!(FeatureSpace::mean_feature(&[]).is_empty());
    }
}
