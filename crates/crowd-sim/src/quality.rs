//! Dixit–Stiglitz task quality aggregation (paper Eq. 5).
//!
//! `q_t = (Σ_{i ∈ I_t} q_{w_i}^p)^{1/p}` with `p ≥ 1`: `p = 1` gives the additive quality of
//! independent micro-tasks (AMT), large `p` approaches the max-quality semantics of
//! competition platforms; the paper's experiments use `p = 2`.

/// Aggregates the qualities of the workers who completed a task into the task's quality.
///
/// Returns 0 for an empty completion set. `p` is clamped to at least 1.
pub fn dixit_stiglitz(worker_qualities: &[f32], p: f32) -> f32 {
    if worker_qualities.is_empty() {
        return 0.0;
    }
    let p = p.max(1.0);
    let sum: f32 = worker_qualities.iter().map(|q| q.max(0.0).powf(p)).sum();
    sum.powf(1.0 / p)
}

/// Marginal gain in task quality from one additional completion by a worker of quality
/// `new_worker_quality`, given the qualities of previous completers.
pub fn quality_gain(previous: &[f32], new_worker_quality: f32, p: f32) -> f32 {
    let before = dixit_stiglitz(previous, p);
    let mut all = previous.to_vec();
    all.push(new_worker_quality);
    dixit_stiglitz(&all, p) - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_zero_quality() {
        assert_eq!(dixit_stiglitz(&[], 2.0), 0.0);
    }

    #[test]
    fn p_one_is_additive() {
        // AMT-style micro-tasks: quality is the sum of completer qualities.
        let q = dixit_stiglitz(&[0.5, 0.3, 0.2], 1.0);
        assert!((q - 1.0).abs() < 1e-6);
    }

    #[test]
    fn large_p_approaches_max() {
        // Competition platforms: only the best submission counts.
        let q = dixit_stiglitz(&[0.9, 0.5, 0.4], 50.0);
        assert!((q - 0.9).abs() < 0.01);
    }

    #[test]
    fn p_two_matches_euclidean_norm() {
        let q = dixit_stiglitz(&[0.6, 0.8], 2.0);
        assert!((q - 1.0).abs() < 1e-6);
    }

    #[test]
    fn p_below_one_is_clamped() {
        assert_eq!(
            dixit_stiglitz(&[0.5, 0.5], 0.1),
            dixit_stiglitz(&[0.5, 0.5], 1.0)
        );
    }

    #[test]
    fn diminishing_marginal_utility() {
        // With p = 2, each additional identical-quality worker adds less than the previous.
        let g1 = quality_gain(&[], 0.5, 2.0);
        let g2 = quality_gain(&[0.5], 0.5, 2.0);
        let g3 = quality_gain(&[0.5, 0.5], 0.5, 2.0);
        assert!(g1 > g2 && g2 > g3, "gains {g1} {g2} {g3}");
        assert!(g3 > 0.0);
    }

    #[test]
    fn higher_quality_worker_contributes_more() {
        let strong = quality_gain(&[0.5, 0.5], 0.9, 2.0);
        let weak = quality_gain(&[0.5, 0.5], 0.2, 2.0);
        assert!(strong > weak);
    }

    #[test]
    fn negative_inputs_are_treated_as_zero() {
        assert_eq!(dixit_stiglitz(&[-0.5, 0.0], 2.0), 0.0);
    }
}
