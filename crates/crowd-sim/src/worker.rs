//! Worker entities: the crowd that completes tasks.

/// Opaque identifier of a worker (index into the dataset's worker table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Index into [`crate::Dataset::workers`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Checkpoint format: the raw `u32` index.
impl crowd_ckpt::SaveState for WorkerId {
    fn save_state(&self, w: &mut crowd_ckpt::StateWriter) {
        w.put_u32(self.0);
    }
}

impl crowd_ckpt::DecodeState for WorkerId {
    fn decode_state(r: &mut crowd_ckpt::StateReader<'_>) -> crowd_ckpt::Result<Self> {
        Ok(WorkerId(r.take_u32()?))
    }
}

/// A worker's latent (ground-truth) profile.
///
/// The *latent* preference vectors drive the behaviour model and are never exposed to
/// policies; policies only observe the feature vectors built from completion history
/// (Sec. IV-A2), mirroring the information asymmetry of the real platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Worker {
    /// Identifier; equals the worker's position in the dataset table.
    pub id: WorkerId,
    /// Ground-truth worker quality in `[0, 1]` (Sec. V-A assumes this is known to the
    /// platform from history or qualification tests).
    pub quality: f32,
    /// Latent affinity for each task category (higher = more likely to complete).
    pub category_affinity: Vec<f32>,
    /// Latent affinity for each task domain.
    pub domain_affinity: Vec<f32>,
    /// How strongly the worker's interest scales with the (normalised) award:
    /// payment-driven workers have high values, interest-driven workers low values.
    pub award_sensitivity: f32,
    /// Utility threshold above which the worker completes a task.
    pub interest_threshold: f32,
    /// Maximum number of list positions the worker scans (cascade attention budget).
    pub attention_budget: usize,
    /// Relative arrival frequency (used by the generator only).
    pub activity: f32,
}

impl Worker {
    /// Applies additive Gaussian-style noise `delta` to the quality, clamping to `[0, 1]`.
    /// Used by the Fig. 10(c) experiment ("distribution of qualities of workers").
    pub fn perturb_quality(&mut self, delta: f32) {
        self.quality = (self.quality + delta).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker() -> Worker {
        Worker {
            id: WorkerId(7),
            quality: 0.6,
            category_affinity: vec![0.1, 0.9],
            domain_affinity: vec![0.5],
            award_sensitivity: 0.3,
            interest_threshold: 0.5,
            attention_budget: 10,
            activity: 1.0,
        }
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(worker().id.index(), 7);
    }

    #[test]
    fn perturb_quality_clamps() {
        let mut w = worker();
        w.perturb_quality(0.9);
        assert_eq!(w.quality, 1.0);
        w.perturb_quality(-2.0);
        assert_eq!(w.quality, 0.0);
        w.perturb_quality(0.25);
        assert!((w.quality - 0.25).abs() < 1e-6);
    }
}
