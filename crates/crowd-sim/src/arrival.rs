//! Worker arrival gap distributions.
//!
//! Fig. 5 of the paper shows two empirical patterns the framework exploits:
//! (a)/(b) the gap between two consecutive arrivals *of the same worker* is a mixture of a
//! short revisit (minutes to a couple of hours) and "come back after 1, 2, … 7 days";
//! (c) the gap between two consecutive arrivals of *any* workers is a short long-tailed
//! distribution (99% under 60 minutes on the real platform).
//!
//! [`GapDistribution`] is the generative model the synthetic dataset uses for (a)/(b); the
//! global pattern (c) then emerges from interleaving many workers.

use crowd_tensor::Rng;

/// Number of minutes in a day.
const DAY: f32 = 1440.0;

/// Mixture model of the same-worker revisit gap.
#[derive(Debug, Clone, PartialEq)]
pub struct GapDistribution {
    /// Probability that the next arrival is a short revisit (same session / same day).
    pub short_prob: f32,
    /// Mean of the short revisit gap in minutes (exponentially distributed).
    pub short_mean_minutes: f32,
    /// Mean number of days of the long revisit component (geometric-like, capped).
    pub mean_days: f32,
    /// Maximum number of days of the long component (the paper ignores gaps > 7 days).
    pub max_days: u32,
    /// Standard deviation (minutes) of the jitter added around the day multiples.
    pub day_jitter_minutes: f32,
}

impl Default for GapDistribution {
    fn default() -> Self {
        GapDistribution {
            short_prob: 0.35,
            short_mean_minutes: 45.0,
            mean_days: 2.0,
            max_days: 7,
            day_jitter_minutes: 240.0,
        }
    }
}

impl GapDistribution {
    /// Expected gap in minutes.
    pub fn mean_minutes(&self) -> f32 {
        // The truncated-geometric day count has a mean close to `mean_days` when
        // `mean_days << max_days`; the analytic form below mirrors `sample_days`.
        let p = 1.0 / self.mean_days.max(1.0);
        let mut mean_days = 0.0;
        let mut remaining = 1.0;
        for d in 1..=self.max_days {
            let prob = if d == self.max_days {
                remaining
            } else {
                remaining * p
            };
            mean_days += d as f32 * prob;
            remaining -= prob;
        }
        self.short_prob * self.short_mean_minutes + (1.0 - self.short_prob) * mean_days * DAY
    }

    fn sample_days(&self, rng: &mut Rng) -> u32 {
        let p = 1.0 / self.mean_days.max(1.0);
        for d in 1..self.max_days {
            if rng.chance(p) {
                return d;
            }
        }
        self.max_days
    }

    /// Draws one revisit gap in minutes (always at least 1).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let minutes = if rng.chance(self.short_prob) {
            rng.exponential(1.0 / self.short_mean_minutes.max(1.0))
        } else {
            let days = self.sample_days(rng) as f32;
            (days * DAY + rng.normal(0.0, self.day_jitter_minutes)).max(1.0)
        };
        minutes.max(1.0).round() as u64
    }

    /// Draws `count` gaps.
    pub fn sample_many(&self, count: usize, rng: &mut Rng) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_positive_and_bounded() {
        let d = GapDistribution::default();
        let mut rng = Rng::seed_from(0);
        for _ in 0..5000 {
            let g = d.sample(&mut rng);
            assert!(g >= 1);
            // max_days * day + generous jitter headroom
            assert!(g < (d.max_days as u64 + 1) * 1440 + 2000);
        }
    }

    #[test]
    fn empirical_mean_matches_analytic() {
        let d = GapDistribution::default();
        let mut rng = Rng::seed_from(1);
        let n = 40_000;
        let mean = d.sample_many(n, &mut rng).iter().sum::<u64>() as f32 / n as f32;
        let analytic = d.mean_minutes();
        let rel = (mean - analytic).abs() / analytic;
        assert!(rel < 0.05, "empirical {mean} analytic {analytic}");
    }

    #[test]
    fn mixture_shape_short_and_daily_modes() {
        let d = GapDistribution::default();
        let mut rng = Rng::seed_from(2);
        let gaps = d.sample_many(20_000, &mut rng);
        let short = gaps.iter().filter(|&&g| g < 240).count() as f32 / gaps.len() as f32;
        let daily = gaps.iter().filter(|&&g| g >= 1000).count() as f32 / gaps.len() as f32;
        // Short revisits near the configured short_prob, the rest day-scale (Fig. 5(a)/(b)).
        assert!((short - 0.35).abs() < 0.06, "short fraction {short}");
        assert!(daily > 0.55, "daily fraction {daily}");
    }

    #[test]
    fn higher_mean_days_gives_longer_gaps() {
        let fast = GapDistribution {
            mean_days: 1.0,
            ..GapDistribution::default()
        };
        let slow = GapDistribution {
            mean_days: 5.0,
            ..GapDistribution::default()
        };
        assert!(slow.mean_minutes() > fast.mean_minutes());
    }
}
