//! Dataset statistics: everything needed to regenerate the paper's Fig. 5 (arrival-gap
//! histograms) and Fig. 6 (monthly task/arrival counts).

use crate::dataset::Dataset;
use crate::event::EventKind;
use crate::worker::WorkerId;
use std::collections::HashMap;

/// A histogram over time gaps in minutes.
#[derive(Debug, Clone, PartialEq)]
pub struct GapHistogram {
    /// Width of each bin in minutes.
    pub bin_minutes: u64,
    /// Bin counts; bin `i` covers `[i*bin_minutes, (i+1)*bin_minutes)`.
    pub counts: Vec<usize>,
}

impl GapHistogram {
    fn from_gaps(gaps: impl Iterator<Item = u64>, bin_minutes: u64, max_minutes: u64) -> Self {
        let n_bins = (max_minutes / bin_minutes.max(1)) as usize + 1;
        let mut counts = vec![0usize; n_bins];
        for gap in gaps {
            if gap <= max_minutes {
                counts[(gap / bin_minutes.max(1)) as usize] += 1;
            }
        }
        GapHistogram {
            bin_minutes,
            counts,
        }
    }

    /// Total number of gaps recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of mass at or below the given minute mark.
    pub fn fraction_below(&self, minutes: u64) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let cutoff_bin = (minutes / self.bin_minutes.max(1)) as usize;
        let below: usize = self.counts.iter().take(cutoff_bin + 1).sum();
        below as f32 / total as f32
    }
}

/// Gap histogram between two consecutive arrivals *of the same worker* (Fig. 5(a)/(b)).
pub fn same_worker_gap_histogram(
    dataset: &Dataset,
    bin_minutes: u64,
    max_minutes: u64,
) -> GapHistogram {
    let mut last_arrival: HashMap<WorkerId, u64> = HashMap::new();
    let mut gaps = Vec::new();
    for event in &dataset.events {
        if let EventKind::WorkerArrival(w) = event.kind {
            if let Some(prev) = last_arrival.insert(w, event.time) {
                gaps.push(event.time - prev);
            }
        }
    }
    GapHistogram::from_gaps(gaps.into_iter(), bin_minutes, max_minutes)
}

/// Gap histogram between two consecutive arrivals of *any* workers (Fig. 5(c)).
pub fn consecutive_arrival_gap_histogram(
    dataset: &Dataset,
    bin_minutes: u64,
    max_minutes: u64,
) -> GapHistogram {
    let mut last: Option<u64> = None;
    let mut gaps = Vec::new();
    for event in &dataset.events {
        if let EventKind::WorkerArrival(_) = event.kind {
            if let Some(prev) = last {
                gaps.push(event.time - prev);
            }
            last = Some(event.time);
        }
    }
    GapHistogram::from_gaps(gaps.into_iter(), bin_minutes, max_minutes)
}

/// Per-month dataset statistics (Fig. 6).
#[derive(Debug, Clone, PartialEq)]
pub struct MonthStats {
    /// Month index (0-based).
    pub month: usize,
    /// Tasks created in this month.
    pub new_tasks: usize,
    /// Tasks whose deadline fell in this month.
    pub expired_tasks: usize,
    /// Worker arrivals in this month.
    pub arrivals: usize,
    /// Average number of available tasks observed at arrival instants.
    pub avg_available: f32,
}

/// Computes per-month counts of new tasks, expired tasks, worker arrivals and the average
/// pool size seen by arriving workers.
pub fn monthly_stats(dataset: &Dataset) -> Vec<MonthStats> {
    let months = dataset.months.max(1);
    let mut new_tasks = vec![0usize; months];
    let mut expired_tasks = vec![0usize; months];
    let mut arrivals = vec![0usize; months];
    let mut pool_sum = vec![0usize; months];

    let mut pool = 0usize;
    for event in &dataset.events {
        let m = Dataset::month_of(event.time).min(months - 1);
        match event.kind {
            EventKind::TaskCreated(_) => {
                new_tasks[m] += 1;
                pool += 1;
            }
            EventKind::TaskExpired(_) => {
                expired_tasks[m] += 1;
                pool = pool.saturating_sub(1);
            }
            EventKind::WorkerArrival(_) => {
                arrivals[m] += 1;
                pool_sum[m] += pool;
            }
        }
    }

    (0..months)
        .map(|m| MonthStats {
            month: m,
            new_tasks: new_tasks[m],
            expired_tasks: expired_tasks[m],
            arrivals: arrivals[m],
            avg_available: if arrivals[m] > 0 {
                pool_sum[m] as f32 / arrivals[m] as f32
            } else {
                0.0
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SimConfig;

    #[test]
    fn same_worker_gaps_show_short_and_daily_modes() {
        let ds = SimConfig::small().generate();
        let hist = same_worker_gap_histogram(&ds, 30, 7 * 1440);
        assert!(hist.total() > 100);
        // A visible fraction of revisits happens within 3 hours (Fig. 5(a)) and a majority
        // within a week (Fig. 5(b)).
        assert!(
            hist.fraction_below(180) > 0.15,
            "{}",
            hist.fraction_below(180)
        );
        assert!(hist.fraction_below(7 * 1440) > 0.9);
    }

    #[test]
    fn consecutive_gaps_are_much_shorter_than_same_worker_gaps() {
        let ds = SimConfig::small().generate();
        // Use a window wide enough to cover essentially all gaps so the fractions are
        // comparable (a narrow window would silently drop the long same-worker gaps).
        let window = 14 * 1440;
        let global = consecutive_arrival_gap_histogram(&ds, 5, window);
        let same = same_worker_gap_histogram(&ds, 5, window);
        // Interleaving many workers compresses the global gap (Fig. 5(c) vs 5(a)).
        assert!(global.fraction_below(60) > same.fraction_below(60));
        assert!(global.fraction_below(240) > 0.5);
    }

    #[test]
    fn monthly_stats_are_consistent_with_config() {
        let cfg = SimConfig::small();
        let ds = cfg.generate();
        let stats = monthly_stats(&ds);
        assert_eq!(stats.len(), cfg.months);
        let total_new: usize = stats.iter().map(|s| s.new_tasks).sum();
        assert_eq!(total_new, cfg.months * cfg.tasks_per_month);
        let total_arrivals: usize = stats.iter().map(|s| s.arrivals).sum();
        assert_eq!(total_arrivals, ds.n_arrivals());
        // Pool builds up after month 0, so later months see a non-trivial pool.
        assert!(stats[1].avg_available > 1.0);
    }

    #[test]
    fn histogram_fraction_bounds() {
        let ds = SimConfig::tiny().generate();
        let hist = consecutive_arrival_gap_histogram(&ds, 10, 1000);
        assert!(hist.fraction_below(1000) <= 1.0);
        assert!(hist.fraction_below(0) <= hist.fraction_below(500));
    }

    #[test]
    fn empty_dataset_histograms_are_empty() {
        let ds = Dataset {
            tasks: vec![],
            workers: vec![],
            events: vec![],
            n_categories: 1,
            n_domains: 1,
            quality_exponent: 2.0,
            months: 1,
        };
        assert_eq!(same_worker_gap_histogram(&ds, 10, 100).total(), 0);
        assert_eq!(consecutive_arrival_gap_histogram(&ds, 10, 100).total(), 0);
        let stats = monthly_stats(&ds);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].arrivals, 0);
    }
}
